#!/usr/bin/env python
"""The BSP substrate is general: other partition-centric algorithms on it.

The paper builds its Euler-circuit algorithm on a partition-centric
abstraction (§2.1, GoFFish / Giraph++ style) because partitions make more
progress per superstep than vertices. Our `repro.bsp.BSPEngine` is that
abstraction as a library — this example runs two *other* algorithms on it:

1. connected components by partition-local label propagation: supersteps
   scale with partitions crossed, not graph diameter (the partition-centric
   selling point);
2. a degree histogram as a two-superstep bulk aggregation.

Run:  python examples/bsp_substrate.py
"""

import numpy as np

from repro.bsp import bsp_connected_components, bsp_degree_histogram
from repro.generate import cycle_graph, eulerian_rmat
from repro.graph import PartitionedGraph
from repro.partitioning import partition

def long_ring_demo() -> None:
    # A 600-vertex ring: diameter 300. Vertex-centric label propagation
    # would need ~300 supersteps; partition-centric needs a handful.
    g = cycle_graph(600)
    part = (np.arange(600) // 150).astype(np.int64)  # 4 contiguous arcs
    pg = PartitionedGraph(g, part, 4)
    labels, supersteps = bsp_connected_components(pg)
    assert (labels == 0).all()
    print(
        f"ring of 600 (diameter 300): 1 component found in {supersteps} "
        f"partition-centric supersteps (vertex-centric would need ~300)"
    )

def rmat_demo() -> None:
    g, _ = eulerian_rmat(scale=12, seed=4)
    pg = partition(g, 6, method="ldg", seed=0)
    labels, supersteps = bsp_connected_components(pg)
    n_comp = len(np.unique(labels))
    print(
        f"R-MAT ({g.n_vertices:,} vertices, 6 partitions): "
        f"{n_comp} component(s) in {supersteps} supersteps"
    )
    hist = bsp_degree_histogram(pg)
    top = sorted(hist.items(), key=lambda kv: -kv[1])[:5]
    assert sum(hist.values()) == g.n_vertices
    print(f"degree histogram via BSP aggregation — top degrees: {top}")

if __name__ == "__main__":
    long_ring_demo()
    rmat_demo()
