#!/usr/bin/env python
"""Mini scaling & memory study — the paper's §4.3/§5 analysis on your laptop.

Reproduces the two headline findings at reduced scale:

1. **Weak scaling is inefficient** (Fig. 5): holding input-per-partition
   constant while adding partitions *increases* total time, because merge
   levels add coordination and data movement.
2. **Remote edges are the memory bottleneck, and §5 fixes it** (Figs. 8-9):
   the average per-partition state grows up the merge tree under the
   paper's implemented design ("eager"), while the proposed dedup+deferred
   strategy cuts state 50-75% at intermediate levels.

3. **Executor backends are interchangeable**: the same run on the serial,
   thread and process backends produces the identical circuit; only the
   wall-clock/serialization profile changes (the process backend pays real
   pickle round-trips, like the paper's cluster shuffle).

Run:  python examples/scaling_study.py        (~1 minute)
Set REPRO_EXAMPLE_SCALE=small (as the CI smoke job does) for a ~5s run.
"""

import os

import numpy as np

from repro.bench.harness import format_table, print_header
from repro.core import find_euler_circuit, ideal_series, measured_series
from repro.generate import eulerian_rmat

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() in ("small", "smoke", "ci")
WEAK_STEPS = ((10, 2), (11, 4), (12, 8)) if SMALL else ((13, 2), (14, 4), (15, 8))
STUDY_SCALE = 12 if SMALL else 15
BACKEND_SCALE = 11 if SMALL else 14

def weak_scaling() -> None:
    print_header("Weak scaling (constant vertices per partition)")
    rows = []
    for scale, n_parts in WEAK_STEPS:
        graph, _ = eulerian_rmat(scale, avg_degree=5.0, seed=5)
        res = find_euler_circuit(graph, n_parts=n_parts, seed=0, verify=True)
        rep = res.report
        rows.append(
            {
                "graph": f"2^{scale} RMAT",
                "parts": n_parts,
                "vertices/part": graph.n_vertices // n_parts,
                "supersteps": rep.n_supersteps,
                "total (s)": rep.total_seconds,
                "compute (s)": rep.compute_seconds,
            }
        )
    print(format_table(rows))
    print(
        "-> total time grows despite constant load per partition: the "
        "paper's weak-scaling inefficiency."
    )

def memory_strategies() -> None:
    print_header("Memory state per level: eager vs proposed (Longs)")
    graph, _ = eulerian_rmat(STUDY_SCALE, avg_degree=5.0, seed=5)
    eager = find_euler_circuit(graph, n_parts=8, strategy="eager", seed=0)
    proposed = find_euler_circuit(graph, n_parts=8, strategy="proposed", seed=0)
    cur = measured_series(eager.report, "eager")
    idl = ideal_series(eager.report)
    pro = measured_series(proposed.report, "proposed")
    rows = [
        {
            "level": lvl,
            "eager avg": cur.average[i],
            "ideal avg": idl.average[i],
            "proposed avg": pro.average[i],
            "saving %": 100 * (1 - pro.average[i] / cur.average[i]),
        }
        for i, lvl in enumerate(cur.levels)
    ]
    print(format_table(rows))
    print(
        "-> eager average grows up the tree (remote edges accumulate); the "
        "proposed strategy recovers 50-75% at intermediate levels and "
        "nothing at the root, exactly as §5 predicts."
    )

def executor_backends() -> None:
    print_header("Executor backends: same circuit, different deployment")
    graph, _ = eulerian_rmat(BACKEND_SCALE, avg_degree=5.0, seed=5)
    rows = []
    baseline = None
    for executor, workers in (("serial", 1), ("thread", 4), ("process", 4)):
        res = find_euler_circuit(
            graph, n_parts=4, seed=0, executor=executor, engine_workers=workers
        )
        if baseline is None:
            baseline = res.circuit
        assert np.array_equal(baseline.vertices, res.circuit.vertices)
        rows.append(
            {
                "executor": executor,
                "workers": workers,
                "total (s)": res.report.total_seconds,
                "compute (s)": res.report.compute_seconds,
                "circuit edges": res.circuit.n_edges,
            }
        )
    print(format_table(rows))
    print(
        "-> bit-identical circuits on every backend; the process backend's "
        "extra wall time is the honest cost of state serialization."
    )

if __name__ == "__main__":
    weak_scaling()
    memory_strategies()
    executor_backends()
