#!/usr/bin/env python
"""Street-sweeping / snow-plough route planning on a city road grid.

The paper motivates Euler circuits with route planning for transportation
and logistics (salt spreading, the Chinese Postman problem) and coverage
routing for autonomous vehicles. A route that traverses *every street
exactly once and returns to the depot* is exactly an Euler circuit.

Real street grids are not Eulerian (dead ends and T-junctions have odd
degree), so crews must "deadhead" some streets twice. The classical fix is
to add duplicate edges pairing up odd intersections — our eulerizer — and
the extra-edge fraction is the deadheading overhead. This example:

1. builds an open (non-torus) city grid — odd-degree boundary everywhere;
2. eulerizes it and reports the deadheading overhead;
3. plans the route with the distributed partition-centric algorithm at
   several fleet-coordination granularities (partition counts), verifying
   each route and showing the paper's superstep formula.

Run:  python examples/road_network_coverage.py
"""

from repro.core import find_euler_circuit, verify_circuit
from repro.generate import eulerize, grid_city
from repro.graph import odd_vertices

def main() -> None:
    width, height = 24, 18
    city = grid_city(width, height, torus=False)
    odd = odd_vertices(city)
    print(
        f"city grid: {width}x{height} intersections, {city.n_edges:,} street "
        f"segments; {odd.size} odd-degree intersections need deadheading"
    )

    network, info = eulerize(city, seed=3)
    print(
        f"after eulerization: {network.n_edges:,} segments "
        f"(+{info.n_added} deadhead runs = {100 * info.added_fraction:.1f}% "
        f"overhead; {info.n_parallel} doubled streets)"
    )

    depot_route = None
    for n_parts in (1, 2, 4, 8):
        result = find_euler_circuit(
            network, n_parts=n_parts, partitioner="bfs", seed=0
        )
        verify_circuit(network, result.circuit)
        rep = result.report
        print(
            f"  {n_parts} zone(s): route covers {result.circuit.n_edges:,} "
            f"segments, {rep.n_supersteps} supersteps, "
            f"compute {rep.compute_seconds * 1000:.0f} ms"
        )
        if n_parts == 4:
            depot_route = result.circuit

    # The route is a single closed walk from the depot: print a snippet.
    depot = depot_route.start
    x, y = depot % width, depot // width
    print(f"\ndepot at intersection ({x}, {y}); first 10 turns:")
    for v in depot_route.vertices[:10].tolist():
        print(f"  -> ({v % width}, {v // width})")
    print(
        f"route length {depot_route.n_edges:,} segments "
        f"(optimal for this deadheading: every segment exactly once)"
    )

if __name__ == "__main__":
    main()
