#!/usr/bin/env python
"""Non-Eulerian coverage routes — the paper's §6 future work, implemented.

The paper closes with: *"We will also consider generalizing this to non
Eulerian graphs, by allowing edge revisits."* That generalization is the
Chinese Postman Problem, and `repro.extensions.chinese_postman_route`
implements it on top of the distributed algorithm: duplicate shortest
deadhead paths between odd intersections, find the Euler circuit of the
augmented multigraph distributedly, and map the route back.

This example plans coverage routes over three non-Eulerian networks and
reports the deadheading each needs:

* an open city grid (street sweeping);
* a random power-law R-MAT component (utility network inspection);
* a star-heavy suburb (many dead ends — worst case for deadheading).

Run:  python examples/postman_routes.py
"""

import numpy as np

from repro.extensions import chinese_postman_route
from repro.generate import grid_city, largest_component, rmat_graph
from repro.graph import Graph, odd_vertices

def suburb(n_culdesacs: int = 30) -> Graph:
    """A ring road with dead-end culs-de-sac hanging off it."""
    ring = n_culdesacs
    edges = [(i, (i + 1) % ring) for i in range(ring)]
    for i in range(ring):
        edges.append((i, ring + i))  # dead end per ring vertex
    return Graph.from_edges(2 * ring, edges)

def plan(name: str, g: Graph, n_parts: int) -> None:
    odd = odd_vertices(g)
    route = chinese_postman_route(g, n_parts=n_parts)
    counts = np.bincount(route.edge_ids, minlength=g.n_edges)
    assert (counts >= 1).all() and route.is_closed
    print(
        f"{name:<22} {g.n_edges:>6,} edges  {odd.size:>4} odd  "
        f"route {route.n_steps:>6,} steps  "
        f"deadhead {100 * route.deadhead_fraction:5.1f}%  "
        f"max passes/edge {int(counts.max())}"
    )

def main() -> None:
    print(f"{'network':<22} {'edges':>12} {'odd':>5} {'route':>13} {'overhead':>10}")
    plan("open city grid", grid_city(16, 12, torus=False), 4)
    cc, _ = largest_component(rmat_graph(11, avg_degree=3.0, seed=9))
    plan("power-law network", cc, 4)
    plan("cul-de-sac suburb", suburb(30), 2)
    print(
        "\nEvery route covers each edge at least once and returns to its "
        "start; deadheading is the price of odd-degree geometry (each "
        "dead-end street must be walked twice)."
    )

if __name__ == "__main__":
    main()
