#!/usr/bin/env python
"""Tour of the scenario layer: four workloads, one pipeline.

Every workload — the paper's Euler circuit, open Euler paths (DNA
assembly), per-component circuits (disconnected inputs), and Chinese
Postman routes (the paper's §6 future work) — runs through the same
staged pipeline via ``repro.scenarios.run_scenario``, so all of them get
the executor backends, verification, and the per-run artifact for free.

Set ``REPRO_EXAMPLE_SCALE=small`` (as the CI examples smoke job does) to
shrink the graphs.

Run:  python examples/scenario_tour.py
"""

import os

from repro.bench.harness import format_table, print_header
from repro.generate import (
    disjoint_union,
    eulerian_rmat,
    grid_city,
    largest_component,
    open_path_variant,
    rmat_graph,
)
from repro.graph import Graph
from repro.pipeline import RunConfig
from repro.scenarios import run_scenario

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() in ("small", "smoke", "ci")
SCALE = 10 if SMALL else 13

def workloads() -> list[tuple[str, str, Graph]]:
    circuit, _ = eulerian_rmat(SCALE, avg_degree=4.0, seed=3)
    path = open_path_variant(circuit)  # two odd ends
    components = disjoint_union(
        eulerian_rmat(SCALE - 1, avg_degree=4.0, seed=4)[0],
        grid_city(8, 6),
        eulerian_rmat(SCALE - 2, avg_degree=3.0, seed=5)[0],
    )
    postman, _ = largest_component(rmat_graph(SCALE - 1, avg_degree=3.0, seed=6))
    return [
        ("circuit", "eulerized R-MAT", circuit),
        ("path", "R-MAT minus one edge", path),
        ("components", "3-component union", components),
        ("postman", "raw R-MAT component", postman),
    ]

def main() -> None:
    print_header("Scenario layer: reduction -> staged pipeline -> postprocess")
    rows = []
    for name, shape, graph in workloads():
        result = run_scenario(
            graph, name, RunConfig(n_parts=4, seed=0, verify=True)
        )
        walks = result.circuits
        rows.append(
            {
                "scenario": name,
                "input": shape,
                "edges": graph.n_edges,
                "walks": len(walks),
                "walk edges": sum(w.n_edges for w in walks),
                "sub-runs": len(result.sub_runs),
                "supersteps": max(
                    (r.n_supersteps for r in result.reports), default=0
                ),
                "closed": all(w.is_closed for w in walks),
            }
        )
        assert all(s.context.verified for s in result.sub_runs)
    print(format_table(rows))
    print(
        "\nEvery walk above was produced and verified by the same staged\n"
        "pipeline; the scenario layer only adds the reduction (virtual\n"
        "edge, eulerization, component split) and the postprocess\n"
        "(rotation/cut, edge-id mapping, reassembly)."
    )

if __name__ == "__main__":
    main()
