#!/usr/bin/env python
"""Tour of the job-orchestration layer: submit → poll → fetch.

Starts a real ``repro-euler serve`` instance in-process (ephemeral port),
catalogs a graph over HTTP, submits jobs for three scenarios, polls their
status, and fetches the durable schema-v5 artifacts — the exact workflow
of a client talking to a long-lived deployment, minus the second terminal.

Along the way it shows what the service amortizes: the second circuit
submission on the same graph hits the catalog's cached partition map, and
every job runs on one shared executor pool instead of spawning its own.

Set ``REPRO_EXAMPLE_SCALE=small`` (as the CI examples smoke job does) to
shrink the graph.

Run:  python examples/job_server_tour.py
"""

import os
import tempfile
import threading
from pathlib import Path

from repro.bench.harness import print_header
from repro.generate.eulerize import eulerian_rmat, largest_component, open_path_variant
from repro.generate.rmat import rmat_graph
from repro.graph.io import save_edge_list
from repro.jobs import GraphCatalog, JobEngine
from repro.jobs.client import JobClient
from repro.jobs.server import make_server

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() in ("small", "smoke", "ci")
SCALE = 9 if SMALL else 12


def main() -> None:
    print_header("Job orchestration: catalog + shared-pool scheduler + HTTP API")
    root = Path(tempfile.mkdtemp(prefix="repro-jobs-tour-"))
    circuit_graph, _ = eulerian_rmat(SCALE, avg_degree=4.0, seed=3)
    save_edge_list(circuit_graph, root / "circuit.el")
    save_edge_list(open_path_variant(circuit_graph), root / "path.el")
    postman_graph, _ = largest_component(rmat_graph(SCALE - 1, avg_degree=3.0, seed=6))
    save_edge_list(postman_graph, root / "postman.el")

    # A long-lived deployment would be `repro-euler serve`; here the same
    # engine + server run in-process on an ephemeral port.
    engine = JobEngine(
        GraphCatalog(root / "catalog"),
        dispatchers=2,
        pool_kind="thread",
        pool_workers=4,
        artifact_dir=root / "artifacts",
    )
    server = make_server(engine, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address
    client = JobClient(f"http://{host}:{port}")
    print(f"server: http://{host}:{port}  health={client.health()['status']}")

    # 1) Catalog a graph once; submit against its content key from then on.
    key = client.put_graph(path=str(root / "circuit.el"), name="rmat")["graph_key"]
    print(f"\ncataloged circuit graph -> key {key}")

    # 2) Submit: two circuit jobs on the same graph (the second one is the
    #    warm path), plus a path and a postman job from files.
    submissions = [
        client.submit("circuit", graph_key=key,
                      config={"n_parts": 4, "verify": True}),
        client.submit("circuit", graph_key=key,
                      config={"n_parts": 4, "verify": True}, priority=1),
        client.submit("path", path=str(root / "path.el"),
                      config={"n_parts": 4, "verify": True}),
        client.submit("postman", path=str(root / "postman.el"),
                      config={"n_parts": 4, "verify": True}),
    ]
    print("submitted:", ", ".join(s["job_id"] for s in submissions))

    # 3) Poll until every job is terminal, then fetch results.
    print()
    for sub in submissions:
        final = client.wait(sub["job_id"], timeout=300)
        doc = client.result(sub["job_id"])
        scenario = doc["scenario_result"]
        walks = scenario["circuits"]
        print(
            f"{final['id']}: {final['state']:<5} scenario={scenario['scenario']:<8} "
            f"queue={final['queue_latency_seconds'] * 1e3:6.1f}ms "
            f"run={final['run_seconds'] * 1e3:7.1f}ms "
            f"walks={len(walks)} edges={sum(c['n_edges'] for c in walks)}"
        )
        assert final["state"] == "DONE", final
        assert doc["schema_version"] == 5 and doc["artifact"] == "job"

    # 4) The amortization is visible in the catalog stats: the repeat
    #    circuit job reused the cached partition map.
    stats = client.catalog()["stats"]
    print(f"\ncatalog: partition hits={stats['partition_hits']} "
          f"misses={stats['partition_misses']} "
          f"(the repeat submission skipped partitioning)")
    assert stats["partition_hits"] >= 1

    server.shutdown()
    server.server_close()
    engine.close()
    print("\nall jobs served from one warm catalog and one shared pool.")


if __name__ == "__main__":
    main()
