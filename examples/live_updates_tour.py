#!/usr/bin/env python
"""Tour of dynamic graphs: mutate a served graph, watch repairs stream out.

Starts an in-process serve instance, catalogs an Eulerian street network,
pins a **watch** on it, then mutates the graph over HTTP — the exact
workflow of a deployment tracking a road network that changes under it:

* a small closure (one edge detoured through a new junction) is repaired
  **incrementally**: the engine re-tours only the dirty partitions and
  replays every cached Phase-1 fragment elsewhere, emitting a circuit that
  is bit-identical to a full recompute;
* a bulldozer-scale rebuild (10% of edges) trips the dirty-fraction
  threshold and the watch falls back to a clean recompute — the decision
  is recorded in the job artifact either way.

Set ``REPRO_EXAMPLE_SCALE=small`` (as the CI examples smoke job does) to
shrink the graph.

Run:  python examples/live_updates_tour.py
"""

import os
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.bench.harness import print_header
from repro.generate.eulerize import eulerian_rmat
from repro.jobs import GraphCatalog, JobEngine
from repro.jobs.client import JobClient
from repro.jobs.server import make_server

SMALL = os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() in ("small", "smoke", "ci")
SCALE = 9 if SMALL else 13


def detour_edits(graph, eids):
    """Close each edge and route it through a fresh junction vertex."""
    eids = sorted({int(e) for e in eids})
    inserts, w = [], graph.n_vertices
    for eid in eids:
        u, v = graph.endpoints(eid)
        inserts += [(int(u), w), (w, int(v))]
        w += 1
    return inserts, eids


def main() -> None:
    print_header("Dynamic graphs: PATCH mutations + incremental repair watches")
    root = Path(tempfile.mkdtemp(prefix="repro-live-tour-"))
    graph, _ = eulerian_rmat(SCALE, avg_degree=4.0, seed=3)

    engine = JobEngine(
        GraphCatalog(root / "catalog"),
        dispatchers=2,
        pool_kind="thread",
        pool_workers=2,
        artifact_dir=root / "artifacts",
        journal=root / "journal",
    )
    server = make_server(engine, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address
    client = JobClient(f"http://{host}:{port}")

    # 1) Catalog the street network and pin a watch on it: from now on,
    #    every mutation of this graph re-emits a repaired circuit job.
    key = engine.catalog.put(graph, name="street-network")
    watch = client.create_watch(key, config={"n_parts": 8}, name="coverage")
    print(f"graph {key[:12]}… ({graph.n_edges} edges) "
          f"watched by {watch['id']}")

    # 2) A single street closure: PATCH the delta, never re-upload the
    #    graph. The watch's first emission is the capture run; the second
    #    closure is repaired from the cached Phase-1 fragments.
    for round_no in (1, 2):
        g = engine.catalog.get(key)
        inserts, deletes = detour_edits(g, [5 * round_no])
        out = client.mutate(key, insert=inserts, delete_eids=deletes,
                            name=f"closure-{round_no}")
        key = out["graph_key"]
        info = out["watches"][watch["id"]]
        status = client.wait(info["job_id"], timeout=120)
        assert status["state"] == "DONE", status
        print(f"closure {round_no}: {out['base_key'][:12]}… -> {key[:12]}… "
              f"decision={info['decision']} job={info['job_id']}")
    assert info["decision"] == "repair", info

    # The artifact's pass history records the repair and its counters.
    doc = client.result(info["job_id"])
    rep = next(p for p in doc["pass_history"] if p["pass"] == "repair")
    print(f"repair pass: {rep['hits']} cached nodes replayed, "
          f"{rep['misses']} re-toured (dirty: {rep['dirty_parts']})")
    assert rep["hits"] > 0

    # 3) Bit-parity: the repaired emission equals a cold recompute of the
    #    mutated graph submitted as an ordinary job (the catalog extends
    #    the parent's partition map for delta children, so both runs see
    #    the same placement).
    cold = client.submit("circuit", graph_key=key, config={"n_parts": 8})
    assert client.wait(cold["job_id"], timeout=120)["state"] == "DONE"
    warm_circuits = engine.job(info["job_id"]).result.circuits
    cold_circuits = engine.job(cold["job_id"]).result.circuits
    assert len(warm_circuits) == len(cold_circuits)
    for a, b in zip(warm_circuits, cold_circuits):
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.edge_ids, b.edge_ids)
    print("bit-parity: repaired emission matches the cold recompute")

    # 4) A bulldozer-scale rebuild trips the threshold: the session
    #    declines to repair and recomputes cleanly instead.
    g = engine.catalog.get(key)
    inserts, deletes = detour_edits(g, range(0, g.n_edges, 10))
    out = client.mutate(key, insert=inserts, delete_eids=deletes,
                        name="rebuild")
    info = out["watches"][watch["id"]]
    assert client.wait(info["job_id"], timeout=120)["state"] == "DONE"
    print(f"rebuild (10% of edges): decision={info['decision']}")
    assert info["decision"] == "recompute", info

    summary = client.watch(watch["id"])
    print(f"watch {summary['id']}: {summary['mutations']} mutations, "
          f"last job {summary['last_job_id']}")

    server.shutdown()
    server.server_close()
    engine.close()
    print("live-updates tour complete")


if __name__ == "__main__":
    main()
