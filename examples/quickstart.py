#!/usr/bin/env python
"""Quickstart: find an Euler circuit with the partition-centric algorithm.

Generates the paper's workload type (an eulerized R-MAT power-law graph),
runs the distributed algorithm on 4 simulated machines, verifies the circuit
against the input graph, and prints the execution report the paper's
evaluation is built from (supersteps, compute vs total time, per-level
memory state).

Run:  python examples/quickstart.py
"""

from repro.core import find_euler_circuit, verify_circuit
from repro.generate import eulerian_rmat

def main() -> None:
    # 1. A connected Eulerian graph (R-MAT -> largest component -> eulerize,
    #    exactly the paper's §4.2 input pipeline, at laptop scale).
    graph, info = eulerian_rmat(scale=13, avg_degree=5.0, seed=7)
    print(
        f"input graph: {graph.n_vertices:,} vertices, {graph.n_edges:,} "
        f"undirected edges (+{100 * info.added_fraction:.1f}% eulerization edges)"
    )

    # 2. The partition-centric distributed algorithm (Phases 1-3) on 4
    #    simulated machines, with the merge strategy of the paper's §5
    #    proposal (remote-edge dedup + deferred transfer).
    result = find_euler_circuit(
        graph,
        n_parts=4,
        partitioner="ldg",      # ParHIP substitute
        strategy="proposed",    # or "eager" for the paper's baseline design
        seed=0,
    )

    # 3. The circuit: every edge exactly once, returning to the start.
    circuit = result.circuit
    verify_circuit(graph, circuit)
    print(
        f"circuit: {circuit.n_edges:,} edges, starts/ends at vertex "
        f"{circuit.start}, closed={circuit.is_closed}"
    )
    print("first 12 vertices of the tour:", circuit.vertices[:12].tolist())

    # 4. The execution report (what the paper's Figs. 5-9 measure).
    rep = result.report
    print(
        f"\ncoordination: {rep.n_supersteps} supersteps for {rep.n_parts} "
        f"partitions (paper: ceil(log2 n) + 1)"
    )
    print(
        f"time: total {rep.total_seconds:.2f}s, user-compute "
        f"{rep.compute_seconds:.2f}s"
    )
    print("memory state per level (Longs, the paper's Fig. 8 unit):")
    for row in rep.state_by_level():
        print(
            f"  level {row['level']}: {row['n_partitions']} partitions, "
            f"cumulative {row['cumulative_longs']:,}, "
            f"average {row['avg_longs']:,.0f}"
        )

if __name__ == "__main__":
    main()
