#!/usr/bin/env python
"""DNA fragment assembly: Euler circuits over a de Bruijn graph.

The paper motivates Euler circuits with DNA fragment assembly [Pevzner et
al., PNAS 2001]: build the de Bruijn graph of the reads (vertices are
(k-1)-mers, one edge per read) and an Eulerian traversal uses *every read
exactly once* — the insight that replaced Hamiltonian-path assembly.

This example:

1. synthesizes a circular genome and its k-mer reads;
2. builds the de Bruijn graph (even degrees by construction);
3. runs the *distributed* partition-centric algorithm to get a read layout
   that provably uses every read once (verified against the graph);
4. spells contigs from orientation-consistent runs of the layout and checks
   the assembly-theoretic guarantee: every k-window of a spelled contig is a
   genuine genome k-mer (a *valid genomic walk*; with repeats, walks can
   legally recombine, which is exactly the classical assembly ambiguity —
   full unique reconstruction needs the directed, repeat-resolved variant).

Run:  python examples/dna_assembly.py
"""

from repro.core import find_euler_circuit, verify_circuit
from repro.generate import de_bruijn_reads

def spell_contigs(circuit, labels, kmers: set, k: int):
    """Spell contigs from runs of steps whose spelled k-window is genomic.

    A step v -> w spells window ``labels[v] + labels[w][-1]`` when w's
    (k-1)-mer extends v's by one character; runs of steps whose windows are
    genuine genome k-mers become contigs.
    """
    verts = circuit.vertices.tolist()
    contigs = []
    cur = labels[verts[0]]
    genomic_steps = 0
    for a, b in zip(verts[:-1], verts[1:]):
        la, lb = labels[a], labels[b]
        window = la + lb[-1]
        if lb[:-1] == la[1:] and window in kmers:
            cur += lb[-1]
            genomic_steps += 1
        else:
            if len(cur) >= k:
                contigs.append(cur)
            cur = lb
    if len(cur) >= k:
        contigs.append(cur)
    return contigs, genomic_steps

def main() -> None:
    k = 8
    genome, reads, graph, labels = de_bruijn_reads(genome_len=4000, k=k, seed=11)
    print(
        f"genome: {len(genome):,} bp (circular); reads: {len(reads):,} "
        f"{k}-mers; de Bruijn graph: {graph.n_vertices:,} vertices, "
        f"{graph.n_edges:,} edges"
    )

    # Distributed Euler circuit = a layout using every read exactly once.
    result = find_euler_circuit(graph, n_parts=4, partitioner="ldg", seed=1)
    circuit = result.circuit
    verify_circuit(graph, circuit)
    print(
        f"layout: {circuit.n_edges:,} reads placed exactly once "
        f"(verified); {result.report.n_supersteps} supersteps on "
        f"{result.report.n_parts} partitions"
    )

    doubled = genome + genome  # windows of a circular genome
    kmers = {doubled[i : i + k] for i in range(len(genome))}
    contigs, genomic = spell_contigs(circuit, labels, kmers, k)
    frac = genomic / max(1, circuit.n_edges)
    longest = max(contigs, key=len)
    print(
        f"genomic layout steps: {genomic:,}/{circuit.n_edges:,} "
        f"({100 * frac:.0f}%); {len(contigs)} contigs spelled, "
        f"longest {len(longest)} bp"
    )

    # Assembly-theory guarantee: every k-window of every contig is a genome
    # k-mer (the contig is a valid genomic walk).
    for contig in contigs:
        for i in range(len(contig) - k + 1):
            assert contig[i : i + k] in kmers
    exact = sum(1 for c in contigs if c in doubled)
    print(
        f"all contig windows are genuine genome {k}-mers; "
        f"{exact}/{len(contigs)} contigs are also exact genome substrings"
    )
    assert circuit.n_edges == len(reads)
    print("OK: every read used exactly once; contigs validated.")

if __name__ == "__main__":
    main()
