"""Structural graph properties: parity, connectivity, Eulerian-ness.

These implement the classical facts the paper leans on (§3.1): a connected
graph has an Euler circuit iff every vertex has even degree [Euler 1741], and
every graph has an even number of odd-degree vertices (Handshaking Lemma).
"""

from __future__ import annotations

import numpy as np

from ..errors import DisconnectedGraphError, NotEulerianError
from .graph import Graph

__all__ = [
    "odd_vertices",
    "all_even_degrees",
    "connected_components",
    "n_edge_components",
    "is_connected",
    "is_eulerian",
    "check_eulerian",
    "euler_path_endpoints",
]


def odd_vertices(graph: Graph) -> np.ndarray:
    """Vertex ids whose undirected degree is odd (always an even count)."""
    deg = graph.degrees()
    return np.flatnonzero(deg % 2 == 1)


def all_even_degrees(graph: Graph) -> bool:
    """True iff every vertex has even degree."""
    return bool(np.all(graph.degrees() % 2 == 0))


def connected_components(graph: Graph) -> np.ndarray:
    """Label vertices by connected component.

    Returns an ``int64`` array ``comp`` with ``comp[v]`` in ``[0, k)`` for
    ``k`` components. Implemented as an iterative frontier BFS over the CSR
    arrays — NumPy-vectorized per frontier so large graphs stay fast without
    recursion.
    """
    n = graph.n_vertices
    comp = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return comp
    offsets, targets, _ = graph.csr
    label = 0
    for seed in range(n):
        if comp[seed] != -1:
            continue
        comp[seed] = label
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            # Gather all neighbours of the frontier in one shot.
            starts = offsets[frontier]
            ends = offsets[frontier + 1]
            counts = ends - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Build the index array for the concatenated neighbour slices.
            idx = np.repeat(starts, counts) + _ranges(counts)
            neigh = targets[idx]
            new = neigh[comp[neigh] == -1]
            if new.size == 0:
                break
            new = np.unique(new)
            comp[new] = label
            frontier = new
        label += 1
    return comp


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts (vectorized)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(ends - counts, counts)
    return out


def n_edge_components(graph: Graph) -> int:
    """Number of connected components that contain at least one edge."""
    if graph.n_edges == 0:
        return 0
    comp = connected_components(graph)
    return len(np.unique(comp[graph.edge_u]))


def is_connected(graph: Graph, ignore_isolated: bool = True) -> bool:
    """True iff the graph is connected.

    With ``ignore_isolated`` (the default, and what Eulerian-ness needs),
    vertices of degree zero are not counted against connectivity.
    """
    if graph.n_vertices == 0:
        return True
    comp = connected_components(graph)
    if not ignore_isolated:
        return int(comp.max()) == 0
    if graph.n_edges == 0:
        return True
    return n_edge_components(graph) <= 1


def is_eulerian(graph: Graph) -> bool:
    """True iff the graph has an Euler circuit.

    Requires every vertex to have even degree and all edges to lie in one
    connected component (isolated vertices are permitted).
    """
    if graph.n_edges == 0:
        return True
    return all_even_degrees(graph) and n_edge_components(graph) == 1


def check_eulerian(graph: Graph) -> None:
    """Raise a descriptive error if the graph has no Euler circuit.

    Raises
    ------
    NotEulerianError
        If some vertex has odd degree (carries a sample of the offenders).
    DisconnectedGraphError
        If the edges span multiple components.
    """
    odd = odd_vertices(graph)
    if odd.size:
        raise NotEulerianError(
            f"graph is not Eulerian: {odd.size} vertices have odd degree "
            f"(e.g. {odd[:8].tolist()})",
            odd_vertices=odd[:64].tolist(),
        )
    k = n_edge_components(graph)
    if k > 1:
        raise DisconnectedGraphError(
            f"graph edges span {k} connected components; an Euler circuit "
            "requires one (use repro.generate.eulerize or extract the "
            "largest component)",
            num_components=k,
        )


def euler_path_endpoints(graph: Graph) -> tuple[int, int] | None:
    """If the graph has an Euler *path* but not a circuit, return its endpoints.

    Returns the pair of odd-degree vertices when exactly two exist and the
    edges are connected; ``None`` when the graph is Eulerian (circuit exists)
    or has no Euler path at all.
    """
    odd = odd_vertices(graph)
    if odd.size != 2:
        return None
    if n_edge_components(graph) != 1:
        return None
    return int(odd[0]), int(odd[1])
