"""Graph substrate: immutable multigraphs, partitions, meta-graphs, IO.

Public surface re-exported here; see the individual modules for details:

* :class:`Graph`, :class:`GraphBuilder` — undirected multigraph with edge ids.
* :class:`PartitionedGraph`, :class:`PartitionView` — the paper's
  ``<I, B, L, R>`` partition model with OB/EB boundary classification.
* :class:`MetaGraph`, :func:`build_metagraph` — partition meta-graph (§3.1).
* :func:`is_eulerian`, :func:`check_eulerian`, :func:`connected_components`,
  :func:`odd_vertices` — structural properties.
* :func:`save_edge_list` / :func:`load_edge_list`,
  :func:`save_npz` / :func:`load_npz` — persistence.
"""

from .csr import build_csr, csr_degrees
from .graph import Graph, GraphBuilder
from .io import compact_labels, load_edge_list, load_npz, save_edge_list, save_npz
from .metagraph import MetaGraph, build_metagraph
from .partition import PartitionedGraph, PartitionView, partition_stats
from .properties import (
    all_even_degrees,
    check_eulerian,
    connected_components,
    euler_path_endpoints,
    is_connected,
    is_eulerian,
    n_edge_components,
    odd_vertices,
)
from .traversal import bfs_distances, bfs_tree, eccentricity_sample, shortest_path

__all__ = [
    "Graph",
    "GraphBuilder",
    "build_csr",
    "csr_degrees",
    "PartitionedGraph",
    "PartitionView",
    "partition_stats",
    "MetaGraph",
    "build_metagraph",
    "all_even_degrees",
    "check_eulerian",
    "connected_components",
    "euler_path_endpoints",
    "is_connected",
    "is_eulerian",
    "n_edge_components",
    "odd_vertices",
    "bfs_distances",
    "bfs_tree",
    "eccentricity_sample",
    "shortest_path",
    "compact_labels",
    "load_edge_list",
    "load_npz",
    "save_edge_list",
    "save_npz",
]
