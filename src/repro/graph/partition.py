"""Partitioned-graph model: ``P_i = <I_i, B_i, L_i, R_i>`` (paper §3.1).

A :class:`PartitionedGraph` couples a :class:`~repro.graph.graph.Graph` with
a vertex→partition map and derives, per partition:

* ``I`` — internal vertices (all incident edges local),
* ``B`` — boundary vertices (at least one remote edge),
* ``L`` — local edges (both endpoints in the partition),
* ``R`` — remote half-edges (one endpoint in the partition).

Boundary vertices are further classified by *local-degree parity* into
odd-degree (OB) and even-degree (EB) boundary vertices, the distinction that
drives Phase 1 (§3.1–3.2). Everything is computed vectorized from the edge
arrays; a per-partition :class:`PartitionView` carries NumPy index arrays,
never Python sets, so Table-1 style statistics are cheap at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from .graph import Graph

__all__ = ["PartitionView", "PartitionedGraph", "partition_stats"]

# Vertex-kind codes used in census arrays (Fig. 9 vocabulary).
KIND_INTERNAL = 0
KIND_EB = 1  # even-degree boundary vertex
KIND_OB = 2  # odd-degree boundary vertex


@dataclass(frozen=True)
class PartitionView:
    """Immutable per-partition slice of a :class:`PartitionedGraph`.

    Attributes mirror the paper's ``<I, B, L, R>`` quadruple plus the OB/EB
    split. All arrays are ``int64``.
    """

    pid: int
    #: Internal vertices ``I_i``.
    internal: np.ndarray
    #: Boundary vertices ``B_i``.
    boundary: np.ndarray
    #: Odd-local-degree boundary vertices (``OB_i``).
    ob: np.ndarray
    #: Even-local-degree boundary vertices (``EB_i``).
    eb: np.ndarray
    #: Local edge ids ``L_i`` (undirected ids into the parent graph).
    local_eids: np.ndarray
    #: Remote half-edge table, one row per half-edge whose source lies in
    #: this partition: columns ``(src, dst, eid, dst_pid)``.
    remote: np.ndarray = field(repr=False)

    @property
    def n_vertices(self) -> int:
        """``|I_i| + |B_i|``."""
        return int(self.internal.size + self.boundary.size)

    @property
    def n_local_edges(self) -> int:
        """``|L_i|`` as undirected edges."""
        return int(self.local_eids.size)

    @property
    def n_remote_edges(self) -> int:
        """``|R_i|`` as remote *half*-edges (the paper's directed convention)."""
        return int(self.remote.shape[0])

    def phase1_cost(self) -> int:
        """The paper's Phase-1 complexity term ``O(|B_i| + |I_i| + |L_i|)``."""
        return int(self.boundary.size + self.internal.size + self.local_eids.size)


class PartitionedGraph:
    """A graph plus a vertex→partition assignment with derived views.

    Parameters
    ----------
    graph:
        The underlying immutable graph.
    part_of:
        ``int64[n_vertices]`` mapping each vertex to a partition id in
        ``[0, n_parts)``.
    n_parts:
        Number of partitions; inferred as ``part_of.max()+1`` when omitted.
    """

    def __init__(self, graph: Graph, part_of, n_parts: int | None = None):
        part_of = np.asarray(part_of, dtype=np.int64)
        if part_of.shape != (graph.n_vertices,):
            raise PartitionError(
                f"part_of has shape {part_of.shape}, expected ({graph.n_vertices},)"
            )
        if graph.n_vertices:
            if part_of.min() < 0:
                raise PartitionError("negative partition id")
            inferred = int(part_of.max()) + 1
        else:
            inferred = 0
        self.n_parts = int(n_parts) if n_parts is not None else inferred
        if inferred > self.n_parts:
            raise PartitionError(
                f"partition id {inferred - 1} out of range for n_parts={self.n_parts}"
            )
        self.graph = graph
        self.part_of = part_of

        u, v = graph.edge_u, graph.edge_v
        self._pu = part_of[u] if graph.n_edges else np.empty(0, dtype=np.int64)
        self._pv = part_of[v] if graph.n_edges else np.empty(0, dtype=np.int64)
        #: Boolean mask over undirected edges: True where both endpoints share
        #: a partition (a *local* edge).
        self.local_mask = self._pu == self._pv

    # -- global statistics ---------------------------------------------------

    @property
    def n_cut_edges(self) -> int:
        """Number of undirected edges crossing partitions."""
        return int((~self.local_mask).sum())

    def edge_cut_fraction(self) -> float:
        """``sum_i |R_i| / |E|`` with both sides bi-directed — equals the
        undirected cut fraction (Table 1's cut column)."""
        m = self.graph.n_edges
        return (self.n_cut_edges / m) if m else 0.0

    def vertex_counts(self) -> np.ndarray:
        """``|V_i|`` per partition."""
        return np.bincount(self.part_of, minlength=self.n_parts).astype(np.int64)

    def imbalance(self) -> float:
        """Peak vertex imbalance ``max_i | (|V| - n*|V_i|) / |V| |`` (Table 1)."""
        n_v = self.graph.n_vertices
        if n_v == 0:
            return 0.0
        counts = self.vertex_counts()
        return float(np.max(np.abs(n_v - self.n_parts * counts)) / n_v)

    # -- per-partition views ---------------------------------------------------

    def view(self, pid: int) -> PartitionView:
        """Build the ``<I, B, L, R>`` view for partition ``pid``."""
        if not (0 <= pid < self.n_parts):
            raise PartitionError(f"pid {pid} out of range [0, {self.n_parts})")
        part_of = self.part_of
        verts = np.flatnonzero(part_of == pid)

        u, v = self.graph.edge_u, self.graph.edge_v
        pu, pv = self._pu, self._pv
        local_eids = np.flatnonzero(self.local_mask & (pu == pid))

        # Remote half-edges with source in this partition (either direction of
        # the undirected cut edge may face us).
        out_mask = (pu == pid) & ~self.local_mask
        in_mask = (pv == pid) & ~self.local_mask
        eids = np.concatenate([np.flatnonzero(out_mask), np.flatnonzero(in_mask)])
        src = np.concatenate([u[out_mask], v[in_mask]])
        dst = np.concatenate([v[out_mask], u[in_mask]])
        dst_pid = part_of[dst] if dst.size else dst
        remote = np.column_stack([src, dst, eids, dst_pid]) if eids.size else (
            np.empty((0, 4), dtype=np.int64)
        )

        boundary = np.unique(src)
        internal = verts[~np.isin(verts, boundary, assume_unique=True)]

        # Local-degree parity of boundary vertices -> OB/EB split.
        local_deg = np.zeros(self.graph.n_vertices, dtype=np.int64)
        if local_eids.size:
            np.add.at(local_deg, u[local_eids], 1)
            np.add.at(local_deg, v[local_eids], 1)
        odd_mask = (local_deg[boundary] % 2) == 1
        ob = boundary[odd_mask]
        eb = boundary[~odd_mask]
        return PartitionView(
            pid=pid,
            internal=internal,
            boundary=boundary,
            ob=ob,
            eb=eb,
            local_eids=local_eids,
            remote=remote,
        )

    def views(self) -> list[PartitionView]:
        """All per-partition views."""
        return [self.view(pid) for pid in range(self.n_parts)]

    # -- grouped light accessors (the data plane's level-0 fast path) --------

    def _grouped(self):
        """Per-pid slices of local eids and remote rows, built once.

        One global radix sort replaces the per-partition O(|E|) mask scans
        of :meth:`view` for callers that only need ``L_i`` and ``R_i`` (the
        superstep program loading every partition at level 0). Slice order
        matches :meth:`view`: local eids ascending; remote rows out-facing
        then in-facing, each ascending by eid. Building twice under the
        thread backend is benign (idempotent); the process backend builds
        once per worker copy.
        """
        cached = getattr(self, "_grouped_cache", None)
        if cached is not None:
            return cached
        u, v = self.graph.edge_u, self.graph.edge_v
        pu, pv = self._pu, self._pv
        bound = np.arange(self.n_parts + 1)

        local = np.flatnonzero(self.local_mask)
        local = local[np.argsort(pu[local], kind="stable")]
        local_starts = np.searchsorted(pu[local], bound)

        cut = np.flatnonzero(~self.local_mask)
        n_cut = cut.size
        rows = np.empty((2 * n_cut, 4), dtype=np.int64)
        rows[:n_cut, 0] = u[cut]
        rows[:n_cut, 1] = v[cut]
        rows[:n_cut, 2] = cut
        rows[:n_cut, 3] = pv[cut]
        rows[n_cut:, 0] = v[cut]
        rows[n_cut:, 1] = u[cut]
        rows[n_cut:, 2] = cut
        rows[n_cut:, 3] = pu[cut]
        owners = np.concatenate((pu[cut], pv[cut]))
        # Single-key stable sort: both blocks are already eid-ascending, so
        # sorting by (owner, facing) alone reproduces view()'s row order
        # (out-facing then in-facing, eids ascending) at radix-sort speed.
        key = owners * 2
        key[n_cut:] += 1
        order = np.argsort(key, kind="stable")
        rows = rows[order]
        remote_starts = np.searchsorted(owners[order], bound)

        cached = (local, local_starts, rows, remote_starts)
        self._grouped_cache = cached
        return cached

    def build_grouped_index(self) -> None:
        """Materialize the per-pid grouped index now (e.g. during Setup),
        so the first superstep's partition loads are pure slicing."""
        self._grouped()

    def local_eids_of(self, pid: int) -> np.ndarray:
        """``L_i`` (ascending eids) without building a full view."""
        local, starts, _, _ = self._grouped()
        return local[starts[pid]:starts[pid + 1]]

    def remote_rows_of(self, pid: int) -> np.ndarray:
        """``R_i`` rows ``(src, dst, eid, dst_pid)`` without a full view."""
        _, _, rows, starts = self._grouped()
        return rows[starts[pid]:starts[pid + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionedGraph(n_vertices={self.graph.n_vertices}, "
            f"n_edges={self.graph.n_edges}, n_parts={self.n_parts})"
        )


def partition_stats(pg: PartitionedGraph) -> dict:
    """Table-1 row for a partitioned graph.

    Returns a dict with the paper's columns: ``n_vertices``, bi-directed edge
    count ``n_bidirected_edges``, total boundary vertices ``sum_boundary``,
    ``n_parts``, ``cut_fraction`` and ``imbalance``.
    """
    views = pg.views()
    return {
        "n_vertices": pg.graph.n_vertices,
        "n_edges": pg.graph.n_edges,
        "n_bidirected_edges": 2 * pg.graph.n_edges,
        "sum_boundary": int(sum(w.boundary.size for w in views)),
        "n_parts": pg.n_parts,
        "cut_fraction": pg.edge_cut_fraction(),
        "imbalance": pg.imbalance(),
    }
