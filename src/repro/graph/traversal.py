"""BFS traversal utilities: distances, shortest paths, multi-source BFS.

Substrate for the Chinese-Postman extension (pairing odd vertices by
shortest deadhead routes) and for partition refinement. Unweighted BFS only
— the paper's graphs are unweighted, and hop distance is the natural
deadheading cost on them.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .graph import Graph

__all__ = ["bfs_distances", "shortest_path", "bfs_tree", "eccentricity_sample"]


def bfs_distances(graph: Graph, source: int, cutoff: int | None = None) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 if unreachable).

    ``cutoff`` stops the search beyond that distance (entries stay -1).
    """
    n = graph.n_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    offsets, targets, _ = graph.csr
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        if cutoff is not None and d >= cutoff:
            break
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        idx = np.repeat(starts, counts) + _ranges(counts)
        neigh = targets[idx]
        new = np.unique(neigh[dist[neigh] == -1])
        if new.size == 0:
            break
        d += 1
        dist[new] = d
        frontier = new
    return dist


def _ranges(counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(ends - counts, counts)
    return out


def bfs_tree(graph: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """BFS parent pointers from ``source``.

    Returns ``(parent_vertex, parent_edge)`` arrays (-1 where unreachable or
    at the source); ``parent_edge[v]`` is the edge id used to first reach
    ``v``.
    """
    n = graph.n_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")
    offsets, targets, eids = graph.csr
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    dq = deque([source])
    while dq:
        x = dq.popleft()
        for i in range(offsets[x], offsets[x + 1]):
            t = int(targets[i])
            if not seen[t]:
                seen[t] = True
                parent[t] = x
                parent_edge[t] = int(eids[i])
                dq.append(t)
    return parent, parent_edge


def shortest_path(graph: Graph, source: int, target: int) -> tuple[list[int], list[int]]:
    """One shortest (hop-count) path as ``(vertices, edge_ids)``.

    Raises ``ValueError`` if ``target`` is unreachable. ``vertices`` has one
    more entry than ``edge_ids``; a source==target query returns
    ``([source], [])``.
    """
    if source == target:
        return [source], []
    parent, parent_edge = bfs_tree(graph, source)
    if parent[target] == -1:
        raise ValueError(f"no path from {source} to {target}")
    verts = [target]
    eids: list[int] = []
    cur = target
    while cur != source:
        eids.append(int(parent_edge[cur]))
        cur = int(parent[cur])
        verts.append(cur)
    verts.reverse()
    eids.reverse()
    return verts, eids


def eccentricity_sample(graph: Graph, seeds, cutoff: int | None = None) -> int:
    """Max BFS depth over a sample of seed vertices (diameter lower bound)."""
    best = 0
    for s in seeds:
        dist = bfs_distances(graph, int(s), cutoff=cutoff)
        reached = dist[dist >= 0]
        if reached.size:
            best = max(best, int(reached.max()))
    return best
