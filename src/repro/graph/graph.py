"""Undirected multigraph with stable integer edge ids.

This is the base substrate every other module builds on. Design points,
driven by the paper (§3.1) and the HPC guides:

* Vertices are dense integers ``0..n-1``; edges are identified by a dense
  integer id equal to their index in the endpoint arrays. Both the Phase-1
  traversal ("mark edge visited") and the §5 remote-edge-deduplication
  improvement need edge *identity*, not just endpoint pairs, and parallel
  edges must be representable — hence a multigraph keyed by edge id.
* Endpoints live in NumPy ``int64`` arrays; adjacency is CSR built once
  (vectorized, see :mod:`repro.graph.csr`) and cached. A :class:`Graph` is
  immutable after construction — mutation happens by building a new graph
  (see :class:`GraphBuilder`), which keeps the CSR cache trivially coherent.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .csr import build_csr

__all__ = ["Graph", "GraphBuilder"]


class Graph:
    """An immutable undirected multigraph.

    Parameters
    ----------
    n_vertices:
        Number of vertices (ids ``0..n_vertices-1``; isolated vertices are
        allowed and simply have degree 0).
    edge_u, edge_v:
        Endpoint arrays; undirected edge ``i`` joins ``edge_u[i]`` and
        ``edge_v[i]``. The arrays are copied into ``int64`` storage.
    """

    # __weakref__ lets the graph catalog track live references to a graph
    # it may want to evict (an mmap-backed Graph must not lose its NPZ file
    # while a job still reads through the mapping).
    __slots__ = ("_n", "_u", "_v", "_csr", "__weakref__")

    def __init__(self, n_vertices: int, edge_u=(), edge_v=()):
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._n = int(n_vertices)
        self._u = np.array(edge_u, dtype=np.int64).reshape(-1)
        self._v = np.array(edge_v, dtype=np.int64).reshape(-1)
        if self._u.shape != self._v.shape:
            raise ValueError("edge_u and edge_v must have equal length")
        if self._u.size and (
            min(self._u.min(), self._v.min()) < 0
            or max(self._u.max(), self._v.max()) >= self._n
        ):
            raise ValueError("edge endpoint out of range")
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(cls, n_vertices: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        pairs = list(edges)
        if pairs:
            arr = np.array(pairs, dtype=np.int64)
            return cls(n_vertices, arr[:, 0], arr[:, 1])
        return cls(n_vertices)

    @classmethod
    def from_arrays(cls, n_vertices: int, edge_u, edge_v, check: bool = True) -> "Graph":
        """Wrap existing ``int64`` endpoint arrays **without copying**.

        The zero-copy constructor for memory-mapped storage (the graph
        catalog loads edge arrays with ``load_npz(..., mmap=True)`` and
        hands them straight here). Arrays of any other dtype fall back to
        the copying ``__init__``. ``check=False`` skips the endpoint range
        scan — only for sources that validated the arrays when persisting
        them, since the scan would otherwise page in the whole mapping.
        """
        u = np.asarray(edge_u).reshape(-1)
        v = np.asarray(edge_v).reshape(-1)
        if u.dtype != np.int64 or v.dtype != np.int64:
            return cls(n_vertices, u, v)
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        if u.shape != v.shape:
            raise ValueError("edge_u and edge_v must have equal length")
        if check and u.size and (
            min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n_vertices
        ):
            raise ValueError("edge endpoint out of range")
        g = cls.__new__(cls)
        g._n = int(n_vertices)
        g._u = u
        g._v = v
        g._csr = None
        return g

    # -- basic accessors ---------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of *undirected* edges (the paper's bi-directed counts are 2x)."""
        return int(self._u.shape[0])

    @property
    def edge_u(self) -> np.ndarray:
        """First-endpoint array (read-only view)."""
        u = self._u.view()
        u.flags.writeable = False
        return u

    @property
    def edge_v(self) -> np.ndarray:
        """Second-endpoint array (read-only view)."""
        v = self._v.view()
        v.flags.writeable = False
        return v

    def endpoints(self, eid: int) -> tuple[int, int]:
        """Return the ``(u, v)`` endpoints of undirected edge ``eid``."""
        return int(self._u[eid]), int(self._v[eid])

    def other_endpoint(self, eid: int, vertex: int) -> int:
        """Return the endpoint of ``eid`` that is not ``vertex``.

        For a self loop both endpoints equal ``vertex`` and ``vertex`` is
        returned.
        """
        u, v = int(self._u[eid]), int(self._v[eid])
        if vertex == u:
            return v
        if vertex == v:
            return u
        raise ValueError(f"vertex {vertex} is not an endpoint of edge {eid}")

    # -- adjacency ---------------------------------------------------------

    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The cached CSR triple ``(offsets, targets, eids)`` (built lazily)."""
        if self._csr is None:
            self._csr = build_csr(self._n, self._u, self._v)
        return self._csr

    def degrees(self) -> np.ndarray:
        """Vector of undirected degrees (self loops count 2, as in the paper)."""
        return np.diff(self.csr[0])

    def degree(self, vertex: int) -> int:
        """Degree of a single vertex."""
        offsets = self.csr[0]
        return int(offsets[vertex + 1] - offsets[vertex])

    def incident(self, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbours, edge_ids)`` arrays for ``vertex``'s half-edges."""
        offsets, targets, eids = self.csr
        lo, hi = offsets[vertex], offsets[vertex + 1]
        return targets[lo:hi], eids[lo:hi]

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbour array of ``vertex`` (with multiplicity, self loops twice)."""
        return self.incident(vertex)[0]

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(eid, u, v)`` for every undirected edge."""
        for i in range(self.n_edges):
            yield i, int(self._u[i]), int(self._v[i])

    # -- derived graphs ----------------------------------------------------

    def subgraph_edges(self, eids: np.ndarray) -> "Graph":
        """Graph with the same vertex set but only the given edge ids."""
        eids = np.asarray(eids, dtype=np.int64)
        return Graph(self._n, self._u[eids], self._v[eids])

    def with_extra_edges(self, extra_u, extra_v) -> "Graph":
        """New graph with additional edges appended (ids of old edges stable)."""
        return Graph(
            self._n,
            np.concatenate([self._u, np.asarray(extra_u, dtype=np.int64)]),
            np.concatenate([self._v, np.asarray(extra_v, dtype=np.int64)]),
        )

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(n_vertices={self._n}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._u, other._u)
            and np.array_equal(self._v, other._v)
        )

    def __hash__(self):  # Graphs are mutable-free but large; keep unhashable.
        raise TypeError("Graph is not hashable")


class GraphBuilder:
    """Incremental construction helper producing an immutable :class:`Graph`.

    Example
    -------
    >>> b = GraphBuilder(4)
    >>> b.add_edge(0, 1); b.add_edge(1, 2)
    0
    1
    >>> g = b.build()
    >>> g.n_edges
    2
    """

    def __init__(self, n_vertices: int = 0):
        self.n_vertices = int(n_vertices)
        self._us: list[int] = []
        self._vs: list[int] = []

    def ensure_vertex(self, vertex: int) -> None:
        """Grow the vertex space so that ``vertex`` is valid."""
        if vertex >= self.n_vertices:
            self.n_vertices = vertex + 1

    def add_edge(self, u: int, v: int) -> int:
        """Append an undirected edge, growing the vertex space; returns its id."""
        if u < 0 or v < 0:
            raise ValueError("vertex ids must be non-negative")
        self.ensure_vertex(max(u, v))
        self._us.append(u)
        self._vs.append(v)
        return len(self._us) - 1

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Append many undirected edges."""
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def n_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._us)

    def build(self) -> Graph:
        """Produce the immutable :class:`Graph`."""
        return Graph(self.n_vertices, self._us, self._vs)
