"""Meta-graph over partitions (paper §3.1).

The meta-graph ``G = <V, E>`` has one meta-vertex per partition and a
meta-edge ``m_ij`` wherever at least one graph edge crosses between the
boundary vertices of partitions ``i`` and ``j``; its weight ``w(m_ij)`` is
the count of such crossing edges. Phase 2 (Alg. 2) builds the merge tree by
repeated maximal matching over this small structure, so the representation
here favours clarity over raw speed — it is O(n^2) small by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .partition import PartitionedGraph

__all__ = ["MetaGraph", "build_metagraph"]


@dataclass
class MetaGraph:
    """Weighted undirected meta-graph over partition ids.

    Attributes
    ----------
    vertices:
        Sorted list of live partition ids.
    weights:
        Mapping from the canonical pair ``(min(i,j), max(i,j))`` to the
        number of undirected graph edges between the two partitions.
    """

    vertices: list[int]
    weights: dict[tuple[int, int], int] = field(default_factory=dict)

    def weight(self, i: int, j: int) -> int:
        """Weight of meta-edge ``(i, j)`` (0 if absent)."""
        key = (i, j) if i <= j else (j, i)
        return self.weights.get(key, 0)

    def edges_sorted(self) -> list[tuple[int, int, int]]:
        """Meta-edges as ``(weight, i, j)`` sorted by descending weight.

        Ties break on ascending ``(i, j)`` so the greedy matching in Alg. 2 is
        deterministic.
        """
        return sorted(
            ((w, i, j) for (i, j), w in self.weights.items()),
            key=lambda t: (-t[0], t[1], t[2]),
        )

    def merged(self, pairs: list[tuple[int, int]], parent_of: dict[int, int]) -> "MetaGraph":
        """Meta-graph after contracting each matched pair into its parent.

        This is Alg. 2's ``rebuildMetaGraph``: every vertex maps through
        ``parent_of`` (vertices not matched this level map to themselves) and
        parallel meta-edges accumulate their weights; self-edges (now-internal
        weight) are dropped.
        """
        remap = {v: parent_of.get(v, v) for v in self.vertices}
        new_vertices = sorted(set(remap.values()))
        new_weights: dict[tuple[int, int], int] = {}
        for (i, j), w in self.weights.items():
            a, b = remap[i], remap[j]
            if a == b:
                continue
            key = (a, b) if a <= b else (b, a)
            new_weights[key] = new_weights.get(key, 0) + w
        return MetaGraph(new_vertices, new_weights)


def build_metagraph(pg: PartitionedGraph) -> MetaGraph:
    """Construct the meta-graph of a partitioned graph (vectorized).

    The weight of ``(i, j)`` counts *undirected* cut edges between the
    partitions, matching ``w(m_ij)`` in §3.1.
    """
    cut = ~pg.local_mask
    pu = pg.part_of[pg.graph.edge_u[cut]] if pg.graph.n_edges else np.empty(0, np.int64)
    pv = pg.part_of[pg.graph.edge_v[cut]] if pg.graph.n_edges else np.empty(0, np.int64)
    lo = np.minimum(pu, pv)
    hi = np.maximum(pu, pv)
    weights: dict[tuple[int, int], int] = {}
    if lo.size:
        # Encode pairs into a single int for a vectorized group-by.
        code = lo * pg.n_parts + hi
        uniq, counts = np.unique(code, return_counts=True)
        for c, cnt in zip(uniq.tolist(), counts.tolist()):
            weights[(c // pg.n_parts, c % pg.n_parts)] = int(cnt)
    return MetaGraph(list(range(pg.n_parts)), weights)
