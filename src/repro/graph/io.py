"""Graph persistence: plain edge-list text and compact NPZ binary.

Formats
-------
* **Edge list** — one ``u v`` pair per line, ``#`` comments allowed; the
  vertex count is ``max id + 1`` unless a ``# vertices: N`` header is present.
  This matches what common graph tools (SNAP, METIS converters) emit.
* **NPZ** — NumPy archive with ``n_vertices``, ``edge_u``, ``edge_v`` (and an
  optional ``part_of``); loss-less and fast, used by the benchmark harness to
  cache generated workloads.
"""

from __future__ import annotations

import io as _stdio
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .graph import Graph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "compact_labels",
]


def save_edge_list(graph: Graph, path) -> None:
    """Write the graph as a text edge list with a vertex-count header."""
    path = Path(path)
    with path.open("w") as f:
        f.write(f"# vertices: {graph.n_vertices}\n")
        np.savetxt(f, np.column_stack([graph.edge_u, graph.edge_v]), fmt="%d")


def load_edge_list(path) -> Graph:
    """Read a text edge list (``u v`` per line, ``#`` comments)."""
    path = Path(path)
    n_header: int | None = None
    rows: list[str] = []
    with path.open() as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("vertices:"):
                    try:
                        n_header = int(body.split(":", 1)[1])
                    except ValueError as exc:
                        raise GraphFormatError(
                            f"{path}:{lineno}: bad vertices header {line!r}"
                        ) from exc
                continue
            rows.append(line)
    if rows:
        try:
            arr = np.loadtxt(_stdio.StringIO("\n".join(rows)), dtype=np.int64, ndmin=2)
        except ValueError as exc:
            raise GraphFormatError(f"{path}: malformed edge line: {exc}") from exc
        if arr.shape[1] < 2:
            raise GraphFormatError(f"{path}: expected two columns per edge line")
        u, v = arr[:, 0], arr[:, 1]
    else:
        u = v = np.empty(0, dtype=np.int64)
    n = n_header if n_header is not None else (int(max(u.max(), v.max())) + 1 if u.size else 0)
    try:
        return Graph(n, u, v)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: {exc}") from exc


def save_npz(graph: Graph, path, part_of: np.ndarray | None = None) -> None:
    """Write the graph (and optionally a partition map) to an NPZ archive."""
    data = {
        "n_vertices": np.int64(graph.n_vertices),
        "edge_u": np.asarray(graph.edge_u),
        "edge_v": np.asarray(graph.edge_v),
    }
    if part_of is not None:
        data["part_of"] = np.asarray(part_of, dtype=np.int64)
    np.savez_compressed(path, **data)


def load_npz(path) -> tuple[Graph, np.ndarray | None]:
    """Read a graph (and partition map, if present) from an NPZ archive."""
    with np.load(path) as z:
        try:
            g = Graph(int(z["n_vertices"]), z["edge_u"], z["edge_v"])
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc
        part = z["part_of"] if "part_of" in z.files else None
    return g, part


def compact_labels(edge_u, edge_v) -> tuple[Graph, np.ndarray]:
    """Relabel arbitrary integer vertex ids to dense ``0..n-1``.

    Returns the compacted :class:`Graph` and the sorted array of original
    labels (``labels[new_id] == original_id``).
    """
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    labels, inverse = np.unique(np.concatenate([edge_u, edge_v]), return_inverse=True)
    m = edge_u.shape[0]
    return Graph(labels.size, inverse[:m], inverse[m:]), labels
