"""Graph persistence: plain edge-list text and compact NPZ binary.

Formats
-------
* **Edge list** — one ``u v`` pair per line, ``#`` comments allowed; the
  vertex count is ``max id + 1`` unless a ``# vertices: N`` header is present.
  This matches what common graph tools (SNAP, METIS converters) emit.
* **NPZ** — NumPy archive with ``n_vertices``, ``edge_u``, ``edge_v`` (and an
  optional ``part_of``); loss-less and fast, used by the benchmark harness to
  cache generated workloads and by the graph catalog as its on-disk store.

All writers are **atomic**: content goes to a temp file in the destination
directory and is moved into place with :func:`os.replace`, so a crashed
writer (or a killed job) can never leave a truncated file under a valid
name — the durability contract the job catalog relies on.

``save_npz(..., compressed=False)`` stores members uncompressed, which lets
``load_npz(..., mmap=True)`` memory-map the edge arrays straight out of the
archive instead of copying them into RAM — the catalog's warm-load path.
"""

from __future__ import annotations

import io as _stdio
import os
import tempfile
import zipfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .graph import Graph

__all__ = [
    "atomic_write",
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "compact_labels",
]


@contextmanager
def atomic_write(path, suffix: str = ""):
    """Yield a binary file handle that atomically replaces ``path`` on close.

    The temp file lives in the destination directory (created if missing) so
    the final :func:`os.replace` is a same-filesystem rename — atomic on
    POSIX. On any error the temp file is removed and ``path`` is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=suffix)
    try:
        with os.fdopen(fd, "wb") as fh:
            yield fh
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_edge_list(graph: Graph, path) -> None:
    """Write the graph as a text edge list with a vertex-count header."""
    with atomic_write(path, suffix=".txt") as fh:
        fh.write(f"# vertices: {graph.n_vertices}\n".encode())
        np.savetxt(fh, np.column_stack([graph.edge_u, graph.edge_v]), fmt="%d")


def load_edge_list(path) -> Graph:
    """Read a text edge list (``u v`` per line, ``#`` comments)."""
    path = Path(path)
    n_header: int | None = None
    rows: list[str] = []
    row_lines: list[int] = []
    with path.open() as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("vertices:"):
                    try:
                        n_header = int(body.split(":", 1)[1])
                    except ValueError as exc:
                        raise GraphFormatError(
                            f"{path}:{lineno}: bad vertices header {line!r}"
                        ) from exc
                continue
            rows.append(line)
            row_lines.append(lineno)
    if rows:
        try:
            arr = np.loadtxt(_stdio.StringIO("\n".join(rows)), dtype=np.int64, ndmin=2)
        except ValueError as exc:
            raise GraphFormatError(f"{path}: malformed edge line: {exc}") from exc
        if arr.shape[1] < 2:
            raise GraphFormatError(f"{path}: expected two columns per edge line")
        u, v = arr[:, 0], arr[:, 1]
    else:
        u = v = np.empty(0, dtype=np.int64)
    if n_header is not None and u.size:
        # An undersized header would otherwise surface as an opaque Graph
        # constructor error; report the first offending edge with its line.
        row_max = np.maximum(u, v)
        if int(row_max.max()) >= n_header:
            i = int(np.argmax(row_max >= n_header))
            raise GraphFormatError(
                f"{path}:{row_lines[i]}: edge ({int(u[i])}, {int(v[i])}) "
                f"references vertex {int(row_max[i])} but the header "
                f"declares only {n_header} vertices "
                f"(need at least {int(row_max.max()) + 1})"
            )
    n = n_header if n_header is not None else (int(max(u.max(), v.max())) + 1 if u.size else 0)
    try:
        return Graph(n, u, v)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: {exc}") from exc


def save_npz(
    graph: Graph, path, part_of: np.ndarray | None = None, compressed: bool = True
) -> None:
    """Write the graph (and optionally a partition map) to an NPZ archive.

    ``compressed=False`` stores the members raw (zip STORED), enabling
    ``load_npz(..., mmap=True)`` to memory-map them later.
    """
    data = {
        "n_vertices": np.int64(graph.n_vertices),
        "edge_u": np.asarray(graph.edge_u),
        "edge_v": np.asarray(graph.edge_v),
    }
    if part_of is not None:
        data["part_of"] = np.asarray(part_of, dtype=np.int64)
    writer = np.savez_compressed if compressed else np.savez
    with atomic_write(path, suffix=".npz") as fh:
        writer(fh, **data)


def _mmap_npz_members(path: Path) -> dict[str, np.ndarray] | None:
    """Memory-map every array member of an *uncompressed* NPZ archive.

    Returns ``None`` when any member is deflate-compressed (nothing to map).
    Works by locating each member's raw ``.npy`` payload inside the zip:
    local file header at ``header_offset``, then the npy header, then the
    array bytes — mapped read-only straight from the archive file.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf, path.open("rb") as raw:
        for info in zf.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            raw.seek(info.header_offset)
            local = raw.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            try:
                version = np.lib.format.read_magic(raw)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
                else:
                    return None
            except ValueError:
                return None
            if dtype.hasobject:
                return None
            key = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
            if shape == ():
                # 0-d members (n_vertices) are scalars; nothing to map lazily.
                arrays[key] = np.fromfile(raw, dtype=dtype, count=1).reshape(())
                continue
            arrays[key] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=raw.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


def load_npz(
    path, mmap: bool = False, validate: bool = True
) -> tuple[Graph, np.ndarray | None]:
    """Read a graph (and partition map, if present) from an NPZ archive.

    With ``mmap=True`` and an archive written by ``save_npz(...,
    compressed=False)``, the edge arrays are memory-mapped read-only from
    the file instead of copied into RAM (the graph catalog's load path);
    compressed archives silently fall back to a regular load.
    ``validate=False`` additionally skips the endpoint range scan on the
    mapped arrays — for callers that wrote the archive from an
    already-validated :class:`Graph`, where the scan would page in the
    whole mapping and defeat the lazy load.
    """
    path = Path(path)
    if mmap:
        members = _mmap_npz_members(path)
        if members is not None:
            try:
                g = Graph.from_arrays(
                    int(members["n_vertices"]),
                    members["edge_u"],
                    members["edge_v"],
                    check=validate,
                )
            except KeyError as exc:
                raise GraphFormatError(f"{path}: missing array {exc}") from exc
            part = members.get("part_of")
            return g, part
    with np.load(path) as z:
        try:
            g = Graph(int(z["n_vertices"]), z["edge_u"], z["edge_v"])
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc
        part = z["part_of"] if "part_of" in z.files else None
    return g, part


def compact_labels(edge_u, edge_v) -> tuple[Graph, np.ndarray]:
    """Relabel arbitrary integer vertex ids to dense ``0..n-1``.

    Returns the compacted :class:`Graph` and the sorted array of original
    labels (``labels[new_id] == original_id``).
    """
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    labels, inverse = np.unique(np.concatenate([edge_u, edge_v]), return_inverse=True)
    m = edge_u.shape[0]
    return Graph(labels.size, inverse[:m], inverse[m:]), labels
