"""Vectorized CSR (compressed sparse row) adjacency construction.

The paper models an undirected edge as a *pair of directed half-edges*
(``e_ij`` and ``e_ji``, §3.1). This module builds the CSR arrays for that
doubled representation from the undirected edge arrays, entirely with NumPy
(no Python-level loop over edges), following the vectorization guidance of
the HPC coding guides.

The CSR triple is:

``offsets``
    ``int64[n_vertices + 1]`` — half-edges of vertex ``v`` live in
    ``targets[offsets[v]:offsets[v+1]]``.
``targets``
    ``int64[2 * n_edges]`` — the neighbour at the other end of each half-edge.
``eids``
    ``int64[2 * n_edges]`` — the undirected edge id of each half-edge, so the
    two half-edges of one undirected edge share an id and a traversal can
    mark both visited at once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_csr", "csr_degrees"]


def build_csr(
    n_vertices: int, edge_u: np.ndarray, edge_v: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build CSR adjacency for the doubled directed-half-edge representation.

    Parameters
    ----------
    n_vertices:
        Number of vertices; vertex ids must lie in ``[0, n_vertices)``.
    edge_u, edge_v:
        Endpoint arrays of the undirected edges; edge ``i`` connects
        ``edge_u[i]`` and ``edge_v[i]``. Self loops are permitted and
        contribute two half-edges at the same vertex.

    Returns
    -------
    (offsets, targets, eids):
        The CSR triple described in the module docstring. Within one vertex,
        half-edges where the vertex is the ``u`` endpoint appear first (in
        ascending edge id), then those where it is the ``v`` endpoint (also
        ascending) — a fixed order that makes traversal deterministic.
    """
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    if edge_u.shape != edge_v.shape:
        raise ValueError("edge_u and edge_v must have the same shape")
    m = edge_u.shape[0]
    if m and (
        edge_u.min() < 0
        or edge_v.min() < 0
        or edge_u.max() >= n_vertices
        or edge_v.max() >= n_vertices
    ):
        raise ValueError("edge endpoint out of range [0, n_vertices)")

    # Source vertex of each half-edge: (u->v) for eid then (v->u) for eid.
    src = np.concatenate([edge_u, edge_v])
    dst = np.concatenate([edge_v, edge_u])
    eid = np.concatenate([np.arange(m, dtype=np.int64)] * 2)

    counts = np.bincount(src, minlength=n_vertices).astype(np.int64)
    offsets = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    # Stable sort by source groups half-edges per vertex while preserving the
    # (ascending-eid) order within each vertex.
    order = np.argsort(src, kind="stable")
    targets = dst[order]
    eids = eid[order]
    return offsets, targets, eids


def csr_degrees(offsets: np.ndarray) -> np.ndarray:
    """Return the degree vector implied by CSR ``offsets`` (diff of offsets)."""
    return np.diff(offsets)
