"""GraphDelta: packed int64 edge mutation tables between two graphs.

A delta is the dynamic-graph analogue of the EdgeTable: two columnar
int64 tables — deletes addressed by *base* edge id, inserts addressed by
*result* edge position — plus the vertex/edge counts on both sides. The
representation is chosen so that every operation the subsystem needs is
a vectorized mask/gather, never a Python loop:

``apply``
    Scatter surviving base edges and inserted edges into the result
    arrays with two boolean masks. ``O(m)`` NumPy, no sorting.
``invert``
    A pure field swap: deletes and inserts trade places, before and
    after counts flip. ``d.invert().apply(d.apply(g))`` is bit-identical
    to ``g`` — the catalog relies on this to walk delta chains in either
    direction.
``compose``
    Provenance arrays map every result-edge slot back to a base edge id
    (non-negative) or an insert-pool index (negative code); chaining two
    deltas is one gather through the intermediate graph's provenance.
``eid_map``
    The old→new edge-id map (``-1`` for deleted edges) the incremental
    repair engine uses to re-key cached Phase-1 inputs. Because deletes
    compact and inserts land in explicit slots, the map is monotonic
    over survivors — a partition untouched by the delta keeps its local
    edge rows in the same relative order, which is what makes cached
    EdgeTables comparable after remapping.

Deltas persist as tiny NPZ blobs (`to_bytes`/`from_bytes`) in the
catalog's ``deltas/`` directory, keyed by the *child* content hash; the
chain parent lives in the catalog index. Inserted endpoints may name
vertices past the base graph's range — ``apply`` grows the vertex space
(`n_vertices_after`), so street-network growth and streaming assembly
both fit without a separate "add vertex" operation.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from ..graph.graph import Graph

__all__ = ["GraphDelta", "extend_part_of"]


def extend_part_of(part_of: np.ndarray, delta: "GraphDelta") -> np.ndarray:
    """Extend a base-graph partition map over ``delta``'s vertex growth.

    New vertices join the partition of their first already-placed endpoint
    in delta-insert order, defaulting to partition 0 when every neighbour
    is also new. Deterministic, and shared by the catalog (deriving a
    delta child's canonical map) and the repair session (rolling its map
    forward) — both sides *must* agree for incremental repair to be
    bit-identical to a full recompute.
    """
    part_of = np.asarray(part_of, dtype=np.int64)
    n0, n1 = delta.n_vertices_before, delta.n_vertices_after
    if part_of.shape != (n0,):
        raise ValueError(
            f"part_of has shape {part_of.shape}, expected ({n0},)"
        )
    if n1 == n0:
        return part_of.copy()
    out = np.empty(n1, dtype=np.int64)
    out[:n0] = part_of
    out[n0:] = -1
    for u, v in zip(delta.insert_u.tolist(), delta.insert_v.tolist()):
        for a, b in ((u, v), (v, u)):
            if a >= n0 and out[a] < 0 and out[b] >= 0:
                out[a] = out[b]
    out[out < 0] = 0
    return out


def _as_i64(a) -> np.ndarray:
    return np.asarray(a, dtype=np.int64).reshape(-1)


@dataclass(frozen=True)
class GraphDelta:
    """One graph mutation: ``G(before) -> G(after)``.

    Parameters
    ----------
    n_vertices_before, n_vertices_after:
        Vertex-space sizes on each side (inserts may grow it).
    n_edges_before, n_edges_after:
        Edge counts on each side; always
        ``n_edges_before - len(delete_eids) + len(insert_pos)``.
    delete_eids:
        Sorted unique edge ids **in the base graph** to remove.
    delete_u, delete_v:
        Endpoints of the deleted edges (recorded so ``invert`` can
        restore them without consulting the base graph).
    insert_pos:
        Sorted unique edge positions **in the result graph** the
        inserted edges occupy; surviving base edges fill the remaining
        slots in base order.
    insert_u, insert_v:
        Endpoints of the inserted edges.
    """

    n_vertices_before: int
    n_vertices_after: int
    n_edges_before: int
    n_edges_after: int
    delete_eids: np.ndarray = field(default_factory=lambda: _as_i64(()))
    delete_u: np.ndarray = field(default_factory=lambda: _as_i64(()))
    delete_v: np.ndarray = field(default_factory=lambda: _as_i64(()))
    insert_pos: np.ndarray = field(default_factory=lambda: _as_i64(()))
    insert_u: np.ndarray = field(default_factory=lambda: _as_i64(()))
    insert_v: np.ndarray = field(default_factory=lambda: _as_i64(()))

    def __post_init__(self):
        for name in ("delete_eids", "delete_u", "delete_v",
                     "insert_pos", "insert_u", "insert_v"):
            object.__setattr__(self, name, _as_i64(getattr(self, name)))
        m0, m1 = self.n_edges_before, self.n_edges_after
        dels, ins = self.delete_eids, self.insert_pos
        if not (self.delete_u.size == self.delete_v.size == dels.size):
            raise ValueError("delete endpoint columns must match delete_eids")
        if not (self.insert_u.size == self.insert_v.size == ins.size):
            raise ValueError("insert endpoint columns must match insert_pos")
        if m1 != m0 - dels.size + ins.size:
            raise ValueError(
                f"inconsistent edge counts: {m0} - {dels.size} deletes "
                f"+ {ins.size} inserts != {m1}"
            )
        for label, arr, bound in (("delete_eids", dels, m0),
                                  ("insert_pos", ins, m1)):
            if arr.size:
                if arr[0] < 0 or arr[-1] >= bound:
                    raise ValueError(f"{label} out of range [0, {bound})")
                if np.any(np.diff(arr) <= 0):
                    raise ValueError(f"{label} must be sorted and unique")
        if self.insert_u.size and (
            min(self.insert_u.min(), self.insert_v.min()) < 0
            or max(self.insert_u.max(), self.insert_v.max())
            >= self.n_vertices_after
        ):
            raise ValueError("inserted edge endpoint out of range")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_edits(cls, graph: Graph, insert=None, delete_eids=None,
                   ) -> "GraphDelta":
        """Build a delta against ``graph`` from user-level edit lists.

        ``insert`` is an iterable of ``(u, v)`` pairs appended after the
        surviving base edges (so new edges take the highest ids, matching
        :meth:`Graph.with_extra_edges`); ``delete_eids`` names base edge
        ids. Endpoints past the base vertex range grow the vertex space.
        """
        m0, n0 = graph.n_edges, graph.n_vertices
        dels = np.unique(_as_i64(delete_eids if delete_eids is not None
                                 else ()))
        if dels.size and (dels[0] < 0 or dels[-1] >= m0):
            raise ValueError(f"delete edge id out of range [0, {m0})")
        pairs = np.asarray(list(insert) if insert is not None else (),
                           dtype=np.int64).reshape(-1, 2)
        if pairs.size and pairs.min() < 0:
            raise ValueError("inserted vertex ids must be non-negative")
        m1 = m0 - dels.size + pairs.shape[0]
        n1 = n0
        if pairs.size:
            n1 = max(n1, int(pairs.max()) + 1)
        return cls(
            n_vertices_before=n0, n_vertices_after=n1,
            n_edges_before=m0, n_edges_after=m1,
            delete_eids=dels,
            delete_u=np.asarray(graph.edge_u)[dels],
            delete_v=np.asarray(graph.edge_v)[dels],
            insert_pos=np.arange(m1 - pairs.shape[0], m1, dtype=np.int64),
            insert_u=pairs[:, 0], insert_v=pairs[:, 1],
        )

    # -- core algebra --------------------------------------------------------

    def apply(self, graph: Graph) -> Graph:
        """The mutated graph. ``graph`` must match the *before* side."""
        if (graph.n_vertices != self.n_vertices_before
                or graph.n_edges != self.n_edges_before):
            raise ValueError(
                f"delta expects base with {self.n_vertices_before} vertices"
                f"/{self.n_edges_before} edges, got {graph.n_vertices}"
                f"/{graph.n_edges}"
            )
        base_u = np.asarray(graph.edge_u)
        base_v = np.asarray(graph.edge_v)
        if self.delete_eids.size and not (
            np.array_equal(base_u[self.delete_eids], self.delete_u)
            and np.array_equal(base_v[self.delete_eids], self.delete_v)
        ):
            raise ValueError(
                "delta delete endpoints disagree with the base graph "
                "(applied to the wrong graph?)"
            )
        keep = np.ones(self.n_edges_before, dtype=bool)
        keep[self.delete_eids] = False
        slots = np.ones(self.n_edges_after, dtype=bool)
        slots[self.insert_pos] = False
        res_u = np.empty(self.n_edges_after, dtype=np.int64)
        res_v = np.empty(self.n_edges_after, dtype=np.int64)
        res_u[self.insert_pos] = self.insert_u
        res_v[self.insert_pos] = self.insert_v
        res_u[slots] = base_u[keep]
        res_v[slots] = base_v[keep]
        return Graph.from_arrays(self.n_vertices_after, res_u, res_v,
                                 check=False)

    def invert(self) -> "GraphDelta":
        """The inverse delta (deletes and inserts trade places)."""
        return GraphDelta(
            n_vertices_before=self.n_vertices_after,
            n_vertices_after=self.n_vertices_before,
            n_edges_before=self.n_edges_after,
            n_edges_after=self.n_edges_before,
            delete_eids=self.insert_pos,
            delete_u=self.insert_u, delete_v=self.insert_v,
            insert_pos=self.delete_eids,
            insert_u=self.delete_u, insert_v=self.delete_v,
        )

    def eid_map(self) -> np.ndarray:
        """Old→new edge-id map, ``-1`` where the base edge was deleted.

        Monotonically increasing over surviving edges: relative edge
        order is preserved, so per-partition EdgeTables stay comparable
        after remapping their ``EDGE_RAW`` refs through this map.
        """
        emap = np.full(self.n_edges_before, -1, dtype=np.int64)
        keep = np.ones(self.n_edges_before, dtype=bool)
        keep[self.delete_eids] = False
        slots = np.ones(self.n_edges_after, dtype=bool)
        slots[self.insert_pos] = False
        emap[keep] = np.flatnonzero(slots)
        return emap

    def compose(self, other: "GraphDelta") -> "GraphDelta":
        """The single delta equivalent to ``self`` then ``other``.

        Provenance construction: label every edge slot of the
        intermediate and final graphs with either the base edge id it
        descends from (non-negative) or a negative code into the
        concatenated insert pools. An insert of ``self`` that ``other``
        deletes cancels out entirely; a base edge ``other`` deletes is a
        plain base delete of the composition.
        """
        if (other.n_vertices_before != self.n_vertices_after
                or other.n_edges_before != self.n_edges_after):
            raise ValueError(
                "cannot compose: second delta's before-side "
                f"({other.n_vertices_before}v/{other.n_edges_before}e) "
                "does not match first delta's after-side "
                f"({self.n_vertices_after}v/{self.n_edges_after}e)"
            )
        m0, m1, m2 = (self.n_edges_before, self.n_edges_after,
                      other.n_edges_after)
        k1 = self.insert_pos.size
        k2 = other.insert_pos.size

        prov1 = np.empty(m1, dtype=np.int64)
        prov1[self.insert_pos] = -(np.arange(k1, dtype=np.int64) + 1)
        slots1 = np.ones(m1, dtype=bool)
        slots1[self.insert_pos] = False
        keep0 = np.ones(m0, dtype=bool)
        keep0[self.delete_eids] = False
        prov1[slots1] = np.flatnonzero(keep0)

        prov2 = np.empty(m2, dtype=np.int64)
        prov2[other.insert_pos] = -(np.arange(k2, dtype=np.int64) + 1 + k1)
        slots2 = np.ones(m2, dtype=bool)
        slots2[other.insert_pos] = False
        keep1 = np.ones(m1, dtype=bool)
        keep1[other.delete_eids] = False
        prov2[slots2] = prov1[keep1]

        survivors = prov2[prov2 >= 0]
        deleted = np.ones(m0, dtype=bool)
        deleted[survivors] = False
        del_eids = np.flatnonzero(deleted)
        # Endpoints for each deleted base edge come from whichever stage
        # deleted it: stage 1 recorded them directly; stage 2 deletes of
        # base-descended slots recorded them against intermediate ids.
        du = np.empty(m0, dtype=np.int64)
        dv = np.empty(m0, dtype=np.int64)
        du[self.delete_eids] = self.delete_u
        dv[self.delete_eids] = self.delete_v
        base_del2 = prov1[other.delete_eids]
        stage2 = base_del2 >= 0
        du[base_del2[stage2]] = other.delete_u[stage2]
        dv[base_del2[stage2]] = other.delete_v[stage2]

        ins_pos = np.flatnonzero(prov2 < 0)
        codes = -prov2[ins_pos] - 1
        pool_u = np.concatenate([self.insert_u, other.insert_u])
        pool_v = np.concatenate([self.insert_v, other.insert_v])
        return GraphDelta(
            n_vertices_before=self.n_vertices_before,
            n_vertices_after=other.n_vertices_after,
            n_edges_before=m0, n_edges_after=m2,
            delete_eids=del_eids,
            delete_u=du[del_eids], delete_v=dv[del_eids],
            insert_pos=ins_pos,
            insert_u=pool_u[codes], insert_v=pool_v[codes],
        )

    # -- introspection -------------------------------------------------------

    @property
    def n_deletes(self) -> int:
        return int(self.delete_eids.size)

    @property
    def n_inserts(self) -> int:
        return int(self.insert_pos.size)

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique vertices any delta edge is incident to."""
        return np.unique(np.concatenate([
            self.delete_u, self.delete_v, self.insert_u, self.insert_v,
        ]))

    def summary(self) -> dict:
        """Wire/artifact-friendly description of this delta."""
        return {
            "n_inserts": self.n_inserts,
            "n_deletes": self.n_deletes,
            "n_vertices_before": self.n_vertices_before,
            "n_vertices_after": self.n_vertices_after,
            "n_edges_before": self.n_edges_before,
            "n_edges_after": self.n_edges_after,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return (
            self.summary() == other.summary()
            and np.array_equal(self.delete_eids, other.delete_eids)
            and np.array_equal(self.delete_u, other.delete_u)
            and np.array_equal(self.delete_v, other.delete_v)
            and np.array_equal(self.insert_pos, other.insert_pos)
            and np.array_equal(self.insert_u, other.insert_u)
            and np.array_equal(self.insert_v, other.insert_v)
        )

    # -- persistence ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to compressed NPZ bytes (the catalog's wire format)."""
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            meta=np.array([self.n_vertices_before, self.n_vertices_after,
                           self.n_edges_before, self.n_edges_after],
                          dtype=np.int64),
            delete_eids=self.delete_eids,
            delete_u=self.delete_u, delete_v=self.delete_v,
            insert_pos=self.insert_pos,
            insert_u=self.insert_u, insert_v=self.insert_v,
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "GraphDelta":
        with np.load(io.BytesIO(data)) as npz:
            meta = npz["meta"]
            return cls(
                n_vertices_before=int(meta[0]),
                n_vertices_after=int(meta[1]),
                n_edges_before=int(meta[2]), n_edges_after=int(meta[3]),
                delete_eids=npz["delete_eids"],
                delete_u=npz["delete_u"], delete_v=npz["delete_v"],
                insert_pos=npz["insert_pos"],
                insert_u=npz["insert_u"], insert_v=npz["insert_v"],
            )

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path) -> "GraphDelta":
        from pathlib import Path

        return cls.from_bytes(Path(path).read_bytes())

    # -- wire dict (the HTTP front ends' JSON shape) -------------------------

    def to_wire(self) -> dict:
        """JSON-safe dict (edit lists, not packed tables)."""
        return {
            "insert": [[int(u), int(v)] for u, v in
                       zip(self.insert_u, self.insert_v)],
            "delete_eids": [int(e) for e in self.delete_eids],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"GraphDelta(+{self.n_inserts}/-{self.n_deletes} edges, "
                f"{self.n_edges_before}->{self.n_edges_after}e, "
                f"{self.n_vertices_before}->{self.n_vertices_after}v)")
