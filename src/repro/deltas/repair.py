"""Incremental circuit repair: replay Phase 1 where the delta didn't land.

The correctness foundation is that
:func:`repro.core.phase1.run_phase1` is a **deterministic pure function**
of its inputs: the packed EdgeTable, the remote-degree table, and the
fragment batch's known coarse-edge weights. A :class:`RepairSession`
caches those inputs (and the outputs) per ``(pid, level)`` merge-tree
node from a prior run; on the next run its :class:`RepairProgram`
intercepts the pipeline's Phase-1 hook, compares the node's actual
inputs against the cache, and — when they are identical — re-emits the
cached fragments instead of walking the partition again.

Why replay is bit-exact rather than merely close:

* Fragment ids are structured (:func:`repro.core.pathmap.make_fid` over
  ``(level, pid, seq)``) and ``seq`` is append order, so re-emitting the
  cached fragments through a fresh batch in original order reproduces
  the *same* fids — pathmaps, coarse tables and the Phase-3 splice all
  reference fragments by fid and cannot tell a replayed run apart.
* A graph delta re-keys surviving edges; :meth:`GraphDelta.eid_map` is
  monotonic over survivors, so remapping a cached EdgeTable's
  ``EDGE_RAW`` refs (and cached fragment items' ``ITEM_EDGE`` refs)
  lands them exactly where a cold run on the mutated graph would put
  them. A node whose remapped inputs differ from the actuals — a dirty
  partition, or any merge ancestor of one — simply misses the cache and
  runs fresh, which *is* the cold computation for that node.

There is deliberately no dirty-propagation bookkeeping: the dirty set is
only a cheap upper bound used for the repair-vs-recompute decision;
correctness rests entirely on input comparison.

The session rides :attr:`RunConfig.repair` (process-local, stripped
before fan-out and wire crossings) and also carries the canonical
partition map forward across deltas via the shared
:func:`~repro.deltas.delta.extend_part_of` rule, so a repaired run and a
catalog-served full recompute of the child hash see the same
partitioning — the precondition for comparing their circuits at all.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import numpy as np

from ..core.pathmap import ITEM_EDGE
from ..core.phase1 import EDGE_RAW, remote_deg_table
from ..graph.partition import PartitionedGraph
from ..pipeline.program import SuperstepProgram
from .delta import GraphDelta, extend_part_of

__all__ = ["RepairSession", "RepairProgram"]


class _NodeCache:
    """Cached Phase-1 inputs + outputs for one (pid, level) node."""

    __slots__ = ("local_edges", "remote_deg", "known", "pathmap", "stats",
                 "fragments")

    def __init__(self, local_edges, remote_deg, known, pathmap, stats,
                 fragments):
        self.local_edges = local_edges
        self.remote_deg = remote_deg
        self.known = known
        self.pathmap = pathmap
        self.stats = stats
        #: ``(kind, src, dst, items, n_edges)`` tuples in original append
        #: order — replaying them mints identical fids.
        self.fragments = fragments


class RepairProgram(SuperstepProgram):
    """A superstep program that consults a repair session at Phase 1."""

    def __init__(self, session: "RepairSession", **kwargs):
        super().__init__(**kwargs)
        self.session = session

    def _phase1(self, pid, level, local_edges, remote_deg, batch):
        return self.session.phase1(
            self, pid, level, local_edges, remote_deg, batch
        )


class RepairSession:
    """Cross-run Phase-1 cache + partition map for one evolving graph.

    Lifecycle::

        session = RepairSession()
        cold = run_scenario(g0, "circuit", replace(cfg, repair=session))
        session.advance(delta)            # g0 -> g1
        warm = run_scenario(g1, "circuit", replace(cfg, repair=session))

    The first run *captures* (every node misses and is recorded);
    ``advance`` re-keys the cache through the delta's eid map, extends
    the partition map, classifies dirty partitions, and decides repair
    vs full recompute against ``threshold``; the next run replays every
    node the delta provably didn't touch. ``last_report`` carries the
    decision, dirty set and hit/miss counters for the artifact pass
    history.

    Sessions are process-local accelerators: they pickle (for the
    process *executor*, whose workers replay from the shipped cache) but
    are stripped by every fan-out/wire path, and worker-side captures
    are discarded — capture runs should use the serial or thread
    backend.
    """

    def __init__(self, threshold: float = 0.5):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.part_of: np.ndarray | None = None
        self.n_parts: int | None = None
        self.cache: dict[tuple[int, int], _NodeCache] = {}
        self.mode = "capture"
        self.hits = 0
        self.misses = 0
        self.replayed_fragments = 0
        self.last_report: dict = {"decision": "capture"}
        self._lock = threading.Lock()

    # -- Setup integration ---------------------------------------------------

    def partitioned(self, graph, n_parts: int) -> PartitionedGraph | None:
        """The session's canonical partitioning of ``graph`` (or ``None``).

        ``None`` when the session has not captured yet or the request
        does not match what it captured — Setup then partitions cold and
        :meth:`build_program` adopts the result.
        """
        if (self.part_of is None
                or self.part_of.shape[0] != graph.n_vertices
                or self.n_parts != n_parts):
            return None
        return PartitionedGraph(graph, self.part_of, n_parts)

    def build_program(self, **kwargs) -> RepairProgram:
        """Setup's program factory; adopts the partition map on first use."""
        pg = kwargs["pg"]
        if self.part_of is None:
            self.part_of = np.array(pg.part_of, copy=True)
            self.n_parts = int(pg.n_parts)
        return RepairProgram(session=self, **kwargs)

    def derived_entry(self, graph, config) -> dict | None:
        """A ``config.derived`` mapping pinning a run to this session's map.

        Hand this to a *cold* run of the mutated graph to compare it
        bit-for-bit against a repaired run (both must partition
        identically for the comparison to be meaningful).
        """
        if self.part_of is None:
            return None
        n_eff = max(1, min(int(config.n_parts), graph.n_vertices))
        if (n_eff != self.n_parts
                or self.part_of.shape[0] != graph.n_vertices):
            return None
        return {
            "partition_map": {
                "part_of": self.part_of.copy(),
                "n_parts": n_eff,
                "partitioner": config.partitioner,
                "seed": int(config.seed),
                "n_vertices": graph.n_vertices,
                "n_edges": graph.n_edges,
            }
        }

    # -- the mutation boundary ----------------------------------------------

    def advance(self, delta: GraphDelta) -> dict:
        """Roll the session across one mutation; the repair decision dict.

        Re-keys every cached node through the delta's eid map (dropping
        nodes that reference deleted edges), extends the partition map
        over new vertices, and classifies the partitions the delta
        touches. Past ``threshold`` dirty fraction the cache is cleared
        — the next run is a clean capture (full recompute).
        """
        with self._lock:
            self.hits = self.misses = self.replayed_fragments = 0
            if (self.part_of is None
                    or self.part_of.shape[0] != delta.n_vertices_before):
                self.cache.clear()
                self.part_of = None
                self.n_parts = None
                self.mode = "capture"
                self.last_report = {
                    "decision": "recompute",
                    "reason": "no capture to repair from",
                    "delta": delta.summary(),
                }
                return dict(self.last_report)
            self.part_of = extend_part_of(self.part_of, delta)
            touched = delta.touched_vertices()
            dirty = np.unique(self.part_of[touched]) if touched.size else (
                np.empty(0, dtype=np.int64))
            dirty_fraction = (float(dirty.size) / self.n_parts
                              if self.n_parts else 0.0)
            if dirty_fraction > self.threshold:
                self.cache.clear()
                self.mode = "recompute"
            else:
                self.mode = "repair"
                self._remap_cache(delta.eid_map())
            self.last_report = {
                "decision": self.mode,
                "dirty_parts": [int(p) for p in dirty],
                "dirty_fraction": dirty_fraction,
                "threshold": self.threshold,
                "n_parts": self.n_parts,
                "cached_nodes": len(self.cache),
                "delta": delta.summary(),
            }
            return dict(self.last_report)

    def _remap_cache(self, emap: np.ndarray) -> None:
        """Re-key cached EdgeTables and fragment items into the new eid
        space; drop any node that references a deleted edge."""
        for key in list(self.cache):
            entry = self.cache[key]
            table = entry.local_edges
            raw = table[:, 2] == EDGE_RAW
            refs = emap[table[raw, 3]]
            if np.any(refs < 0):
                del self.cache[key]
                continue
            table[raw, 3] = refs
            for _, _, _, items, _ in entry.fragments:
                tagged = items[:, 0] == ITEM_EDGE
                items[tagged, 1] = emap[items[tagged, 1]]

    # -- the Phase-1 hook ----------------------------------------------------

    def phase1(self, program, pid, level, local_edges, remote_deg, batch):
        """Replay the cached node when its inputs match; run fresh else."""
        key = (pid, level)
        entry = self.cache.get(key)
        deg_table = remote_deg_table(remote_deg)
        if (entry is not None
                and np.array_equal(entry.local_edges, local_edges)
                and np.array_equal(entry.remote_deg, deg_table)
                and entry.known == batch._known):
            for kind, src, dst, items, n_edges in entry.fragments:
                # Copy: the adopted fragment outlives this session's next
                # advance(), which remaps the cached items in place.
                batch.new_fragment(kind, level, pid, src, dst, items.copy(),
                                   n_edges)
            with self._lock:
                self.hits += 1
                self.replayed_fragments += len(entry.fragments)
            return entry.pathmap, entry.stats
        pathmap, stats = SuperstepProgram._phase1(
            program, pid, level, local_edges, remote_deg, batch
        )
        self.cache[key] = _NodeCache(
            local_edges=np.array(local_edges, dtype=np.int64, copy=True),
            remote_deg=np.array(deg_table, dtype=np.int64, copy=True),
            known=dict(batch._known),
            pathmap=pathmap,
            stats=stats,
            fragments=[
                (f.kind, f.src, f.dst,
                 np.array(f.items, dtype=np.int64, copy=True), f.n_edges)
                for f in batch.fragments
            ],
        )
        with self._lock:
            self.misses += 1
        return pathmap, stats

    # -- reporting / convenience --------------------------------------------

    def report(self) -> dict:
        """The last decision plus live hit/miss counters (pass history)."""
        out = dict(self.last_report)
        out.update(hits=self.hits, misses=self.misses,
                   replayed_fragments=self.replayed_fragments)
        return out

    def run(self, graph, scenario="circuit", config=None):
        """Run a scenario with this session attached; stamps timing into
        :attr:`last_report` (``repair_seconds``)."""
        from ..pipeline.context import RunConfig
        from ..scenarios.base import run_scenario

        if config is None:
            config = RunConfig()
        t0 = time.perf_counter()
        result = run_scenario(graph, scenario, replace(config, repair=self))
        self.last_report["repair_seconds"] = time.perf_counter() - t0
        return result

    # -- pickling (process-executor workers replay from a copied cache) ------

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
