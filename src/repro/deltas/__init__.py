"""Dynamic graphs: delta mutations and incremental circuit repair.

:class:`GraphDelta` packs edge inserts/deletes between two graphs into
columnar int64 tables (apply / invert / compose / eid_map);
:func:`extend_part_of` is the shared canonical-partition extension rule;
:class:`RepairSession` caches Phase-1 inputs/outputs across runs and
replays the merge-tree nodes a delta provably didn't touch — falling
back to full recompute past a dirty-partition threshold. See the
"Dynamic graphs" section of ARCHITECTURE.md.
"""

from .delta import GraphDelta, extend_part_of
from .repair import RepairProgram, RepairSession

__all__ = ["GraphDelta", "extend_part_of", "RepairSession", "RepairProgram"]
