"""Exception types for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. The distinction between *input* problems (graph is not
Eulerian, bad partition map) and *internal* invariant violations (a lemma from
the paper failed to hold at runtime) is deliberate: the former are expected
user-facing errors, the latter indicate a bug and carry diagnostics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when an input edge list / file cannot be parsed or is malformed."""


class NotEulerianError(ReproError):
    """Raised when an Euler circuit is requested on a non-Eulerian graph.

    Carries the offending odd-degree vertices (up to a cap) so users can fix
    or eulerize their input.
    """

    def __init__(self, message: str, odd_vertices=None):
        super().__init__(message)
        #: A (possibly truncated) list of vertices with odd degree.
        self.odd_vertices = list(odd_vertices) if odd_vertices is not None else []


class DisconnectedGraphError(NotEulerianError):
    """Raised when the graph's edges span more than one connected component.

    An Euler circuit requires all edges to lie in a single component. The
    ``num_components`` attribute reports how many edge-bearing components
    were found.
    """

    def __init__(self, message: str, num_components: int = 0):
        super().__init__(message)
        #: Number of connected components that contain at least one edge.
        self.num_components = num_components


class PartitionError(ReproError):
    """Raised for invalid partition maps (wrong length, out-of-range ids)."""


class InvariantViolation(ReproError):
    """Raised when one of the paper's lemmas fails to hold at runtime.

    This always indicates a bug in the library (or memory corruption), never
    bad user input; please report it with the seed/graph that triggered it.
    """


class InvalidCircuitError(ReproError):
    """Raised by :func:`repro.core.circuit.verify_circuit` on a bad circuit."""


class BSPError(ReproError):
    """Raised for misuse of the BSP engine (e.g. messaging a dead partition)."""


class UnknownExecutorError(ReproError, ValueError):
    """An executor spec names a backend that does not exist.

    Subclasses :class:`ValueError` so callers that validated with a broad
    ``except ValueError`` keep working; carries the offending name and the
    valid choices so CLI/HTTP surfaces can render an actionable message.
    """

    def __init__(self, name, choices):
        self.name = name
        self.choices = sorted(choices)
        super().__init__(
            f"unknown executor {name!r}; valid backends: "
            f"{', '.join(self.choices)}"
        )


class RunCancelledError(ReproError):
    """A run stopped cooperatively at a safe point (cancel request or deadline).

    Raised by :meth:`repro.pipeline.cancel.CancelToken.check` at superstep
    boundaries and scenario sub-run boundaries. ``reason`` is ``"cancel"``
    (someone called :meth:`~repro.pipeline.cancel.CancelToken.cancel`) or
    ``"timeout"`` (the token's deadline elapsed); ``where`` names the
    checkpoint that observed it.
    """

    def __init__(self, reason: str, where: str = "",
                 timeout_seconds: float | None = None):
        detail = f" at {where}" if where else ""
        if reason == "timeout":
            budget = (f" (timeout_seconds={timeout_seconds:g})"
                      if timeout_seconds is not None else "")
            message = f"run deadline exceeded{budget}{detail}"
        else:
            message = f"run cancelled{detail}"
        super().__init__(message)
        #: ``"cancel"`` or ``"timeout"``.
        self.reason = reason
        #: The checkpoint that observed the stop request.
        self.where = where
        self.timeout_seconds = timeout_seconds


class JobError(ReproError):
    """Base class for job-orchestration failures (queue misuse, unknown ids)."""


class JobFailedError(JobError):
    """Raised by :meth:`repro.jobs.queue.JobResult.result` when the job failed.

    Carries the failing job's id and the original error text so a client
    polling a future-style handle sees the real cause, not a bare timeout.
    """

    def __init__(self, job_id: str, error: str):
        super().__init__(f"job {job_id} failed: {error}")
        self.job_id = job_id
        self.error = error


class JobCancelledError(JobError):
    """Raised when a job's result is requested after it was cancelled."""

    def __init__(self, job_id: str):
        super().__init__(f"job {job_id} was cancelled")
        self.job_id = job_id


class QueueFullError(JobError):
    """Raised by :meth:`repro.jobs.queue.JobQueue.submit` under backpressure.

    The queue's ``max_queued`` bound is hit: the submission is rejected
    fast instead of growing the heap without bound. The serving front end
    maps this to HTTP 429.
    """

    def __init__(self, max_queued: int):
        super().__init__(
            f"job queue is full ({max_queued} queued jobs); retry later"
        )
        self.max_queued = max_queued


class TransientJobError(JobError):
    """A job failure attributable to infrastructure, not the job itself.

    Killed or hung dispatcher workers, shared-memory attach failures on a
    swept segment, and broken executor pools all land here: re-running the
    same job on healthy infrastructure is expected to succeed, so the
    engine re-dispatches transient failures (up to ``Job.max_retries``,
    with exponential backoff) instead of failing the job outright. Every
    other exception is treated as permanent — retrying a graph that is not
    Eulerian cannot ever help.
    """


class FaultInjectedError(TransientJobError):
    """A deliberate failure raised by the fault-injection harness.

    Transient by definition: the :class:`~repro.faults.FaultPlan` arms
    faults for specific attempts, so the retried run executes clean and
    recovery can be asserted deterministically.
    """


class EngineDrainingError(JobError):
    """Submission rejected because the engine is draining for shutdown.

    Raised by :meth:`repro.jobs.engine.JobEngine.submit` after
    :meth:`~repro.jobs.engine.JobEngine.drain` began: the server finishes
    the jobs it already acknowledged but accepts no new work. The serving
    front end maps this to HTTP 503.
    """

    def __init__(self):
        super().__init__("engine is draining; no new submissions accepted")


class RetriesExhaustedError(JobError):
    """A client retry budget ran out without a successful request.

    Raised by :class:`repro.jobs.client.JobClient` once its total retry
    wall-time cap elapses across 429-with-Retry-After responses and
    connection failures. Carries the last underlying error so callers see
    the real cause, not just "gave up".
    """

    def __init__(self, budget_seconds: float, last_error: Exception):
        super().__init__(
            f"retry budget of {budget_seconds:g}s exhausted; "
            f"last error: {last_error}"
        )
        self.budget_seconds = budget_seconds
        self.last_error = last_error


class JobResultEvictedError(JobError):
    """A DONE job's in-memory result was trimmed and no durable copy exists.

    Raised by :meth:`repro.jobs.queue.JobResult.result` when the engine's
    ``keep_results`` bound nulled the resident
    :class:`~repro.scenarios.base.ScenarioResult` and the job has no
    readable artifact JSON to reload the document from.
    """

    def __init__(self, job_id: str):
        super().__init__(
            f"job {job_id} finished but its result was evicted from memory "
            "(keep_results) and no durable artifact is available"
        )
        self.job_id = job_id
