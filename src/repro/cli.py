"""Command-line interface: ``repro-euler`` (or ``python -m repro.cli``).

Subcommands
-----------
``run``
    Find an Euler circuit in an edge-list file (or a generated workload) and
    print the execution report; optionally write the circuit out.
``generate``
    Produce an eulerized R-MAT graph as an edge-list file.
``experiment``
    Regenerate one of the paper's tables/figures by name (``table1``,
    ``fig4`` ... ``fig9``, ``supersteps``, ``baselines``, ``ablations``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import bench
from .bsp import EXECUTORS
from .core import find_euler_circuit
from .generate.eulerize import eulerian_rmat
from .graph.io import load_edge_list, save_edge_list

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": lambda: bench.table1(),
    "fig4": lambda: bench.fig4_degree_distribution(),
    "fig5": lambda: bench.fig5_weak_scaling(),
    "fig6": lambda: bench.fig6_time_split(),
    "fig7": lambda: bench.fig7_phase1_complexity(),
    "fig8": lambda: bench.fig8_memory_state(),
    "fig9": lambda: bench.fig9_vertex_census(),
    "supersteps": lambda: bench.supersteps_experiment(),
    "baselines": lambda: bench.baselines_experiment(),
    "ablations": lambda: (bench.ablation_matching(), bench.ablation_partitioner()),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and ``--help`` docs)."""
    p = argparse.ArgumentParser(
        prog="repro-euler",
        description="Partition-centric distributed Euler circuits "
        "(Jaiswal & Simmhan, IPDPS 2019 workshops).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="find an Euler circuit")
    run.add_argument("input", help="edge-list file, or workload name like G40k/P8")
    run.add_argument("--parts", type=int, default=4, help="number of partitions")
    run.add_argument("--partitioner", default="ldg",
                     choices=("ldg", "bfs", "hash", "random"))
    run.add_argument("--strategy", default="eager",
                     choices=("eager", "dedup", "deferred", "proposed"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--executor", default=None,
                     choices=sorted(EXECUTORS),
                     help="BSP backend (default: serial, or thread when "
                          "--workers > 1)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker count for the thread/process backends")
    run.add_argument("--verify", action="store_true", help="verify the circuit")
    run.add_argument("--report-json",
                     help="write the full run artifact (RunContext) as JSON here")
    run.add_argument("--out", help="write the circuit's vertex sequence here")

    gen = sub.add_parser("generate", help="generate an eulerized R-MAT graph")
    gen.add_argument("output", help="edge-list file to write")
    gen.add_argument("--scale", type=int, default=14, help="log2 vertex count")
    gen.add_argument("--avg-degree", type=float, default=5.0)
    gen.add_argument("--seed", type=int, default=0)

    post = sub.add_parser(
        "postman",
        help="closed covering route on a non-Eulerian graph (edge revisits)",
    )
    post.add_argument("input", help="edge-list file")
    post.add_argument("--parts", type=int, default=4)
    post.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    return p


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        g, info = eulerian_rmat(args.scale, avg_degree=args.avg_degree, seed=args.seed)
        save_edge_list(g, args.output)
        print(
            f"wrote {args.output}: |V|={g.n_vertices} |E|={g.n_edges} "
            f"(+{100 * info.added_fraction:.1f}% eulerization edges)"
        )
        return 0
    if args.command == "experiment":
        _EXPERIMENTS[args.name]()
        return 0
    if args.command == "postman":
        from .extensions import chinese_postman_route

        g = load_edge_list(args.input)
        route = chinese_postman_route(g, n_parts=args.parts, seed=args.seed)
        print(
            f"route: {route.n_steps} steps over {g.n_edges} edges "
            f"({route.n_revisits} revisits, "
            f"{100 * route.deadhead_fraction:.1f}% deadheading), "
            f"closed={route.is_closed}"
        )
        return 0
    # run
    if args.input in bench.PAPER_WORKLOADS:
        g, spec = bench.load_workload(args.input)
        n_parts = args.parts if args.parts != 4 else spec.n_parts
    else:
        g = load_edge_list(args.input)
        n_parts = args.parts
    res = find_euler_circuit(
        g,
        n_parts=n_parts,
        partitioner=args.partitioner,
        strategy=args.strategy,
        seed=args.seed,
        verify=args.verify,
        executor=args.executor,
        engine_workers=args.workers,
    )
    rep = res.report
    print(
        f"circuit: {res.circuit.n_edges} edges, closed={res.circuit.is_closed}\n"
        f"partitions={rep.n_parts} supersteps={rep.n_supersteps} "
        f"executor={res.context.config.executor_name} "
        f"total={rep.total_seconds:.2f}s compute={rep.compute_seconds:.2f}s"
    )
    if args.report_json:
        from .bench.report_io import save_context

        path = save_context(res.context, args.report_json)
        print(f"wrote run artifact to {path}")
    for row in rep.state_by_level():
        print(
            f"  level {row['level']}: partitions={row['n_partitions']} "
            f"state={row['cumulative_longs']:,} Longs "
            f"(avg {row['avg_longs']:,.0f})"
        )
    if args.out:
        np.savetxt(args.out, res.circuit.vertices, fmt="%d")
        print(f"wrote circuit vertex sequence to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
