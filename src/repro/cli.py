"""Command-line interface: ``repro-euler`` (or ``python -m repro.cli``).

Subcommands
-----------
``run``
    Run a scenario (``circuit`` | ``path`` | ``components`` | ``postman``)
    on an edge-list file or a named workload and print the execution
    report; optionally write the walk(s) and the run artifact out.
``generate``
    Produce an eulerized R-MAT graph as an edge-list file.
``postman``
    Shorthand for ``run --scenario postman``.
``experiment``
    Regenerate one of the paper's tables/figures by name (``table1``,
    ``fig4`` ... ``fig9``, ``supersteps``, ``baselines``, ``ablations``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import bench
from .bsp import EXECUTORS
from .generate.eulerize import eulerian_rmat
from .graph.io import load_edge_list, save_edge_list
from .pipeline import RunConfig
from .scenarios import run_scenario, scenario_names

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": lambda: bench.table1(),
    "fig4": lambda: bench.fig4_degree_distribution(),
    "fig5": lambda: bench.fig5_weak_scaling(),
    "fig6": lambda: bench.fig6_time_split(),
    "fig7": lambda: bench.fig7_phase1_complexity(),
    "fig8": lambda: bench.fig8_memory_state(),
    "fig9": lambda: bench.fig9_vertex_census(),
    "supersteps": lambda: bench.supersteps_experiment(),
    "baselines": lambda: bench.baselines_experiment(),
    "ablations": lambda: (bench.ablation_matching(), bench.ablation_partitioner()),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and ``--help`` docs)."""
    p = argparse.ArgumentParser(
        prog="repro-euler",
        description="Partition-centric distributed Euler circuits "
        "(Jaiswal & Simmhan, IPDPS 2019 workshops).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a scenario (default: Euler circuit)")
    run.add_argument("input", help="edge-list file, or workload name like "
                                   "G40k/P8 or POSTMAN/RMAT")
    # default=None so an explicit "--parts 4" is distinguishable from "not
    # given" (named workloads supply their own default otherwise).
    run.add_argument("--parts", type=int, default=None,
                     help="number of partitions (default: 4, or the named "
                          "workload's spec)")
    # default=None: an omitted --scenario falls back to the named workload's
    # own scenario (POSTMAN/RMAT runs postman), or circuit for files.
    run.add_argument("--scenario", default=None,
                     choices=scenario_names(),
                     help="workload shape (default: circuit, or the named "
                          "workload's scenario)")
    run.add_argument("--partitioner", default="ldg",
                     choices=("ldg", "bfs", "hash", "random"))
    run.add_argument("--strategy", default="eager",
                     choices=("eager", "dedup", "deferred", "proposed"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--executor", default=None,
                     choices=sorted(EXECUTORS),
                     help="BSP backend (default: serial, or thread when "
                          "--workers > 1)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker count for the thread/process backends")
    run.add_argument("--verify", action="store_true",
                     help="verify the produced walk(s)")
    run.add_argument("--report-json",
                     help="write the full run artifact as JSON here")
    run.add_argument("--out", help="write the walk vertex sequence(s) here")

    gen = sub.add_parser("generate", help="generate an eulerized R-MAT graph")
    gen.add_argument("output", help="edge-list file to write")
    gen.add_argument("--scale", type=int, default=14, help="log2 vertex count")
    gen.add_argument("--avg-degree", type=float, default=5.0)
    gen.add_argument("--seed", type=int, default=0)

    post = sub.add_parser(
        "postman",
        help="closed covering route on a non-Eulerian graph (edge revisits)",
    )
    post.add_argument("input", help="edge-list file")
    post.add_argument("--parts", type=int, default=4)
    post.add_argument("--partitioner", default="ldg",
                      choices=("ldg", "bfs", "hash", "random"))
    post.add_argument("--strategy", default="eager",
                      choices=("eager", "dedup", "deferred", "proposed"))
    post.add_argument("--seed", type=int, default=0)
    post.add_argument("--executor", default=None, choices=sorted(EXECUTORS),
                      help="BSP backend (default: serial, or thread when "
                           "--workers > 1)")
    post.add_argument("--workers", type=int, default=1,
                      help="worker count for the thread/process backends")
    post.add_argument("--verify", action="store_true",
                      help="verify the covering walk")
    post.add_argument("--report-json",
                      help="write the scenario artifact as JSON here")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    return p


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        g, info = eulerian_rmat(args.scale, avg_degree=args.avg_degree, seed=args.seed)
        save_edge_list(g, args.output)
        print(
            f"wrote {args.output}: |V|={g.n_vertices} |E|={g.n_edges} "
            f"(+{100 * info.added_fraction:.1f}% eulerization edges)"
        )
        return 0
    if args.command == "experiment":
        _EXPERIMENTS[args.name]()
        return 0
    if args.command == "postman":
        g = load_edge_list(args.input)
        config = RunConfig(
            n_parts=args.parts,
            partitioner=args.partitioner,
            strategy=args.strategy,
            seed=args.seed,
            executor=args.executor,
            workers=args.workers,
            verify=args.verify,
        )
        result = run_scenario(g, "postman", config)
        route = result.circuit
        print(
            f"route: {route.n_edges} steps over {g.n_edges} edges "
            f"({result.metrics['n_revisits']} revisits, "
            f"{100 * result.metrics['deadhead_fraction']:.1f}% deadheading), "
            f"closed={route.is_closed}"
        )
        if args.report_json:
            from .bench.report_io import save_scenario

            path = save_scenario(result, args.report_json)
            print(f"wrote scenario artifact to {path}")
        return 0
    # run
    g, default_parts, default_scenario = _load_run_input(args.input)
    n_parts = args.parts if args.parts is not None else default_parts
    scenario = args.scenario if args.scenario is not None else default_scenario
    config = RunConfig(
        n_parts=n_parts,
        partitioner=args.partitioner,
        strategy=args.strategy,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        verify=args.verify,
    )
    result = run_scenario(g, scenario, config)
    _print_scenario(result)
    if args.report_json:
        if scenario == "circuit":
            # The established single-run artifact (back-compat for tooling
            # that reads RunContext JSON).
            from .bench.report_io import save_context

            path = save_context(result.sub_runs[0].context, args.report_json)
        else:
            from .bench.report_io import save_scenario

            path = save_scenario(result, args.report_json)
        print(f"wrote run artifact to {path}")
    for sub in result.sub_runs:
        for row in sub.report.state_by_level():
            print(
                f"  level {row['level']}: partitions={row['n_partitions']} "
                f"state={row['cumulative_longs']:,} Longs "
                f"(avg {row['avg_longs']:,.0f})"
            )
    if args.out:
        _write_walks(args.out, result.circuits)
        print(f"wrote walk vertex sequence to {args.out}")
    return 0


def _write_walks(path: str, circuits) -> None:
    """One vertex id per line; a single walk keeps the established format.

    Several walks (the ``components`` scenario) are delimited by
    ``# walk <i>: <n> edges`` comment headers, so consumers can split them
    while ``np.loadtxt`` keeps reading the file (comments are skipped).
    """
    if len(circuits) == 1:
        np.savetxt(path, circuits[0].vertices, fmt="%d")
        return
    with open(path, "w") as fh:
        for i, circ in enumerate(circuits):
            fh.write(f"# walk {i}: {circ.n_edges} edges\n")
            fh.writelines(f"{int(v)}\n" for v in circ.vertices)


def _load_run_input(name: str):
    """Resolve a ``run`` input: named workload or edge-list path.

    Returns ``(graph, default_n_parts, default_scenario)`` — the defaults
    apply only when ``--parts`` / ``--scenario`` were not given.
    """
    if name in bench.PAPER_WORKLOADS:
        g, spec = bench.load_workload(name)
        return g, spec.n_parts, "circuit"
    if name in bench.SCENARIO_WORKLOADS:
        g, spec = bench.load_scenario_workload(name)
        return g, spec.n_parts, spec.scenario
    return load_edge_list(name), 4, "circuit"


def _print_scenario(result) -> None:
    """Human summary: one line per walk, one pipeline line per sub-run."""
    for circ in result.circuits:
        kind = "circuit" if circ.is_closed else "path"
        print(f"{kind}: {circ.n_edges} edges, closed={circ.is_closed}")
    if result.metrics:
        pretty = ", ".join(
            f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(result.metrics.items())
        )
        print(f"{result.scenario}: {pretty}")
    for sub in result.sub_runs:
        rep = sub.report
        prefix = f"[{sub.key}] " if len(result.sub_runs) > 1 else ""
        print(
            f"{prefix}partitions={rep.n_parts} supersteps={rep.n_supersteps} "
            f"executor={sub.context.config.executor_name} "
            f"total={rep.total_seconds:.2f}s compute={rep.compute_seconds:.2f}s"
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
