"""Command-line interface: ``repro-euler`` (or ``python -m repro.cli``).

Subcommands
-----------
``run``
    Run a scenario (``circuit`` | ``path`` | ``components`` | ``postman``)
    on an edge-list file or a named workload and print the execution
    report; optionally write the walk(s) and the run artifact out.
``generate``
    Produce an eulerized R-MAT graph as an edge-list file.
``postman``
    Shorthand for ``run --scenario postman``.
``experiment``
    Regenerate one of the paper's tables/figures by name (``table1``,
    ``fig4`` ... ``fig9``, ``supersteps``, ``baselines``, ``ablations``).
``serve``
    Long-lived JSON-over-HTTP job server: graph catalog + shared-pool
    scheduler (see :mod:`repro.jobs`). With ``--dispatcher remote`` it
    becomes the coordinator of a multi-host cluster (``--hosts``).
    ``GET /metrics`` serves the whole stack's metrics registry in
    Prometheus text format on both front ends (see :mod:`repro.obs`).
``worker``
    One worker host process serving BSP supersteps and whole jobs to a
    remote-mode coordinator (see :mod:`repro.jobs.remote`).
``submit`` / ``status`` / ``jobs``
    HTTP clients for a running ``serve`` instance: queue a job on an input
    file, poll one job, list all jobs.
``mutate`` / ``watch``
    Dynamic graphs against a running server: ``mutate`` applies an edge
    delta to a cataloged graph (``PATCH /graphs/<key>``); ``watch``
    manages watch jobs — a pinned (graph, scenario) pair that re-emits an
    incrementally repaired result after every mutation.
``batch``
    Execute a JSONL job file through a local job engine and write a
    ``run_table.csv``-style report (one row per job).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import bench
from .bsp import EXECUTORS
from .generate.eulerize import eulerian_rmat
from .graph.io import load_edge_list, save_edge_list
from .pipeline import RunConfig
from .scenarios import run_scenario, scenario_names

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": lambda: bench.table1(),
    "fig4": lambda: bench.fig4_degree_distribution(),
    "fig5": lambda: bench.fig5_weak_scaling(),
    "fig6": lambda: bench.fig6_time_split(),
    "fig7": lambda: bench.fig7_phase1_complexity(),
    "fig8": lambda: bench.fig8_memory_state(),
    "fig9": lambda: bench.fig9_vertex_census(),
    "supersteps": lambda: bench.supersteps_experiment(),
    "baselines": lambda: bench.baselines_experiment(),
    "ablations": lambda: (bench.ablation_matching(), bench.ablation_partitioner()),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and ``--help`` docs)."""
    p = argparse.ArgumentParser(
        prog="repro-euler",
        description="Partition-centric distributed Euler circuits "
        "(Jaiswal & Simmhan, IPDPS 2019 workshops).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a scenario (default: Euler circuit)")
    run.add_argument("input", help="edge-list file, or workload name like "
                                   "G40k/P8 or POSTMAN/RMAT")
    # default=None so an explicit "--parts 4" is distinguishable from "not
    # given" (named workloads supply their own default otherwise).
    run.add_argument("--parts", type=int, default=None,
                     help="number of partitions (default: 4, or the named "
                          "workload's spec)")
    # default=None: an omitted --scenario falls back to the named workload's
    # own scenario (POSTMAN/RMAT runs postman), or circuit for files.
    run.add_argument("--scenario", default=None,
                     choices=scenario_names(),
                     help="workload shape (default: circuit, or the named "
                          "workload's scenario)")
    run.add_argument("--partitioner", default="ldg",
                     choices=("ldg", "bfs", "hash", "random"))
    run.add_argument("--strategy", default="eager",
                     choices=("eager", "dedup", "deferred", "proposed"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--executor", default=None,
                     choices=sorted(EXECUTORS),
                     help="BSP backend (default: serial, or thread when "
                          "--workers > 1)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker count for the thread/process backends")
    run.add_argument("--task-transport", default=None,
                     choices=("memory", "pickle", "shm", "socket"),
                     help="per-task wire codec for the serial/thread "
                          "backends (parity/benchmark knob; results are "
                          "bit-identical either way)")
    run.add_argument("--hosts", default=None,
                     help="remote executor: comma-separated worker host "
                          "addresses (each runs `repro-euler worker`)")
    run.add_argument("--verify", action="store_true",
                     help="verify the produced walk(s)")
    run.add_argument("--report-json",
                     help="write the full run artifact as JSON here")
    run.add_argument("--out", help="write the walk vertex sequence(s) here")

    gen = sub.add_parser("generate", help="generate an eulerized R-MAT graph")
    gen.add_argument("output", help="edge-list file to write")
    gen.add_argument("--scale", type=int, default=14, help="log2 vertex count")
    gen.add_argument("--avg-degree", type=float, default=5.0)
    gen.add_argument("--seed", type=int, default=0)

    post = sub.add_parser(
        "postman",
        help="closed covering route on a non-Eulerian graph (edge revisits)",
    )
    post.add_argument("input", help="edge-list file")
    post.add_argument("--parts", type=int, default=4)
    post.add_argument("--partitioner", default="ldg",
                      choices=("ldg", "bfs", "hash", "random"))
    post.add_argument("--strategy", default="eager",
                      choices=("eager", "dedup", "deferred", "proposed"))
    post.add_argument("--seed", type=int, default=0)
    post.add_argument("--executor", default=None, choices=sorted(EXECUTORS),
                      help="BSP backend (default: serial, or thread when "
                           "--workers > 1)")
    post.add_argument("--workers", type=int, default=1,
                      help="worker count for the thread/process backends")
    post.add_argument("--verify", action="store_true",
                      help="verify the covering walk")
    post.add_argument("--report-json",
                      help="write the scenario artifact as JSON here")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    serve = sub.add_parser(
        "serve", help="run the long-lived job server (graph catalog + "
                      "shared-pool scheduler, JSON HTTP API; GET /metrics "
                      "serves Prometheus text on both front ends)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--cache-root", default=".graph_catalog",
                       help="graph catalog directory (default: .graph_catalog)")
    serve.add_argument("--cache-budget-mb", type=float, default=None,
                       help="evict least-recently-used graphs beyond this "
                            "on-disk budget")
    serve.add_argument("--artifact-dir", default=None,
                       help="write one durable job artifact JSON per job "
                            "here (default: <cache-root>/artifacts — the "
                            "artifact index backs evicted-job status "
                            "lookups)")
    serve.add_argument("--dispatchers", type=int, default=2,
                       help="concurrent jobs (dispatcher threads or forked "
                            "worker processes)")
    serve.add_argument("--dispatcher", default="thread",
                       choices=("thread", "process", "remote"),
                       help="job dispatch mode: in-process threads, one "
                            "pre-forked worker process per dispatcher "
                            "(zero-copy shared-memory graphs, true "
                            "multi-core), or a coordinator scheduling over "
                            "remote worker hosts (--hosts)")
    serve.add_argument("--hosts", default=None,
                       help="remote mode: comma-separated worker host "
                            "addresses, e.g. 10.0.0.1:9701,10.0.0.2:9701 "
                            "(each runs `repro-euler worker`)")
    serve.add_argument("--frontend", default="thread",
                       choices=("thread", "async"),
                       help="HTTP front end: thread-per-connection, or a "
                            "single asyncio event loop (keep-alive, cheap "
                            "idle connections)")
    serve.add_argument("--keep-results", type=int, default=64,
                       help="terminal jobs keeping their in-memory result "
                            "(older results served from the artifact dir)")
    serve.add_argument("--retention", type=int, default=256,
                       help="terminal jobs kept in the in-memory registry; "
                            "older ones answer status from the artifact "
                            "index (0: unbounded)")
    serve.add_argument("--max-queued", type=int, default=128,
                       help="queued-job backpressure bound; submissions "
                            "beyond it get HTTP 429 (0: unbounded)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-job run deadline in seconds "
                            "(jobs may override via timeout_seconds)")
    serve.add_argument("--pool", default="thread",
                       choices=("thread", "process", "none"),
                       help="shared executor pool kind (none: each run "
                            "builds its own backend)")
    serve.add_argument("--pool-workers", type=int, default=4)
    serve.add_argument("--journal-dir", default=None,
                       help="crash-safe job journal directory (default: "
                            "<cache-root>/journal; 'none' disables — "
                            "acknowledged jobs then do not survive kill -9)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="default transient-failure retries per job "
                            "(killed/hung workers, broken pools; jobs may "
                            "override via max_retries)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="SIGTERM graceful-drain budget in seconds: stop "
                            "intake (503), let running jobs finish, "
                            "checkpoint the journal")
    serve.add_argument("--hang-timeout", type=float, default=None,
                       help="process mode: seconds of worker heartbeat "
                            "silence before the worker is killed and the "
                            "job retried (default: disabled)")

    worker = sub.add_parser(
        "worker", help="run one worker host process (serves BSP supersteps "
                       "and whole jobs to a remote-mode coordinator over a "
                       "length-prefixed binary protocol)")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="listen port (0: pick a free port and print it)")
    worker.add_argument("--cache-root", default=".worker_catalog",
                        help="this host's graph catalog shard directory")
    worker.add_argument("--port-file", default=None,
                        help="write 'host port pid' here once listening "
                             "(for scripted loopback clusters)")

    def add_server_arg(sp):
        sp.add_argument("--server", default="http://127.0.0.1:8642",
                        help="base URL of a running `repro-euler serve`")

    submit = sub.add_parser("submit", help="submit a job to a running server")
    submit.add_argument("input", help="edge-list or .npz file (server-local "
                                      "path), or a cataloged graph key with "
                                      "--graph-key")
    submit.add_argument("--graph-key", action="store_true",
                        help="treat INPUT as a graph key already in the "
                             "server's catalog")
    submit.add_argument("--scenario", default="circuit",
                        choices=scenario_names())
    submit.add_argument("--parts", type=int, default=4)
    submit.add_argument("--partitioner", default="ldg",
                        choices=("ldg", "bfs", "hash", "random"))
    submit.add_argument("--strategy", default="eager",
                        choices=("eager", "dedup", "deferred", "proposed"))
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--verify", action="store_true")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job run deadline in seconds")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print its "
                             "final state")
    add_server_arg(submit)

    status = sub.add_parser("status", help="one job's status from a server")
    status.add_argument("job_id")
    add_server_arg(status)

    jobs = sub.add_parser("jobs", help="list all jobs on a server")
    add_server_arg(jobs)

    mutate = sub.add_parser(
        "mutate", help="apply an edge delta to a cataloged graph "
                       "(watches on it re-emit repaired results)")
    mutate.add_argument("graph_key", help="base graph key in the server's "
                                          "catalog")
    mutate.add_argument("--insert", action="append", default=[],
                        metavar="U,V",
                        help="edge to insert, as 'u,v' (repeatable; "
                             "endpoints beyond |V| grow the graph)")
    mutate.add_argument("--delete-eid", action="append", default=[],
                        type=int, metavar="EID",
                        help="edge id to delete (repeatable)")
    mutate.add_argument("--name", default="",
                        help="display name for the mutated graph")
    add_server_arg(mutate)

    watch = sub.add_parser(
        "watch", help="manage watch jobs: pin a (graph, scenario) pair so "
                      "every mutation re-emits a repaired result")
    watch.add_argument("graph_key", nargs="?", default=None,
                       help="create a watch on this cataloged graph key "
                            "(omit with --list/--delete)")
    watch.add_argument("--scenario", default="circuit",
                       choices=scenario_names())
    watch.add_argument("--parts", type=int, default=4)
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--threshold", type=float, default=0.5,
                       help="dirty-partition fraction above which an "
                            "emission falls back to full recompute")
    watch.add_argument("--list", action="store_true",
                       help="list the server's watches")
    watch.add_argument("--delete", default=None, metavar="WATCH_ID",
                       help="tear down one watch")
    add_server_arg(watch)

    batch = sub.add_parser(
        "batch", help="run a JSONL job file locally and write a run-table CSV")
    batch.add_argument("jobs_file", help="one JSON job spec per line")
    batch.add_argument("--report", default="run_table.csv",
                       help="CSV report path (one row per job)")
    batch.add_argument("--cache-root", default=".graph_catalog")
    batch.add_argument("--artifact-dir", default=None)
    batch.add_argument("--dispatchers", type=int, default=2)
    batch.add_argument("--pool", default="thread",
                       choices=("thread", "process", "none"))
    batch.add_argument("--pool-workers", type=int, default=4)
    return p


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        g, info = eulerian_rmat(args.scale, avg_degree=args.avg_degree, seed=args.seed)
        save_edge_list(g, args.output)
        print(
            f"wrote {args.output}: |V|={g.n_vertices} |E|={g.n_edges} "
            f"(+{100 * info.added_fraction:.1f}% eulerization edges)"
        )
        return 0
    if args.command == "experiment":
        _EXPERIMENTS[args.name]()
        return 0
    if args.command in ("serve", "worker", "submit", "status", "jobs",
                        "batch", "mutate", "watch"):
        return _jobs_main(args)
    if args.command == "postman":
        g = load_edge_list(args.input)
        config = RunConfig(
            n_parts=args.parts,
            partitioner=args.partitioner,
            strategy=args.strategy,
            seed=args.seed,
            executor=args.executor,
            workers=args.workers,
            verify=args.verify,
        )
        result = run_scenario(g, "postman", config)
        route = result.circuit
        print(
            f"route: {route.n_edges} steps over {g.n_edges} edges "
            f"({result.metrics['n_revisits']} revisits, "
            f"{100 * result.metrics['deadhead_fraction']:.1f}% deadheading), "
            f"closed={route.is_closed}"
        )
        if args.report_json:
            from .bench.report_io import save_scenario

            path = save_scenario(result, args.report_json)
            print(f"wrote scenario artifact to {path}")
        return 0
    # run
    g, default_parts, default_scenario = _load_run_input(args.input)
    n_parts = args.parts if args.parts is not None else default_parts
    scenario = args.scenario if args.scenario is not None else default_scenario
    config = RunConfig(
        n_parts=n_parts,
        partitioner=args.partitioner,
        strategy=args.strategy,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        task_transport=args.task_transport,
        hosts=args.hosts,
        verify=args.verify,
    )
    result = run_scenario(g, scenario, config)
    _print_scenario(result)
    if args.report_json:
        if scenario == "circuit":
            # The established single-run artifact (back-compat for tooling
            # that reads RunContext JSON).
            from .bench.report_io import save_context

            path = save_context(result.sub_runs[0].context, args.report_json)
        else:
            from .bench.report_io import save_scenario

            path = save_scenario(result, args.report_json)
        print(f"wrote run artifact to {path}")
    for sub in result.sub_runs:
        for row in sub.report.state_by_level():
            print(
                f"  level {row['level']}: partitions={row['n_partitions']} "
                f"state={row['cumulative_longs']:,} Longs "
                f"(avg {row['avg_longs']:,.0f})"
            )
    if args.out:
        _write_walks(args.out, result.circuits)
        print(f"wrote walk vertex sequence to {args.out}")
    return 0


def _jobs_main(args) -> int:
    """The job-orchestration subcommands (imported lazily: stdlib http etc.)."""
    from .jobs import GraphCatalog, JobEngine, load_job_specs, run_batch, write_report_csv
    from .jobs.client import JobClient

    if args.command == "worker":
        from .jobs.remote import worker_serve

        worker_serve(args.host, args.port, args.cache_root,
                     port_file=args.port_file)
        return 0
    if args.command == "serve":
        from pathlib import Path

        from .jobs.server import serve_forever

        budget = (
            int(args.cache_budget_mb * 1024 * 1024)
            if args.cache_budget_mb is not None
            else None
        )
        # The artifact index is what answers status lookups for jobs the
        # bounded registry evicted — default it on rather than off.
        artifact_dir = args.artifact_dir or str(Path(args.cache_root) / "artifacts")
        # Same stance for the journal: crash safety should be the default
        # for a long-lived server, opt-out rather than opt-in.
        journal_dir = (
            None if args.journal_dir == "none"
            else args.journal_dir or str(Path(args.cache_root) / "journal")
        )
        engine = JobEngine(
            GraphCatalog(args.cache_root, size_budget_bytes=budget),
            dispatchers=args.dispatchers,
            dispatcher=args.dispatcher,
            pool_kind=None if args.pool == "none" else args.pool,
            pool_workers=args.pool_workers,
            artifact_dir=artifact_dir,
            keep_results=args.keep_results,
            retention=args.retention or None,
            max_queued=args.max_queued or None,
            default_timeout=args.timeout,
            journal=journal_dir,
            default_max_retries=args.max_retries,
            hang_timeout=args.hang_timeout,
            hosts=args.hosts,
        )
        recovered = engine.recovery_stats
        if recovered["requeued"] or recovered["reconciled"] or recovered["failed"]:
            print(f"repro-euler serve: recovered journal — "
                  f"requeued={recovered['requeued']} "
                  f"reconciled={recovered['reconciled']} "
                  f"failed={recovered['failed']}")
        serve_forever(engine, args.host, args.port, frontend=args.frontend,
                      drain_timeout=args.drain_timeout)
        return 0
    if args.command == "batch":
        engine = JobEngine(
            GraphCatalog(args.cache_root),
            dispatchers=args.dispatchers,
            pool_kind=None if args.pool == "none" else args.pool,
            pool_workers=args.pool_workers,
            artifact_dir=args.artifact_dir,
        )
        with engine:
            rows = run_batch(load_job_specs(args.jobs_file), engine)
            path = write_report_csv(rows, args.report)
        done = sum(1 for r in rows if r["state"] == "DONE")
        print(f"batch: {done}/{len(rows)} jobs DONE -> {path}")
        for r in rows:
            print(f"  {r['job_id']} {r['scenario']:<10} {r['state']:<9} "
                  f"queue={r['queue_latency_s']:.3f}s wall={r['run_wall_s']:.3f}s "
                  f"{r['throughput_edges_per_s']:,.0f} edges/s")
        return 0 if done == len(rows) else 1
    client = JobClient(args.server)
    if args.command == "mutate":
        insert = []
        for text in args.insert:
            u, _, v = text.partition(",")
            insert.append((int(u), int(v)))
        out = client.mutate(args.graph_key, insert=insert or None,
                            delete_eids=args.delete_eid or None,
                            name=args.name)
        d = out["delta"]
        print(f"mutated {out['base_key']} -> {out['graph_key']} "
              f"(+{d['n_inserts']}/-{d['n_deletes']} edges, "
              f"|V| {d['n_vertices_before']} -> {d['n_vertices_after']})")
        for wid, info in sorted(out.get("watches", {}).items()):
            print(f"  {wid}: {info['decision']} -> job {info['job_id']}")
        return 0
    if args.command == "watch":
        if args.delete:
            client.delete_watch(args.delete)
            print(f"deleted {args.delete}")
            return 0
        if args.list or args.graph_key is None:
            listed = client.watches()
            if not listed:
                print("no watches")
                return 0
            print(f"{'ID':<14} {'SCENARIO':<11} {'GRAPH':<18} "
                  f"{'MUTATIONS':>9} {'LAST JOB':<12}")
            for w in listed:
                print(f"{w['id']:<14} {w['scenario']:<11} "
                      f"{w['graph_key']:<18} {w['mutations']:>9} "
                      f"{w['last_job_id'] or '-':<12}")
            return 0
        w = client.create_watch(
            args.graph_key, scenario=args.scenario,
            config={"n_parts": args.parts, "seed": args.seed},
            threshold=args.threshold)
        print(f"created {w['id']} on {w['graph_key']} ({w['scenario']})")
        return 0
    if args.command == "submit":
        config = {
            "n_parts": args.parts,
            "partitioner": args.partitioner,
            "strategy": args.strategy,
            "seed": args.seed,
            "workers": args.workers,
            "verify": args.verify,
        }
        if args.graph_key:
            sub = client.submit(args.scenario, graph_key=args.input,
                                config=config, priority=args.priority,
                                timeout_seconds=args.timeout)
        else:
            sub = client.submit(args.scenario, path=args.input,
                                config=config, priority=args.priority,
                                timeout_seconds=args.timeout)
        print(f"submitted {sub['job_id']} (graph {sub['graph_key']})")
        if args.wait:
            final = client.wait(sub["job_id"], timeout=3600)
            q = final.get("queue_latency_seconds")
            r = final.get("run_seconds")
            # A job cancelled while we waited has no timings (None).
            print(f"{final['id']}: {final['state']} "
                  f"queue={'-' if q is None else format(q, '.3f') + 's'} "
                  f"run={'-' if r is None else format(r, '.3f') + 's'}")
            if final["state"] == "FAILED" and final.get("error"):
                print(f"error: {final['error']}")
            return 0 if final["state"] == "DONE" else 1
        return 0
    if args.command == "status":
        _print_job_row(client.status(args.job_id), header=True)
        return 0
    # jobs
    listed = client.jobs()
    if not listed:
        print("no jobs")
        return 0
    for i, row in enumerate(listed):
        _print_job_row(row, header=i == 0)
    return 0


def _print_job_row(row: dict, header: bool = False) -> None:
    if header:
        print(f"{'ID':<12} {'STATE':<9} {'SCENARIO':<11} {'GRAPH':<18} "
              f"{'QUEUE(s)':>9} {'RUN(s)':>8}")
    q = row.get("queue_latency_seconds")
    r = row.get("run_seconds")
    q_str = "-" if q is None else f"{q:.3f}"
    r_str = "-" if r is None else f"{r:.3f}"
    print(f"{row['id']:<12} {row['state']:<9} {row['scenario']:<11} "
          f"{(row.get('graph_name') or row['graph_key']):<18} "
          f"{q_str:>9} {r_str:>8}")


def _write_walks(path: str, circuits) -> None:
    """One vertex id per line; a single walk keeps the established format.

    Several walks (the ``components`` scenario) are delimited by
    ``# walk <i>: <n> edges`` comment headers, so consumers can split them
    while ``np.loadtxt`` keeps reading the file (comments are skipped).
    """
    if len(circuits) == 1:
        np.savetxt(path, circuits[0].vertices, fmt="%d")
        return
    with open(path, "w") as fh:
        for i, circ in enumerate(circuits):
            fh.write(f"# walk {i}: {circ.n_edges} edges\n")
            fh.writelines(f"{int(v)}\n" for v in circ.vertices)


def _load_run_input(name: str):
    """Resolve a ``run`` input: named workload or edge-list path.

    Returns ``(graph, default_n_parts, default_scenario)`` — the defaults
    apply only when ``--parts`` / ``--scenario`` were not given.
    """
    if name in bench.PAPER_WORKLOADS:
        g, spec = bench.load_workload(name)
        return g, spec.n_parts, "circuit"
    if name in bench.SCENARIO_WORKLOADS:
        g, spec = bench.load_scenario_workload(name)
        return g, spec.n_parts, spec.scenario
    return load_edge_list(name), 4, "circuit"


def _print_scenario(result) -> None:
    """Human summary: one line per walk, one pipeline line per sub-run."""
    for circ in result.circuits:
        kind = "circuit" if circ.is_closed else "path"
        print(f"{kind}: {circ.n_edges} edges, closed={circ.is_closed}")
    if result.metrics:
        pretty = ", ".join(
            f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(result.metrics.items())
        )
        print(f"{result.scenario}: {pretty}")
    for sub in result.sub_runs:
        rep = sub.report
        prefix = f"[{sub.key}] " if len(result.sub_runs) > 1 else ""
        print(
            f"{prefix}partitions={rep.n_parts} supersteps={rep.n_supersteps} "
            f"executor={sub.context.config.executor_name} "
            f"total={rep.total_seconds:.2f}s compute={rep.compute_seconds:.2f}s"
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
