"""Deterministic fault injection: seeded plans driving chaos tests.

The paper's BSP model assumes machines that fail; proving the serving
stack actually survives worker death needs faults that fire *on demand*,
at a *known point*, and — crucially — stop firing on the retry so the
recovered run can be compared bit-for-bit against an unfaulted one. A
:class:`FaultPlan` is that switch: a small, picklable list of
:class:`FaultSpec` records threaded through
:class:`~repro.pipeline.context.RunConfig` (``config.faults``) or armed
process-wide via the ``REPRO_FAULTS`` environment variable.

Fault kinds
-----------
``worker_kill``
    ``os.kill(getpid(), SIGKILL)`` at superstep ``at`` — inside a forked
    dispatcher worker this is a real, unclean worker death (the parent
    sees EOF on the pipe); in-process it degrades to a
    :class:`~repro.errors.FaultInjectedError` (you cannot SIGKILL a
    thread without taking the server with it).
``fail``
    Raise :class:`~repro.errors.FaultInjectedError` at superstep ``at`` —
    the portable transient failure used to exercise the retry path on the
    thread dispatcher.
``slow``
    Sleep ``delay`` seconds at superstep ``at`` — drives hang detection
    and deadline tests without touching the data plane.
``shm_attach``
    Make the next shared-memory graph attach raise ``FileNotFoundError``
    — exercises the catalog-NPZ fallback in the forked workers.
``delta_apply``
    Make the next catalog delta application raise
    :class:`~repro.errors.FaultInjectedError` — exercises the mutation
    front end's error path and proves a failed ``PATCH`` leaves the
    catalog (and any watch jobs on the base graph) untouched.
``host_kill``
    ``os.kill(getpid(), SIGKILL)`` at superstep ``at`` — inside a
    dedicated :class:`~repro.jobs.remote.WorkerHost` process (the
    ``repro-euler worker`` entry sets ``REPRO_FAULT_HOST``) this is a
    real, unclean host death: the coordinator sees the socket drop and
    must re-dispatch the job to a surviving host. Anywhere else it
    degrades to a :class:`~repro.errors.FaultInjectedError`, so an
    in-process :class:`WorkerHost` (tests) survives and merely fails
    the run transiently.

Attempt arming
--------------
Every spec has ``attempts`` (default 1): it fires only while the job's
retry attempt index is ``< attempts``. The engine calls
:meth:`FaultPlan.for_attempt` when hydrating a job's config, so a plan
that kills attempt 0 leaves the retried attempt untouched — which is what
makes "the retried circuit is bit-identical to an unfaulted run" a
checkable assertion instead of a race.

``REPRO_FAULTS`` grammar (specs joined by ``;``)::

    kind@key=value,key=value
    worker_kill@at=2
    fail@at=0,attempts=2;slow@at=1,delay=0.5

Faults only ever abort or delay a run — they never mutate data — so any
run that completes, faulted or not, produces the canonical result.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from .errors import FaultInjectedError

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

#: Every fault kind the harness can inject.
FAULT_KINDS = ("worker_kill", "fail", "slow", "shm_attach", "host_kill",
               "delta_apply")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what fires, where, and on which attempts."""

    kind: str
    #: Superstep index the fault fires at (``worker_kill``/``fail``/``slow``;
    #: ignored by ``shm_attach``). ``0`` is the first superstep boundary.
    at: int = 0
    #: Fire only while the job's attempt index is below this (so retries
    #: run clean by default).
    attempts: int = 1
    #: Sleep duration for ``slow``.
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at < 0 or self.attempts < 1 or self.delay < 0:
            raise ValueError(f"invalid fault spec {self!r}")


class FaultPlan:
    """A deterministic set of faults for one run (picklable, re-armable).

    The plan is stateful per process: :meth:`superstep` counts boundaries
    as the pipeline calls it, so "kill at superstep 2" means the third
    boundary this plan observes. Crossing a fork pipe (the forked
    dispatcher spec) resets the counter naturally — each worker-side run
    starts at boundary 0.
    """

    def __init__(self, specs: list[FaultSpec] | tuple = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._boundary = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar into a plan."""
        specs = []
        for chunk in str(text).split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, args = chunk.partition("@")
            kwargs: dict = {}
            for pair in filter(None, (p.strip() for p in args.split(","))):
                key, _, value = pair.partition("=")
                if key == "delay":
                    kwargs["delay"] = float(value)
                elif key in ("at", "attempts"):
                    kwargs[key] = int(value)
                else:
                    raise ValueError(f"unknown fault arg {key!r} in {chunk!r}")
            specs.append(FaultSpec(kind.strip(), **kwargs))
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The process-wide plan from ``REPRO_FAULTS``, or ``None``."""
        text = (environ if environ is not None else os.environ).get(
            "REPRO_FAULTS", ""
        ).strip()
        return cls.parse(text) if text else None

    def for_attempt(self, attempt: int) -> "FaultPlan | None":
        """The plan as seen by retry ``attempt`` (``None`` when disarmed).

        Specs whose ``attempts`` bound the given attempt index has reached
        are dropped, so a default plan fires on the first attempt only and
        the retried run executes clean.
        """
        live = [s for s in self.specs if attempt < s.attempts]
        return FaultPlan(live, seed=self.seed) if live else None

    # -- injection points ---------------------------------------------------

    def superstep(self) -> None:
        """Fire any superstep-scoped fault due at this boundary."""
        k = self._boundary
        self._boundary += 1
        for spec in self.specs:
            if spec.at != k:
                continue
            if spec.kind == "slow":
                time.sleep(spec.delay)
            elif spec.kind == "fail":
                raise FaultInjectedError(
                    f"injected failure at superstep {k}"
                )
            elif spec.kind == "worker_kill":
                self._kill(k)
            elif spec.kind == "host_kill":
                self._kill(k, host=True)

    def shm_attach(self) -> None:
        """Fire a pending ``shm_attach`` fault (consume it, then raise)."""
        for spec in self.specs:
            if spec.kind == "shm_attach":
                self.specs = tuple(s for s in self.specs if s is not spec)
                raise FileNotFoundError(
                    "injected shared-memory attach failure"
                )

    def delta_apply(self) -> None:
        """Fire a pending ``delta_apply`` fault (consume it, then raise)."""
        for spec in self.specs:
            if spec.kind == "delta_apply":
                self.specs = tuple(s for s in self.specs if s is not spec)
                raise FaultInjectedError(
                    "injected delta application failure"
                )

    def _kill(self, k: int, host: bool = False) -> None:
        # Only a process that *opted in* by exporting the marker with its
        # own pid dies for real; everything else — including an in-process
        # WorkerHost inside a test — degrades to a transient raise.
        marker = "REPRO_FAULT_HOST" if host else "REPRO_FAULT_WORKER"
        if os.environ.get(marker) == str(os.getpid()):
            # A forked worker / dedicated host: die the way a real crash does.
            os.kill(os.getpid(), signal.SIGKILL)
        what = "host" if host else "worker"
        raise FaultInjectedError(
            f"injected {what} kill at superstep {k} "
            "(in-process: raised instead of SIGKILL)"
        )

    # -- plumbing -----------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        inner = ";".join(
            f"{s.kind}@at={s.at},attempts={s.attempts}"
            + (f",delay={s.delay:g}" if s.delay else "")
            for s in self.specs
        )
        return f"FaultPlan({inner!r}, seed={self.seed})"

    def __getstate__(self):
        return {"specs": self.specs, "seed": self.seed}

    def __setstate__(self, state):
        self.specs = state["specs"]
        self.seed = state.get("seed", 0)
        self._boundary = 0
