"""Scenario protocol, registry, and the :func:`run_scenario` entry point.

A *scenario* expresses one workload family as a **reduction** (a graph
transform producing one or more Eulerian sub-problems) plus a
**postprocess** (mapping each sub-problem's circuit back to walks over the
original graph). Every sub-problem executes through the full staged
pipeline (:func:`repro.pipeline.run_pipeline`), so each scenario gets the
executor backends, spill, validation, verification, and the
schema-versioned :class:`~repro.pipeline.context.RunContext` artifact for
free — no side-door code paths.

Multi-sub-problem scenarios (``components``) run as a *batch*: the
partition budget is split across sub-problems by largest-remainder
allocation (:func:`allocate_parts`, never overshooting the request), and
with ``RunConfig(executor="process", workers>1)`` the sub-problems fan out
across a process pool — one OS process per sub-graph, the first
multi-graph execution path toward serving many concurrent requests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..core.circuit import EulerCircuit
from ..graph.graph import Graph
from ..obs import Span
from ..pipeline import RunConfig, RunContext, run_pipeline
from ..pipeline.context import ExecutionReport

__all__ = [
    "Scenario",
    "SubProblem",
    "SubRun",
    "ScenarioResult",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "allocate_parts",
    "run_scenario",
]


@dataclass(frozen=True)
class SubProblem:
    """One Eulerian sub-graph a scenario's reduction produced.

    ``meta`` is scenario-private mapping state the postprocess needs
    (vertex/edge id maps, the virtual edge id, duplicated-edge origins).
    """

    key: str
    graph: Graph
    n_parts: int
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SubRun:
    """One executed sub-problem: its key, budget, and full run artifact."""

    key: str
    n_parts: int
    context: RunContext
    meta: dict = field(default_factory=dict)

    @property
    def report(self) -> ExecutionReport:
        """The figure-series view of this sub-run."""
        return self.context.report


@dataclass
class ScenarioResult:
    """Typed return value of :func:`run_scenario`.

    ``circuits`` holds the final walks in *original-graph* vertex/edge ids
    (one per sub-run for ``components``; exactly one for the single-walk
    scenarios). ``sub_runs`` carries every pipeline artifact; ``metrics``
    aggregates scenario-level numbers (e.g. ``deadhead_fraction``,
    ``n_components``, ``n_parts_allocated``).
    """

    scenario: str
    config: RunConfig
    circuits: list[EulerCircuit]
    sub_runs: list[SubRun]
    metrics: dict

    @property
    def circuit(self) -> EulerCircuit:
        """The single walk of a one-walk scenario (raises on batches)."""
        if len(self.circuits) != 1:
            raise ValueError(
                f"scenario {self.scenario!r} produced {len(self.circuits)} "
                "walks; iterate .circuits instead"
            )
        return self.circuits[0]

    @property
    def reports(self) -> list[ExecutionReport]:
        """Per-sub-run execution reports, in sub-run order."""
        return [s.report for s in self.sub_runs]

    @property
    def n_parts_allocated(self) -> int:
        """Total partition budget spent across all sub-runs."""
        return sum(s.n_parts for s in self.sub_runs)


class Scenario(ABC):
    """A workload expressed as reduction + postprocess over the pipeline."""

    #: Registry key (set by subclasses).
    name: str = ""

    @abstractmethod
    def reduce(self, graph: Graph, config: RunConfig) -> list[SubProblem]:
        """Transform ``graph`` into Eulerian sub-problems.

        May raise :class:`~repro.errors.NotEulerianError` /
        :class:`~repro.errors.DisconnectedGraphError` when the graph does
        not admit this scenario. An empty list short-circuits the pipeline
        (the postprocess still runs, with no contexts).
        """

    @abstractmethod
    def postprocess(
        self,
        graph: Graph,
        config: RunConfig,
        subs: list[SubProblem],
        contexts: list[RunContext],
    ) -> tuple[list[EulerCircuit], dict]:
        """Map sub-problem circuits back to original-graph walks + metrics.

        Must honor ``config.verify`` for any walk transformation it applies
        on top of the (already pipeline-verified) sub-circuits.
        """


#: Name → scenario instance. Populated by :func:`register_scenario`.
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (keyed by its ``name``)."""
    if not scenario.name:
        raise ValueError("scenario must define a non-empty name")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def allocate_parts(n_parts: int, weights) -> np.ndarray:
    """Largest-remainder split of a partition budget across weighted items.

    Every item receives at least one partition; the total is exactly
    ``max(len(weights), n_parts)`` — i.e. the budget is never overshot
    unless there are more items than partitions (each pipeline run needs
    one). Deterministic: remainder ties break by item index.
    """
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    k = int(w.size)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.ones(k, dtype=np.int64)
    extra = int(n_parts) - k
    total = float(w.sum())
    if extra <= 0 or total <= 0:
        return out
    quota = extra * w / total
    base = np.floor(quota).astype(np.int64)
    out += base
    rem = quota - base
    left = extra - int(base.sum())
    if left > 0:
        # Stable largest-remainder: sort by (-remainder, index).
        order = np.lexsort((np.arange(k), -rem))
        out[order[:left]] += 1
    return out


def _sub_config(config: RunConfig, sub: SubProblem, n_subs: int) -> RunConfig:
    """The per-sub-problem RunConfig: budget applied, spill dir namespaced."""
    spill = config.spill_dir
    if spill is not None and n_subs > 1:
        # Structured fids repeat across sub-runs; give each its own spill
        # namespace so frag_<fid>.npy files cannot collide.
        spill = str(Path(spill) / sub.key)
    return replace(config, n_parts=sub.n_parts, spill_dir=spill)


def _run_sub(args: tuple[Graph, RunConfig]) -> RunContext:
    """Top-level pool task (must be picklable): one pipeline run."""
    graph, config = args
    return run_pipeline(graph, config)


def _run_batch(subs: list[SubProblem], config: RunConfig) -> list[RunContext]:
    """Execute the sub-problems, fanning out across processes when asked.

    The fan-out ships each sub-graph to a worker process and runs the
    pipeline there with the serial backend (the parallelism is *across*
    graphs); every other configuration runs the sub-problems sequentially
    with the configured backend *inside* each run. Both paths produce
    bit-identical circuits — the executor-parity contract of the pipeline.

    A config carrying an externally-owned pool never fans out here: the
    pool object cannot (and must not) cross a process boundary, and the
    job engine already provides the cross-request parallelism — each
    sub-run executes on the shared pool instead.

    A cancel token is checked before every sub-run (and polled while
    fan-out futures are pending); it is stripped from any config shipped
    to a worker process — the token's locks cannot cross a process
    boundary, so cancellation of a fan-out lands between futures.
    """
    n = len(subs)
    token = config.cancel
    if (n > 1 and config.pool is None
            and config.executor == "process" and config.workers > 1):
        inner = replace(config, executor="serial", workers=1, cancel=None,
                        repair=None)
        tasks = [(s.graph, _sub_config(inner, s, n)) for s in subs]
        with ProcessPoolExecutor(max_workers=min(config.workers, n)) as pool:
            if token is None:
                return list(pool.map(_run_sub, tasks))
            futures = [pool.submit(_run_sub, t) for t in tasks]
            out = []
            for fut in futures:
                while True:
                    try:
                        out.append(fut.result(timeout=0.1))
                        break
                    except _FuturesTimeout:
                        if token.should_stop:
                            for f in futures:
                                f.cancel()
                            token.check("components fan-out")
            return out
    out = []
    for s in subs:
        if token is not None:
            token.check("sub-run boundary")
        out.append(run_pipeline(s.graph, _sub_config(config, s, n)))
    return out


def run_scenario(
    graph: Graph,
    scenario: str | Scenario = "circuit",
    config: RunConfig | None = None,
) -> ScenarioResult:
    """Run one scenario end-to-end through the staged pipeline.

    ``scenario`` is a registry name (``"circuit"`` | ``"path"`` |
    ``"components"`` | ``"postman"``) or a :class:`Scenario` instance;
    ``config`` threads the full :class:`~repro.pipeline.context.RunConfig`
    (executor backend, workers, matching, spill_dir, validate, verify)
    into every sub-run. Returns a :class:`ScenarioResult` with walks in
    original-graph ids, the per-sub-run artifacts, and aggregate metrics.
    """
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if config is None:
        config = RunConfig()
    with Span("scenario_reduce", scenario=sc.name):
        subs = sc.reduce(graph, config)
    if config.cancel is not None:
        # Checkpoint even when the reduction produced no sub-problems, so
        # a cancel that landed during reduce() still stops the scenario.
        config.cancel.check("after reduce")
    contexts = _run_batch(subs, config)
    with Span("scenario_postprocess", scenario=sc.name):
        circuits, metrics = sc.postprocess(graph, config, subs, contexts)
    sub_runs = [
        SubRun(key=s.key, n_parts=s.n_parts, context=ctx, meta=dict(s.meta))
        for s, ctx in zip(subs, contexts)
    ]
    return ScenarioResult(
        scenario=sc.name,
        config=config,
        circuits=circuits,
        sub_runs=sub_runs,
        metrics=metrics,
    )
