"""Chinese Postman routes: closed covering walks on non-Eulerian graphs.

The paper's stated future work (§6): *"We will also consider generalizing
this to non Eulerian graphs, by allowing edge revisits."* Reduction:
eulerize by duplicating a shortest path between each pair of greedily
matched odd-degree vertices (each duplicated edge is one *revisit*, a.k.a.
deadheading) — exact CPP needs minimum-weight perfect matching (O(|V|^3));
greedy nearest-neighbour on BFS distances is a ~2-approximation adequate
for route planning. Postprocess: map duplicate edge ids back to the
originals (:func:`map_edge_ids`) and report the deadhead fraction.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import EulerCircuit, check_step_incidence
from ..errors import DisconnectedGraphError, InvalidCircuitError
from ..graph.graph import Graph
from ..graph.properties import n_edge_components, odd_vertices
from ..graph.traversal import bfs_distances, shortest_path
from ..pipeline import RunConfig, RunContext
from .base import Scenario, SubProblem, register_scenario

__all__ = [
    "PostmanScenario",
    "eulerize_plan",
    "greedy_odd_matching",
    "map_edge_ids",
    "verify_covering_walk",
]


def greedy_odd_matching(graph: Graph, odd: np.ndarray) -> list[tuple[int, int]]:
    """Nearest-neighbour pairing of odd vertices by BFS distance."""
    remaining = [int(v) for v in odd]
    pairs: list[tuple[int, int]] = []
    while remaining:
        a = remaining.pop(0)
        dist = bfs_distances(graph, a)
        best_i, best_d = None, None
        for i, b in enumerate(remaining):
            d = int(dist[b])
            if d >= 0 and (best_d is None or d < best_d):
                best_i, best_d = i, d
        if best_i is None:
            raise DisconnectedGraphError(
                f"odd vertex {a} cannot reach any other odd vertex",
                num_components=n_edge_components(graph),
            )
        pairs.append((a, remaining.pop(best_i)))
    return pairs


def map_edge_ids(
    edge_ids: np.ndarray, n_edges: int, dup_orig: np.ndarray
) -> tuple[np.ndarray, int]:
    """Map augmented-graph edge ids back to the original graph's.

    Ids ``>= n_edges`` are duplicates; duplicate ``i`` revisits original
    edge ``dup_orig[i]`` (several duplicates may share one original — e.g.
    overlapping duplicated shortest paths). Returns the mapped id array and
    the revisit count.
    """
    mapped = np.asarray(edge_ids, dtype=np.int64).copy()
    dup_mask = mapped >= n_edges
    n_revisits = int(dup_mask.sum())
    if n_revisits:
        orig = np.asarray(dup_orig, dtype=np.int64)
        mapped[dup_mask] = orig[mapped[dup_mask] - n_edges]
    return mapped, n_revisits


def verify_covering_walk(graph: Graph, walk: EulerCircuit) -> None:
    """Check a closed covering walk: every edge >= once, incident, closed."""
    if graph.n_edges == 0:
        return
    counts = np.bincount(walk.edge_ids, minlength=graph.n_edges)
    if not bool((counts >= 1).all()):
        missing = np.flatnonzero(counts == 0)[:8].tolist()
        raise InvalidCircuitError(f"covering walk misses edges {missing}")
    check_step_incidence(graph, walk.vertices, walk.edge_ids)
    if not walk.is_closed:
        raise InvalidCircuitError("covering walk is not closed")


def eulerize_plan(graph: Graph) -> dict:
    """The postman reduction's expensive part, as a cacheable plan.

    Matches odd vertices greedily and lays duplicate edges along shortest
    paths; the result is three flat arrays plus the graph shape they were
    computed for, so a catalog can persist the plan keyed by graph content
    and :meth:`PostmanScenario.reduce` can validate it before reuse. The
    computation is deterministic, so a cached plan is bit-identical to a
    fresh one.
    """
    odd = odd_vertices(graph)
    dup_u: list[int] = []
    dup_v: list[int] = []
    dup_orig: list[int] = []  # original eid each duplicate revisits
    for a, b in greedy_odd_matching(graph, odd):
        verts, eids = shortest_path(graph, a, b)
        for (x, y), e in zip(zip(verts[:-1], verts[1:]), eids):
            dup_u.append(x)
            dup_v.append(y)
            dup_orig.append(e)
    return {
        "dup_u": np.asarray(dup_u, dtype=np.int64),
        "dup_v": np.asarray(dup_v, dtype=np.int64),
        "dup_orig": np.asarray(dup_orig, dtype=np.int64),
        "n_odd_vertices": int(odd.size),
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
    }


def _cached_plan(graph: Graph, config: RunConfig) -> dict | None:
    """A catalog-provided eulerization plan, iff it matches this graph."""
    derived = config.derived
    if not isinstance(derived, dict):
        return None
    plan = derived.get("eulerize_plan")
    if not isinstance(plan, dict):
        return None
    if (
        int(plan.get("n_vertices", -1)) != graph.n_vertices
        or int(plan.get("n_edges", -1)) != graph.n_edges
        or "dup_u" not in plan
        or "dup_v" not in plan
        or "dup_orig" not in plan
    ):
        return None
    return plan


class PostmanScenario(Scenario):
    """Closed walk covering every edge at least once, revisits minimized."""

    name = "postman"

    def reduce(self, graph: Graph, config: RunConfig) -> list[SubProblem]:
        if graph.n_edges == 0:
            return []
        if n_edge_components(graph) > 1:
            raise DisconnectedGraphError(
                "postman route requires edges in a single component "
                "(use the 'components' scenario to cover each separately)",
                num_components=n_edge_components(graph),
            )
        plan = _cached_plan(graph, config)
        if plan is None:
            plan = eulerize_plan(graph)
        augmented = graph.with_extra_edges(plan["dup_u"], plan["dup_v"])
        return [
            SubProblem(
                key="eulerized",
                graph=augmented,
                n_parts=config.n_parts,
                meta={
                    "dup_orig": np.asarray(plan["dup_orig"], dtype=np.int64),
                    "n_odd_vertices": int(plan["n_odd_vertices"]),
                },
            )
        ]

    def postprocess(
        self,
        graph: Graph,
        config: RunConfig,
        subs: list[SubProblem],
        contexts: list[RunContext],
    ) -> tuple[list[EulerCircuit], dict]:
        if not subs:  # edgeless graph: the empty walk covers everything
            empty = EulerCircuit(
                vertices=np.empty(0, dtype=np.int64),
                edge_ids=np.empty(0, dtype=np.int64),
            )
            return [empty], {
                "n_revisits": 0,
                "deadhead_fraction": 0.0,
                "n_odd_vertices": 0,
            }
        circ = contexts[0].circuit
        mapped, n_revisits = map_edge_ids(
            circ.edge_ids, graph.n_edges, subs[0].meta["dup_orig"]
        )
        walk = EulerCircuit(vertices=circ.vertices, edge_ids=mapped)
        if config.verify:
            # The pipeline verified the eulerized circuit; this checks the
            # id mapping produced a covering walk of the original graph.
            verify_covering_walk(graph, walk)
        return [walk], {
            "n_revisits": n_revisits,
            "deadhead_fraction": n_revisits / graph.n_edges,
            "n_odd_vertices": subs[0].meta["n_odd_vertices"],
        }


register_scenario(PostmanScenario())
