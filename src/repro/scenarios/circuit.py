"""The identity scenario: an Euler circuit on an Eulerian graph.

No reduction (the graph is its own sub-problem) and no postprocess beyond
returning the pipeline's circuit — this is :func:`repro.core.find_euler_circuit`
expressed in scenario form, so the CLI and batch tooling can treat all
workloads uniformly.
"""

from __future__ import annotations

from ..core.circuit import EulerCircuit
from ..graph.graph import Graph
from ..pipeline import RunConfig, RunContext
from .base import Scenario, SubProblem, register_scenario

__all__ = ["CircuitScenario"]


class CircuitScenario(Scenario):
    """Euler circuit of the whole (Eulerian) graph."""

    name = "circuit"

    def reduce(self, graph: Graph, config: RunConfig) -> list[SubProblem]:
        return [SubProblem(key="graph", graph=graph, n_parts=config.n_parts)]

    def postprocess(
        self,
        graph: Graph,
        config: RunConfig,
        subs: list[SubProblem],
        contexts: list[RunContext],
    ) -> tuple[list[EulerCircuit], dict]:
        return [contexts[0].circuit], {}


register_scenario(CircuitScenario())
