"""Scenario layer: every workload as reduction → pipeline → postprocess.

The paper evaluates one workload — an Euler circuit on a connected
Eulerian graph. Real deployments need more (its §6 future work names open
Euler paths and edge-revisit generalizations); this package expresses each
such workload as a :class:`~repro.scenarios.base.Scenario` that runs
through the *full* staged pipeline, so every scenario gets the executor
backends (serial/thread/process), disk spill, Lemma validation, circuit
verification, and the schema-versioned run artifact — none of them are
side doors around the pipeline.

::

    graph ──reduce──▶ Eulerian sub-problem(s) ──run_pipeline──▶ circuit(s)
                                                                   │
    walks in original ids + metrics ◀──────────postprocess─────────┘

Registered scenarios
--------------------
``circuit``
    The identity scenario: the paper's Euler circuit.
``path``
    Open Euler walk via the virtual-edge reduction (rotate & cut) — the
    DNA-assembly shape: linear genomes give paths, not circuits.
``components``
    One circuit per edge-bearing connected component; the partition budget
    splits across components by largest-remainder allocation, and the
    components run as a batch (optionally fanned out across a process
    pool) — the first multi-graph execution path.
``postman``
    Chinese Postman covering walk [Edmonds & Johnson 1973]: eulerize by
    duplicating shortest paths between matched odd vertices, map edge ids
    back, report the deadhead fraction.

Quickstart::

    from repro.pipeline import RunConfig
    from repro.scenarios import run_scenario

    result = run_scenario(graph, "postman",
                          RunConfig(n_parts=4, executor="process",
                                    workers=4, verify=True))
    print(result.circuit, result.metrics["deadhead_fraction"])
    for sub in result.sub_runs:          # full pipeline artifact per run
        print(sub.key, sub.report.n_supersteps)

The legacy :mod:`repro.extensions` functions are thin compatibility
façades over these scenarios.
"""

from .base import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    SubProblem,
    SubRun,
    allocate_parts,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .circuit import CircuitScenario
from .components import ComponentsScenario, reassemble
from .path import PathScenario, rotate_and_cut
from .postman import (
    PostmanScenario,
    greedy_odd_matching,
    map_edge_ids,
    verify_covering_walk,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "SubProblem",
    "SubRun",
    "allocate_parts",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "CircuitScenario",
    "ComponentsScenario",
    "PathScenario",
    "PostmanScenario",
    "greedy_odd_matching",
    "map_edge_ids",
    "reassemble",
    "rotate_and_cut",
    "verify_covering_walk",
]
