"""Euler *paths* (open walks) via the virtual-edge reduction.

A connected graph with exactly two odd-degree vertices has an Euler path
between them (but no circuit). Reduction: join the odd pair with a virtual
edge so the graph becomes Eulerian; postprocess: rotate the circuit so the
virtual edge is the last step and cut it off (:func:`rotate_and_cut`).
Needed by the DNA-assembly use case the paper cites — linear genomes give
Euler paths, not circuits.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import EulerCircuit, verify_circuit
from ..errors import InvalidCircuitError, NotEulerianError
from ..graph.graph import Graph
from ..graph.properties import euler_path_endpoints, odd_vertices
from ..pipeline import RunConfig, RunContext
from .base import Scenario, SubProblem, register_scenario

__all__ = ["PathScenario", "rotate_and_cut"]


def rotate_and_cut(circuit: EulerCircuit, virtual_eid: int) -> EulerCircuit:
    """Rotate a closed circuit so ``virtual_eid`` comes last, then drop it.

    The closed walk ``v0 .. v0`` containing the virtual edge at step ``k``
    becomes the open walk that starts just after step ``k`` and ends just
    before it — the Euler path of the un-augmented graph. Handles the
    virtual edge landing at any step, including the first and the last.
    """
    eids = np.asarray(circuit.edge_ids)
    verts = np.asarray(circuit.vertices)
    hits = np.flatnonzero(eids == virtual_eid)
    if hits.size != 1:
        raise InvalidCircuitError(
            f"virtual edge {virtual_eid} appears {hits.size} times in circuit"
        )
    k = int(hits[0])
    # Closed walk: verts[0] == verts[-1]; start the open walk after step k.
    rot_e = np.concatenate([eids[k + 1 :], eids[:k]])
    rot_v = np.concatenate([verts[k + 1 : -1], verts[: k + 1]])
    return EulerCircuit(vertices=rot_v, edge_ids=rot_e)


class PathScenario(Scenario):
    """Open Euler walk between the two odd-degree vertices."""

    name = "path"

    def reduce(self, graph: Graph, config: RunConfig) -> list[SubProblem]:
        ends = euler_path_endpoints(graph)
        if ends is None:
            odd = odd_vertices(graph)
            if odd.size == 0:
                # Already Eulerian: the circuit doubles as the (closed) path.
                return [
                    SubProblem(
                        key="graph", graph=graph, n_parts=config.n_parts,
                        meta={"virtual_eid": None},
                    )
                ]
            raise NotEulerianError(
                f"no Euler path: {odd.size} odd-degree vertices (need 0 or 2)",
                odd_vertices=odd[:64].tolist(),
            )
        a, b = ends
        augmented = graph.with_extra_edges([a], [b])
        return [
            SubProblem(
                key="augmented", graph=augmented, n_parts=config.n_parts,
                meta={"virtual_eid": graph.n_edges},
            )
        ]

    def postprocess(
        self,
        graph: Graph,
        config: RunConfig,
        subs: list[SubProblem],
        contexts: list[RunContext],
    ) -> tuple[list[EulerCircuit], dict]:
        virtual_eid = subs[0].meta["virtual_eid"]
        circ = contexts[0].circuit
        if virtual_eid is None:
            return [circ], {"n_virtual_edges": 0}
        path = rotate_and_cut(circ, virtual_eid)
        if config.verify:
            # The pipeline verified the augmented circuit; this checks the
            # rotated open walk against the original graph.
            verify_circuit(graph, path, require_closed=False)
        return [path], {"n_virtual_edges": 1}


register_scenario(PathScenario())
