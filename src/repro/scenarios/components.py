"""Per-component Euler circuits — the scenario layer's batch workload.

The paper treats the graph WLOG as connected; real inputs often are not.
Reduction: decompose into edge-bearing connected components, remap each to
a dense sub-graph, and split the partition budget across components by
largest-remainder allocation (:func:`repro.scenarios.base.allocate_parts`
— proportional to edge counts, at least one each, never overshooting the
request). Postprocess: map every circuit back to original vertex/edge ids.

This is the first multi-graph batch execution path: with
``RunConfig(executor="process", workers>1)`` the components fan out across
a process pool, one pipeline run per worker.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import EulerCircuit, check_step_incidence
from ..graph.graph import Graph
from ..graph.properties import connected_components
from ..pipeline import RunConfig, RunContext
from .base import Scenario, SubProblem, allocate_parts, register_scenario

__all__ = ["ComponentsScenario", "reassemble"]


def reassemble(
    circuit: EulerCircuit, vertices: np.ndarray, edge_ids: np.ndarray
) -> EulerCircuit:
    """Map a sub-graph circuit back to original-graph vertex/edge ids.

    ``vertices``/``edge_ids`` are the original ids of the sub-graph's dense
    ids, i.e. sub-vertex ``i`` is original vertex ``vertices[i]``.
    """
    return EulerCircuit(
        vertices=np.asarray(vertices)[circuit.vertices],
        edge_ids=np.asarray(edge_ids)[circuit.edge_ids],
    )


class ComponentsScenario(Scenario):
    """One Euler circuit per edge-bearing connected component."""

    name = "components"

    def reduce(self, graph: Graph, config: RunConfig) -> list[SubProblem]:
        if graph.n_edges == 0:
            return []
        comp = connected_components(graph)
        edge_comp = comp[graph.edge_u]
        labels = np.unique(edge_comp)
        eids_by_label = [np.flatnonzero(edge_comp == lab) for lab in labels]
        shares = allocate_parts(
            config.n_parts, [e.size for e in eids_by_label]
        )
        subs: list[SubProblem] = []
        for label, eids, share in zip(
            labels.tolist(), eids_by_label, shares.tolist()
        ):
            verts = np.flatnonzero(comp == label)
            remap = np.full(graph.n_vertices, -1, dtype=np.int64)
            remap[verts] = np.arange(verts.size, dtype=np.int64)
            sub_graph = Graph(
                verts.size, remap[graph.edge_u[eids]], remap[graph.edge_v[eids]]
            )
            subs.append(
                SubProblem(
                    key=f"component-{label}",
                    graph=sub_graph,
                    n_parts=share,
                    meta={"label": int(label), "vertices": verts, "edges": eids},
                )
            )
        return subs

    def postprocess(
        self,
        graph: Graph,
        config: RunConfig,
        subs: list[SubProblem],
        contexts: list[RunContext],
    ) -> tuple[list[EulerCircuit], dict]:
        circuits = [
            reassemble(ctx.circuit, s.meta["vertices"], s.meta["edges"])
            for s, ctx in zip(subs, contexts)
        ]
        if config.verify:
            # The sub-circuits were verified against their sub-graphs by the
            # pipeline; this additionally checks the id *mapping* — every
            # reassembled step must still join its edge's endpoints in the
            # original graph.
            for circ in circuits:
                if circ.n_edges:
                    check_step_incidence(graph, circ.vertices, circ.edge_ids)
        metrics = {
            "n_components": len(subs),
            "n_parts_allocated": int(sum(s.n_parts for s in subs)),
            "largest_component_edges": int(
                max((s.graph.n_edges for s in subs), default=0)
            ),
        }
        return circuits, metrics


register_scenario(ComponentsScenario())
