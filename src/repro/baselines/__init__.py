"""Baseline Euler-circuit algorithms the paper compares against (§2.2).

* :func:`hierholzer_circuit` / :func:`hierholzer_path` — sequential O(|E|).
* :func:`fleury_circuit` — sequential O(|E|^2) (small graphs only).
* :func:`makki_circuit` — Makki's vertex-centric distributed algorithm with
  O(|E|) supersteps and one active vertex per superstep.
* :func:`cycle_hook_circuit` — the PRAM-family approach (Atallah-Vishkin /
  Awerbuch-Israeli-Shiloach): local endpoint pairing decomposes the edges
  into closed trails, then hooking merges them.
* :func:`makki_partition_circuit` — Makki lifted to partition granularity
  (supersteps = cut-edge crossings, the paper's §2.2 remark).
"""

from .cycle_hook import CycleHookStats, cycle_hook_circuit
from .makki_partition import MakkiPartitionStats, makki_partition_circuit
from .fleury import fleury_circuit
from .hierholzer import hierholzer_circuit, hierholzer_path
from .makki import makki_circuit

__all__ = [
    "CycleHookStats",
    "cycle_hook_circuit",
    "fleury_circuit",
    "hierholzer_circuit",
    "hierholzer_path",
    "makki_circuit",
    "MakkiPartitionStats",
    "makki_partition_circuit",
]
