"""Fleury's algorithm — the O(|E|^2) historical baseline (§2.2).

Fleury (1883) walks a single trail, at each step refusing to cross a
*bridge* of the remaining graph unless no alternative exists. Detecting
bridges needs a connectivity check per step, giving the quadratic bound the
paper quotes. It exists here purely as the complexity foil to Hierholzer in
the baseline benchmark — run it only on small graphs.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.properties import check_eulerian
from ..core.circuit import EulerCircuit

__all__ = ["fleury_circuit"]


def fleury_circuit(
    graph: Graph, start: int | None = None, check_input: bool = True
) -> EulerCircuit:
    """Compute an Euler circuit with Fleury's bridge-avoiding rule.

    O(|E|^2); intended for graphs up to a few thousand edges.
    """
    if check_input:
        check_eulerian(graph)
    m = graph.n_edges
    if m == 0:
        return EulerCircuit(np.empty(0, np.int64), np.empty(0, np.int64))
    # Mutable adjacency: vertex -> dict of incident unvisited eids.
    adj: list[dict[int, None]] = [dict() for _ in range(graph.n_vertices)]
    for e in range(m):
        u, v = int(graph.edge_u[e]), int(graph.edge_v[e])
        adj[u][e] = None
        if v != u:
            adj[v][e] = None

    def other(e: int, v: int) -> int:
        u, w = int(graph.edge_u[e]), int(graph.edge_v[e])
        return w if v == u else u

    def reachable_count(src: int) -> int:
        """Vertices reachable from src over unvisited edges (DFS)."""
        seen = {src}
        stack = [src]
        while stack:
            x = stack.pop()
            for e in adj[x]:
                y = other(e, x)
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen)

    def is_bridge(v: int, e: int) -> bool:
        """Would traversing e from v disconnect v from the rest?"""
        if len(adj[v]) == 1:
            return False  # forced move; Fleury takes bridges when forced
        before = reachable_count(v)
        _remove(e)
        after = reachable_count(v)
        _restore(e)
        return after < before

    def _remove(e: int) -> None:
        u, w = int(graph.edge_u[e]), int(graph.edge_v[e])
        adj[u].pop(e, None)
        adj[w].pop(e, None)

    def _restore(e: int) -> None:
        u, w = int(graph.edge_u[e]), int(graph.edge_v[e])
        adj[u][e] = None
        adj[w][e] = None

    cur = int(graph.edge_u[0]) if start is None else int(start)
    out_v = [cur]
    out_e: list[int] = []
    for _ in range(m):
        candidates = list(adj[cur])
        if not candidates:
            break
        chosen = candidates[0]
        if len(candidates) > 1:
            for e in candidates:
                if not is_bridge(cur, e):
                    chosen = e
                    break
        _remove(chosen)
        cur = other(chosen, cur)
        out_e.append(chosen)
        out_v.append(cur)
    return EulerCircuit(
        vertices=np.array(out_v, dtype=np.int64),
        edge_ids=np.array(out_e, dtype=np.int64),
    )
