"""Sequential Hierholzer algorithm — the paper's O(|E|) reference (§2.2).

The classical linear-time algorithm: walk from a source along unvisited
edges until returning; whenever the walk is stuck, splice in a new sub-tour
starting from a vertex on the current tour that still has unvisited edges.
We use the standard iterative stack formulation with a next-unvisited-edge
pointer per vertex, which emits the circuit in reverse and runs in
O(|V| + |E|) — the yardstick every distributed run is compared against.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotEulerianError
from ..graph.graph import Graph
from ..graph.properties import check_eulerian, euler_path_endpoints
from ..core.circuit import EulerCircuit

__all__ = ["hierholzer_circuit", "hierholzer_path"]


def hierholzer_circuit(
    graph: Graph, start: int | None = None, check_input: bool = True
) -> EulerCircuit:
    """Compute an Euler circuit sequentially in O(|V| + |E|).

    Parameters
    ----------
    graph:
        Connected Eulerian (multi)graph.
    start:
        Optional start vertex (defaults to the first edge's endpoint).
    check_input:
        Validate Eulerian-ness first (raises otherwise).
    """
    if check_input:
        check_eulerian(graph)
    m = graph.n_edges
    if m == 0:
        return EulerCircuit(np.empty(0, np.int64), np.empty(0, np.int64))
    if start is None:
        start = int(graph.edge_u[0])
    elif graph.degree(start) == 0:
        raise NotEulerianError(f"start vertex {start} has no edges")
    return _tour(graph, start)


def hierholzer_path(graph: Graph, check_input: bool = True) -> EulerCircuit:
    """Compute an Euler *path* for a graph with exactly two odd vertices.

    Uses the standard reduction: conceptually join the two odd vertices by a
    virtual edge, find the circuit, and cut it at the virtual edge. (We
    implement it directly by starting the tour at one odd vertex; Hierholzer
    then necessarily ends at the other.)
    """
    ends = euler_path_endpoints(graph)
    if ends is None:
        if check_input:
            check_eulerian(graph)  # raises with diagnostics if not Eulerian
        return hierholzer_circuit(graph, check_input=False)
    walk = _tour(graph, ends[0])
    return walk


def _tour(graph: Graph, start: int) -> EulerCircuit:
    """Iterative Hierholzer from ``start`` (circuit, or path if start is odd)."""
    offsets, targets, eids = graph.csr
    m = graph.n_edges
    visited = np.zeros(m, dtype=bool)
    ptr = offsets[:-1].copy()

    stack_v = [start]
    stack_e: list[int] = []  # edge taken to arrive at stack_v[i] (i >= 1)
    out_v: list[int] = []
    out_e: list[int] = []
    while stack_v:
        v = stack_v[-1]
        p = ptr[v]
        hi = offsets[v + 1]
        while p < hi and visited[eids[p]]:
            p += 1
        ptr[v] = p
        if p == hi:
            out_v.append(v)
            stack_v.pop()
            if stack_e:
                out_e.append(stack_e.pop())
        else:
            e = int(eids[p])
            visited[e] = True
            stack_v.append(int(targets[p]))
            stack_e.append(e)
    out_v.reverse()
    out_e.reverse()
    return EulerCircuit(
        vertices=np.array(out_v, dtype=np.int64),
        edge_ids=np.array(out_e, dtype=np.int64),
    )
