"""Makki's algorithm lifted to partition granularity (§2.2's remark).

The paper notes Makki's single-walk traversal "can even be extended to a
partition-centric one", but then "the number of barrier-synchronized
supersteps is equal to ... edge cuts between partitions" — still far above
``ceil(log2 n) + 1`` and with all but one machine idle. This module
implements that variant so the claim is measurable:

* the walk token lives in exactly one partition at a time;
* inside a partition the walk advances through *local* edges without any
  barrier (preferring local edges over remote ones — the natural
  partition-centric optimization);
* crossing a cut edge (forward or backtracking) costs one superstep.

Supersteps therefore total ≈ 2x the number of cut edges actually crossed,
against 2|E| for the vertex-centric version and ceil(log2 n)+1 for the
paper's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bsp.engine import BSPEngine, ComputeResult
from ..core.circuit import EulerCircuit
from ..graph.partition import PartitionedGraph
from ..graph.properties import check_eulerian

__all__ = ["MakkiPartitionStats", "makki_partition_circuit"]


@dataclass(frozen=True)
class MakkiPartitionStats:
    """Coordination counters of the partition-centric Makki run."""

    n_supersteps: int
    #: Cut-edge crossings (forward + backtrack) — each one a superstep.
    n_crossings: int
    #: Undirected cut edges in the partitioning (the paper's bound).
    n_cut_edges: int


def makki_partition_circuit(
    pg: PartitionedGraph, check_input: bool = True
) -> tuple[EulerCircuit, MakkiPartitionStats]:
    """Run the partition-centric Makki walk; returns circuit + stats."""
    graph = pg.graph
    if check_input:
        check_eulerian(graph)
    m = graph.n_edges
    if m == 0:
        return (
            EulerCircuit(np.empty(0, np.int64), np.empty(0, np.int64)),
            MakkiPartitionStats(0, 0, pg.n_cut_edges),
        )

    offsets, targets, eids = graph.csr
    part_of = pg.part_of
    visited = np.zeros(m, dtype=bool)
    # Per-vertex pointer over a local-edges-first ordering of incident edges.
    order: list[np.ndarray] = []
    for v in range(graph.n_vertices):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        idx = np.arange(lo, hi)
        is_local = part_of[targets[idx]] == part_of[v]
        order.append(np.concatenate([idx[is_local], idx[~is_local]]))
    ptr = np.zeros(graph.n_vertices, dtype=np.int64)
    arrivals: list[list[int]] = [[] for _ in range(graph.n_vertices)]

    start = int(graph.edge_u[0])
    out_v_rev: list[int] = []
    out_e_rev: list[int] = []
    crossings = 0

    def walk_locally(v: int) -> ComputeResult:
        """Advance the walk inside v's partition until a cut edge or done."""
        nonlocal crossings
        cur = v
        while True:
            # Take the next unvisited incident edge, local edges first.
            idx = order[cur]
            p = int(ptr[cur])
            while p < idx.size and visited[eids[idx[p]]]:
                p += 1
            ptr[cur] = p
            if p < idx.size:
                i = idx[p]
                e = int(eids[i])
                nxt = int(targets[i])
                visited[e] = True
                arrivals[nxt].append(e)
                if part_of[nxt] != part_of[cur]:
                    crossings += 1
                    return ComputeResult(
                        state=True, outgoing={int(part_of[nxt]): [("fwd", nxt)]}
                    )
                cur = nxt
                continue
            # Stuck: emit and backtrack.
            if arrivals[cur]:
                e = arrivals[cur].pop()
                u, w = int(graph.edge_u[e]), int(graph.edge_v[e])
                prev = w if cur == u else u
                out_v_rev.append(cur)
                out_e_rev.append(e)
                if part_of[prev] != part_of[cur]:
                    crossings += 1
                    return ComputeResult(
                        state=True, outgoing={int(part_of[prev]): [("back", prev)]}
                    )
                cur = prev
                continue
            out_v_rev.append(cur)  # back at the start; tour complete
            return ComputeResult(state=True)

    def compute(pid, state, messages, rec, superstep):
        if superstep == 0 and pid == int(part_of[start]) and not messages:
            return walk_locally(start)
        if messages:
            _kind, v = messages[0]
            return walk_locally(int(v))
        return ComputeResult(state=True)

    engine = BSPEngine()
    _, stats = engine.run(
        {pid: None for pid in range(pg.n_parts)},
        compute,
        max_supersteps=4 * m + 8,
    )
    circuit = EulerCircuit(
        vertices=np.array(out_v_rev[::-1], dtype=np.int64),
        edge_ids=np.array(out_e_rev[::-1], dtype=np.int64),
    )
    return circuit, MakkiPartitionStats(
        n_supersteps=stats.n_supersteps,
        n_crossings=crossings,
        n_cut_edges=pg.n_cut_edges,
    )
