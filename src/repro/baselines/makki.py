"""Makki's distributed Euler-tour baseline [17] (vertex-centric, §2.2).

Makki extends a centralized algorithm to an iterative distributed one:
*"at every step, we traverse from a single active vertex along one of its
unvisited out-edges"*, backtracking to build a single walk instead of
merging edge-disjoint cycles later. The properties the paper holds against
it — and that this implementation reproduces measurably — are:

* **one active vertex per superstep** (all other machines idle), and
* **O(|E|) barrier-synchronized supersteps** (one edge traversal or one
  backtrack hop each), versus the partition-centric ``ceil(log2 n) + 1``.

We realize it as a vertex program on :class:`VertexBSPEngine`: the walk
token moves one hop per superstep; each vertex keeps its next-unvisited-edge
pointer and a local stack of arrival edges, so a stuck token backtracks one
hop per superstep, emitting the circuit in reverse exactly like iterative
Hierholzer. Total supersteps = 2|E| (every edge is walked once and
backtracked once).
"""

from __future__ import annotations

import numpy as np

from ..bsp.vertex_engine import VertexBSPEngine, VertexComputeResult, VertexRunStats
from ..core.circuit import EulerCircuit
from ..graph.graph import Graph
from ..graph.properties import check_eulerian

__all__ = ["makki_circuit"]

_TOKEN_FWD = 0  # token arrives along an edge just traversed
_TOKEN_BACK = 1  # token arrives backtracking


def makki_circuit(
    graph: Graph, start: int | None = None, check_input: bool = True
) -> tuple[EulerCircuit, VertexRunStats]:
    """Run the Makki-style vertex-centric tour; returns circuit + BSP stats.

    ``stats.n_supersteps`` is the coordination cost (≈ 2|E|) and
    ``stats.mean_active`` the utilization (≈ 1 active vertex per superstep)
    that the baseline benchmark compares against the partition-centric run.
    """
    if check_input:
        check_eulerian(graph)
    m = graph.n_edges
    if m == 0:
        return (
            EulerCircuit(np.empty(0, np.int64), np.empty(0, np.int64)),
            VertexRunStats(),
        )
    offsets, targets, eids = graph.csr
    visited = np.zeros(m, dtype=bool)
    start = int(graph.edge_u[0]) if start is None else int(start)

    # Circuit emitted on backtrack (reverse order), collected centrally —
    # the coordinator role Makki's model also needs for output assembly.
    out_e_rev: list[int] = []
    out_v_rev: list[int] = []

    def compute(v: int, value, messages, superstep) -> VertexComputeResult:
        if value is None:
            value = {"ptr": int(offsets[v]), "arrivals": []}
        if superstep == 0 and not messages:
            messages = [(_TOKEN_FWD, -1)]  # bootstrap token at the start vertex
        if not messages:
            return VertexComputeResult(value=value, halt=True)
        kind, via = messages[0]
        if kind == _TOKEN_FWD and via >= 0:
            value["arrivals"].append(via)
        # Advance the next-unvisited pointer.
        p = value["ptr"]
        hi = int(offsets[v + 1])
        while p < hi and visited[eids[p]]:
            p += 1
        value["ptr"] = p
        if p < hi:
            e = int(eids[p])
            visited[e] = True
            nxt = int(targets[p])
            return VertexComputeResult(
                value=value, outgoing={nxt: [(_TOKEN_FWD, e)]}, halt=True
            )
        # Stuck: emit this vertex (reverse order) and backtrack along the
        # most recent arrival edge — one hop per superstep.
        if value["arrivals"]:
            e = value["arrivals"].pop()
            u, w = int(graph.edge_u[e]), int(graph.edge_v[e])
            prev = w if v == u else u
            out_v_rev.append(v)
            out_e_rev.append(e)
            return VertexComputeResult(
                value=value, outgoing={prev: [(_TOKEN_BACK, e)]}, halt=True
            )
        # Back at the start with nothing left: the tour is complete.
        out_v_rev.append(v)
        return VertexComputeResult(value=value, halt=True)

    engine = VertexBSPEngine(graph.n_vertices)
    _, stats = engine.run({}, compute, initial_active=[start], max_supersteps=4 * m + 8)
    circuit = EulerCircuit(
        vertices=np.array(out_v_rev[::-1], dtype=np.int64),
        edge_ids=np.array(out_e_rev[::-1], dtype=np.int64),
    )
    return circuit, stats
