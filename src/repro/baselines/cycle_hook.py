"""PRAM-style Euler circuit: cycle decomposition + hooking (§2.2's [15,16]).

Atallah & Vishkin and Awerbuch-Israeli-Shiloach find Euler circuits in
O(log |V|) PRAM time by (a) locally pairing the edge *endpoints* at every
vertex — any pairing decomposes the edge set into edge-disjoint closed
trails, because degrees are even — and (b) *hooking*: wherever two distinct
trails share a vertex, swapping the two pairings merges them, so a spanning
set of swaps (found with union-find / connectivity) leaves one trail.

This module implements that approach faithfully in its data-parallel
structure (bulk endpoint pairing, orbit labeling, union-find hooking, final
orbit walk) but sequentially — exactly the sense in which the paper calls
PRAM algorithms "limited to theoretical use": the algorithmic skeleton is
sound and linear-ish, yet there is no practical machine whose free shared
memory realizes the O(log |V|) bound. It serves as a second parallel
baseline for the benchmark suite, with its round-structure statistics
exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.circuit import EulerCircuit
from ..graph.graph import Graph
from ..graph.properties import check_eulerian

__all__ = ["CycleHookStats", "cycle_hook_circuit"]


@dataclass(frozen=True)
class CycleHookStats:
    """Structure counters of the cycle-decomposition + hooking run."""

    #: Edge-disjoint trails after local pairing (before any hooking).
    n_initial_trails: int
    #: Pairing swaps performed to merge everything into one trail.
    n_hooks: int


def cycle_hook_circuit(
    graph: Graph, check_input: bool = True
) -> tuple[EulerCircuit, CycleHookStats]:
    """Find an Euler circuit by endpoint pairing + trail hooking.

    Parameters
    ----------
    graph:
        Connected Eulerian (multi)graph.
    check_input:
        Validate the input first (raises NotEulerianError otherwise).

    Returns
    -------
    (circuit, stats):
        The circuit plus the decomposition statistics (how many trails the
        local phase produced and how many hooks merged them).
    """
    if check_input:
        check_eulerian(graph)
    m = graph.n_edges
    if m == 0:
        return (
            EulerCircuit(np.empty(0, np.int64), np.empty(0, np.int64)),
            CycleHookStats(0, 0),
        )

    # Endpoint k of edge e is encoded as 2*e + k, where endpoint 0 sits at
    # edge_u[e] and endpoint 1 at edge_v[e]. `mate` is the pairing at each
    # vertex: entering an edge-endpoint leaves through its mate.
    offsets, _targets, eids = graph.csr
    # CSR gives, per vertex, its incident half-edges; recover which endpoint
    # of the undirected edge sits at this vertex.
    seen_once = np.zeros(m, dtype=bool)
    mate = np.empty(2 * m, dtype=np.int64)
    ep_vertex = np.empty(2 * m, dtype=np.int64)
    for v in range(graph.n_vertices):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        eps = []
        for i in range(lo, hi):
            e = int(eids[i])
            u, w = int(graph.edge_u[e]), int(graph.edge_v[e])
            if u == w:  # self loop: both endpoints at v, CSR lists it twice
                k = 0 if not seen_once[e] else 1
                seen_once[e] = True if k == 0 else seen_once[e]
            else:
                k = 0 if u == v else 1
            eps.append(2 * e + k)
        # Degrees are even, so the incident endpoints pair up exactly.
        for a, b in zip(eps[0::2], eps[1::2]):
            mate[a] = b
            mate[b] = a
            ep_vertex[a] = v
            ep_vertex[b] = v

    # The trail permutation: from endpoint ep, cross the edge, then follow
    # the mate pairing at the far side: succ(ep) = mate[ep ^ 1].
    succ = mate[np.arange(2 * m, dtype=np.int64) ^ 1]

    # --- orbit labeling: which trail does each endpoint belong to? --------
    # Each undirected closed trail appears as *two* orbits of ``succ`` (its
    # two traversal directions); the mirror map ep -> ep^1 conjugates succ
    # to its inverse. We label orbits, then unify each orbit with its mirror
    # so classes identify undirected trails.
    trail = np.full(2 * m, -1, dtype=np.int64)
    n_orbits = 0
    for start in range(2 * m):
        if trail[start] != -1:
            continue
        ep = start
        while trail[ep] == -1:
            trail[ep] = n_orbits
            ep = int(succ[ep])
        n_orbits += 1

    parent = list(range(n_orbits))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in range(m):  # unify the two direction-orbits of each trail
        ra, rb = find(int(trail[2 * e])), find(int(trail[2 * e + 1]))
        if ra != rb:
            parent[rb] = ra
    n_initial = len({find(t) for t in range(n_orbits)})

    # --- hooking: merge trails sharing a vertex via pairing swaps ---------
    # Chaining consecutive endpoint pairs at each vertex merges every trail
    # class present there in O(deg) union-finds; each accepted hook swaps
    # the two pairings, splicing the two trails into one.
    n_hooks = 0
    by_vertex: dict[int, list[int]] = {}
    for ep in range(2 * m):
        by_vertex.setdefault(int(ep_vertex[ep]), []).append(ep)
    for v, eps in by_vertex.items():
        for a, b in zip(eps[:-1], eps[1:]):
            ra, rb = find(int(trail[a])), find(int(trail[b]))
            if ra == rb:
                continue
            # Swap the pairing: (a, mate[a]), (b, mate[b]) ->
            # (a, mate[b]), (b, mate[a]). This splices the two trails.
            ma, mb = int(mate[a]), int(mate[b])
            mate[a], mate[mb] = mb, a
            mate[b], mate[ma] = ma, b
            parent[rb] = ra
            n_hooks += 1

    # --- final walk along the (now single-trail) permutation --------------
    succ = mate[np.arange(2 * m, dtype=np.int64) ^ 1]
    start = 0
    out_v = [int(ep_vertex[start])]
    out_e: list[int] = []
    ep = start
    for _ in range(m):
        out_e.append(ep >> 1)
        ep_other = ep ^ 1
        out_v.append(int(ep_vertex[ep_other]))
        ep = int(succ[ep])
    circuit = EulerCircuit(
        vertices=np.array(out_v, dtype=np.int64),
        edge_ids=np.array(out_e, dtype=np.int64),
    )
    return circuit, CycleHookStats(n_initial_trails=n_initial, n_hooks=n_hooks)
