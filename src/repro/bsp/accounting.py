"""Cost accounting for BSP runs — the quantities the paper's §4.3 reports.

Three cost families, mirroring the paper's complexity measures (§3.5) and
its experimental breakdowns (Figs. 5–9):

* **coordination** — number of barrier-synchronized supersteps;
* **computation** — per-partition wall time, split into the categories of
  Fig. 6 (``create_partition``, ``copy_source``, ``copy_sink``,
  ``phase1_tour``);
* **communication & memory** — Longs (8-byte words) transferred between
  partitions and Longs of retained partition state per level, the
  platform-independent unit of §4.3 ("we report the number of Int64 values
  ... compared to reporting the raw GB of RAM").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = [
    "CAT_CREATE",
    "CAT_COPY_SRC",
    "CAT_COPY_SINK",
    "CAT_PHASE1",
    "PartitionStepRecord",
    "RunStats",
]

#: Fig. 6 category: building the partition object (adjacency, indices).
CAT_CREATE = "create_partition"
#: Fig. 6 category: serializing a child partition being shipped to its parent.
CAT_COPY_SRC = "copy_source"
#: Fig. 6 category: deserializing/absorbing a child at the parent.
CAT_COPY_SINK = "copy_sink"
#: Fig. 6 category: the Phase-1 traversal itself.
CAT_PHASE1 = "phase1_tour"


@dataclass
class PartitionStepRecord:
    """Everything measured for one partition in one superstep (= one level)."""

    pid: int
    superstep: int
    #: Wall seconds by category (Fig. 6 stacking).
    timings: dict[str, float] = field(default_factory=dict)
    #: Longs of in-memory state retained *after* this superstep (Fig. 8).
    state_longs: int = 0
    #: Longs shipped to another partition at the end of this superstep.
    sent_longs: int = 0
    #: Census of live vertices/edges for Fig. 9: keys ``n_internal``,
    #: ``n_eb``, ``n_ob``, ``n_remote_half_edges``, ``n_local_edges``.
    census: dict[str, int] = field(default_factory=dict)

    def add_time(self, category: str, seconds: float) -> None:
        """Accumulate wall time under a Fig. 6 category."""
        self.timings[category] = self.timings.get(category, 0.0) + seconds

    @property
    def compute_seconds(self) -> float:
        """Total user-compute seconds across categories."""
        return sum(self.timings.values())


@dataclass
class RunStats:
    """Aggregated statistics for a whole BSP run.

    ``records[s]`` holds the :class:`PartitionStepRecord` of every partition
    active in superstep ``s``; ``superstep_wall`` is the barrier-to-barrier
    wall time (compute + engine overhead), whose sum is the Fig. 5 "Total
    Time" while the record sums are its "Compute Time".
    """

    records: list[list[PartitionStepRecord]] = field(default_factory=list)
    superstep_wall: list[float] = field(default_factory=list)
    #: Wall seconds spent outside compute (scheduling, delivery, barrier).
    platform_overhead: float = 0.0

    @property
    def n_supersteps(self) -> int:
        """Coordination cost — the paper expects ``ceil(log2 n) + 1``."""
        return len(self.records)

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time (Fig. 5 blue line)."""
        return sum(self.superstep_wall)

    @property
    def compute_seconds(self) -> float:
        """Sum of user-compute time across partitions (Fig. 5 red line)."""
        return sum(r.compute_seconds for step in self.records for r in step)

    def time_split(self) -> dict[str, float]:
        """Total seconds per Fig. 6 category across the whole run."""
        out: dict[str, float] = defaultdict(float)
        for step in self.records:
            for rec in step:
                for cat, sec in rec.timings.items():
                    out[cat] += sec
        return dict(out)

    def state_by_level(self) -> list[dict]:
        """Fig. 8 series: per superstep, cumulative / average / max state Longs."""
        out = []
        for s, step in enumerate(self.records):
            active = [r for r in step if r.census or r.state_longs]
            longs = [r.state_longs for r in active]
            out.append(
                {
                    "level": s,
                    "n_partitions": len(active),
                    "cumulative_longs": int(sum(longs)),
                    "avg_longs": (sum(longs) / len(longs)) if longs else 0.0,
                    "max_longs": max(longs) if longs else 0,
                }
            )
        return out

    def census_table(self) -> list[dict]:
        """Fig. 9 rows: one dict per (level, partition) with the vertex/edge census."""
        rows = []
        for s, step in enumerate(self.records):
            for rec in step:
                if not rec.census:
                    continue
                row = {"level": s, "pid": rec.pid}
                row.update(rec.census)
                rows.append(row)
        return rows
