"""Shared-memory data plane: segments, descriptors, and cancel flags.

The process backends and the pre-forked serving dispatchers all need the
same primitive: hand a block of packed ``int64`` arrays to another process
*without* serializing it through a pipe. POSIX shared memory
(:mod:`multiprocessing.shared_memory`) provides exactly that — a named
segment both sides map — and this module wraps it with the three protocols
the pipeline uses:

``ShmBlob``
    One pickled object whose array buffers live out-of-band in a segment
    (pickle protocol 5 ``buffer_callback``). The *descriptor* — segment
    name, meta-pickle, ``(offset, nbytes)`` spans — crosses the pipe; the
    consumer attaches and reconstructs zero-copy NumPy views over the
    mapped pages. This is the superstep state transport
    (:class:`~repro.pipeline.program.SuperstepProgram` with
    ``transport="shm"``).

``SharedSegmentStore``
    A keyed, refcount-audited publisher of long-lived segments: catalog
    graph arrays and shared-pool program payloads. Publish is idempotent
    per key; descriptors are ``(segment_name, offset, shape, dtype)``
    tuples a worker turns back into arrays with :func:`attach_arrays`.

``CancelFlags``
    A tiny ``int64`` flag array for the pre-forked dispatchers — the
    parent sets slot ``i`` to cancel the job running in worker ``i``; the
    worker polls it at superstep boundaries.

Ownership protocol (what makes the leak check pass):

* every constructor — create *and* attach — immediately unregisters the
  segment from the stdlib resource tracker (bpo-38119: the tracker
  registers on both sides and would otherwise double-unlink or warn);
  lifetime is managed here, never by the tracker;
* the *creator* unlinks: stores on :meth:`SharedSegmentStore.close` (with
  an ``atexit`` guard), message blobs via :meth:`ShmBlob.dispose` by the
  consumer that merged them, plus a parent-side janitor
  (:func:`cleanup_token`) that sweeps a run's remaining message segments
  by name prefix when the run ends — normally, cancelled, or crashed;
* unlink is idempotent (missing segments are ignored), and consumers
  never ``close()`` a mapping that still backs live array views — the
  mapping is released when the last view is garbage-collected.

Every segment name starts with :data:`SEGMENT_PREFIX`, so
``ls /dev/shm/repro_*`` (see :func:`leaked_segments`) is the whole leak
audit.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from pathlib import Path

import numpy as np

from ..obs import ambient

__all__ = [
    "SEGMENT_PREFIX",
    "shm_available",
    "ShmBlob",
    "ship",
    "SharedSegmentStore",
    "attach_arrays",
    "CancelFlags",
    "HeartbeatSlots",
    "cleanup_token",
    "unlink_segment",
    "leaked_segments",
    "segment_creator_pid",
    "sweep_stale_segments",
]

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _resource_tracker = None
    _shared_memory = None

#: Every segment this package creates is named ``repro_...`` so a single
#: ``/dev/shm`` glob audits for leaks.
SEGMENT_PREFIX = "repro_"

_SHM_DIR = Path("/dev/shm")
_counter = iter(range(1 << 62))
_counter_lock = threading.Lock()


def shm_available() -> bool:
    """Whether POSIX shared memory is usable on this host."""
    return _shared_memory is not None and hasattr(_shared_memory, "SharedMemory")


_tracker_filtered = False
_tracker_lock = threading.Lock()


def _install_tracker_filter() -> None:
    """Opt ``repro_*`` segments out of the stdlib resource tracker, once.

    The tracker registers segments on create *and* attach (bpo-38119); with
    several processes mapping one segment, register/unregister pairs
    interleave at the single shared tracker and the cache set under-counts —
    the tracker then either double-unlinks or warns. Python 3.13 grew
    ``SharedMemory(track=False)`` for exactly this; on 3.11 the equivalent
    is filtering our prefix out of ``register`` before the first segment is
    constructed. Lifetime is managed entirely by this module (explicit
    unlink + janitor sweeps), never by the tracker.
    """
    global _tracker_filtered
    if _resource_tracker is None or _tracker_filtered:
        return
    with _tracker_lock:
        if _tracker_filtered:
            return
        def _filtered(original):
            def call(name, rtype):
                if rtype == "shared_memory" and name.lstrip("/").startswith(
                    SEGMENT_PREFIX
                ):
                    return
                original(name, rtype)

            return call

        # unregister is filtered symmetrically: SharedMemory.unlink() calls
        # it unconditionally, and an unregister the tracker never saw a
        # register for prints a KeyError traceback in the tracker process.
        _resource_tracker.register = _filtered(_resource_tracker.register)
        _resource_tracker.unregister = _filtered(_resource_tracker.unregister)
        _tracker_filtered = True


def _next_name(tag: str) -> str:
    with _counter_lock:
        seq = next(_counter)
    return f"{SEGMENT_PREFIX}{tag}_{os.getpid():x}_{seq:x}"


def _create_segment(nbytes: int, tag: str):
    """A fresh named segment (creator-side mapping, tracker-untracked)."""
    _install_tracker_filter()
    while True:
        name = _next_name(tag)
        try:
            return _shared_memory.SharedMemory(name=name, create=True,
                                               size=max(1, nbytes))
        except FileExistsError:  # pragma: no cover - counter collision
            continue


def _attach_segment(name: str):
    _install_tracker_filter()
    return _shared_memory.SharedMemory(name=name)


class _QuietSharedMemory(
    _shared_memory.SharedMemory if _shared_memory is not None else object
):
    """A mapping whose teardown tolerates live exported views.

    The stdlib ``close()`` raises ``BufferError`` (from ``mmap.close``)
    while NumPy views still reference the pages — which is the *normal*
    state for a consumer mapping: the views own the lifetime, the wrapper
    does not. Swallowing the error lets the wrapper be garbage-collected
    silently; the pages are released when the last view dies.
    """

    def close(self):  # noqa: D102 - stdlib signature
        try:
            super().close()
        except BufferError:
            pass

    def __del__(self):
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def _adopt_consumer_mapping(shm) -> None:
    """Prepare an attached mapping to be outlived by its views.

    Closes the (now unneeded) file descriptor eagerly — the stdlib only
    closes it *after* the mmap close that raises when views are exported,
    so without this a long-lived server would leak one fd per message —
    and swaps in the noise-free teardown class.
    """
    fd = getattr(shm, "_fd", -1)
    if isinstance(fd, int) and fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover
            pass
        shm._fd = -1
    shm.__class__ = _QuietSharedMemory


def unlink_segment(name: str) -> bool:
    """Best-effort idempotent unlink of a segment by name.

    Returns ``True`` when a segment was actually removed. On Linux this is
    a plain unlink in ``/dev/shm``; elsewhere it attaches briefly to reach
    the POSIX unlink.
    """
    if _SHM_DIR.is_dir():
        try:
            (_SHM_DIR / name).unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:  # pragma: no cover - permissions etc.
            return False
    try:  # pragma: no cover - non-Linux POSIX fallback
        shm = _attach_segment(name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    finally:
        shm.close()
    return True


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live ``repro_*`` segments (the leak audit)."""
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in _SHM_DIR.glob(f"{prefix}*"))


def segment_creator_pid(name: str) -> int | None:
    """The pid baked into a ``repro_`` segment name, or ``None``.

    Every segment this package creates is named
    ``repro_<tag>_<pid:x>_<seq:x>`` (:func:`_next_name`), so the creating
    process is recoverable from the name alone — what the startup janitor
    needs to tell a stale segment from a live one.
    """
    if not name.startswith(SEGMENT_PREFIX):
        return None
    parts = name.rsplit("_", 2)
    if len(parts) != 3:
        return None
    try:
        return int(parts[1], 16)
    except ValueError:
        return None


def _pid_running(pid: int) -> bool:
    """Is a process with this pid alive (and not a zombie)?

    The janitor's liveness oracle. ``os.kill(pid, 0)`` alone has two
    failure modes this helper closes:

    * it *succeeds* for zombies — a creator that died unreaped would keep
      its segments pinned forever (a zombie has no address space; nothing
      can ever dispose them), so ``/proc/<pid>/stat`` state ``Z`` is
      treated as dead;
    * it raises ``PermissionError`` for live processes owned by another
      user — e.g. a :class:`~repro.jobs.remote.WorkerHost` started by a
      different parent/uid — which must be treated as *alive*, never
      swept.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    try:
        stat = open(f"/proc/{pid}/stat", "rb").read()
    except OSError:  # pragma: no cover - no procfs (non-Linux)
        return True
    # Field 3 is the state char; the comm field before it may contain
    # spaces/parens, so split from the *last* ')'.
    _, _, rest = stat.rpartition(b")")
    return rest.split()[:1] != [b"Z"]


def sweep_stale_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Janitor: unlink ``repro_`` segments whose creating process is dead.

    A SIGKILL'd server (or worker host) cannot run its cleanup handlers,
    so its catalog/flags/message segments stay in ``/dev/shm`` forever.
    This sweep — run at serve start — removes exactly those: segments
    whose embedded creator pid (:func:`segment_creator_pid`, baked into
    every segment name at creation) no longer runs. Liveness is judged by
    :func:`_pid_running`, which counts foreign live processes — worker
    hosts launched by a different parent, even a different user — as
    alive and unreaped zombies as dead, so concurrent servers and
    independently-started hosts on one machine are safe from each other.
    Returns the names actually removed.
    """
    swept = []
    for name in leaked_segments(prefix):
        pid = segment_creator_pid(name)
        if pid is None or pid == os.getpid():
            continue
        if _pid_running(pid):
            continue  # creator is alive: not stale
        if unlink_segment(name):
            swept.append(name)
    return swept


def cleanup_token(token: str) -> int:
    """Janitor: unlink every message segment of one run (by name prefix).

    Message segments are normally disposed by the consumer that merged
    them; a run that aborts at a superstep boundary (cancel, deadline,
    worker crash) leaves its undelivered messages behind. The runner calls
    this in a ``finally`` with the run's unique token, so leaks are
    impossible regardless of how the run ended. Returns the number of
    segments removed.
    """
    removed = 0
    for name in leaked_segments(f"{SEGMENT_PREFIX}m{token}_"):
        if unlink_segment(name):
            removed += 1
    return removed


# ---------------------------------------------------------------------------
# Message transport: one pickled object, buffers out-of-band in a segment
# ---------------------------------------------------------------------------


class ShmBlob:
    """Descriptor of one shipped object: meta-pickle + buffer spans.

    The descriptor itself is small and picklable — it is what actually
    crosses the executor pipe. ``load()`` attaches the segment and
    reconstructs the object with zero-copy views over the mapped pages;
    ``dispose()`` unlinks the segment (idempotent). The consumer disposes
    after it has *merged* the state (every array
    :func:`repro.core.merging.merge_states` returns is a fresh copy, so no
    view outlives the merge); the mapping itself is released when the last
    view is garbage-collected.
    """

    __slots__ = ("name", "meta", "spans", "nbytes")

    def __init__(self, name: str, meta: bytes, spans: list, nbytes: int):
        self.name = name
        self.meta = meta
        self.spans = spans
        self.nbytes = nbytes

    def __getstate__(self):
        return (self.name, self.meta, self.spans, self.nbytes)

    def __setstate__(self, state):
        self.name, self.meta, self.spans, self.nbytes = state

    def load(self):
        """Attach and rebuild the object (views share the segment pages)."""
        shm = _attach_segment(self.name)
        buf = shm.buf
        views = [buf[off:off + n] for off, n in self.spans]
        obj = pickle.loads(self.meta, buffers=views)
        _adopt_consumer_mapping(shm)
        return obj

    def dispose(self) -> bool:
        """Unlink the backing segment (idempotent, safe to call twice)."""
        return unlink_segment(self.name)


def ship(obj, token: str = "") -> "ShmBlob | bytes":
    """Serialize ``obj`` with its array buffers placed in a fresh segment.

    Pickle protocol 5 externalizes every contiguous buffer through
    ``buffer_callback``; the buffers are copied once, C-speed, into one
    segment and the tiny meta-pickle rides in the returned descriptor.
    Objects with no out-of-band buffers — and any segment-creation failure
    — fall back to plain pickle bytes, which the receive side accepts
    interchangeably (the portable fallback the transport contract
    promises).
    """
    buffers: list = []
    meta = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        return meta
    raws = [b.raw() for b in buffers]
    total = sum(r.nbytes for r in raws)
    try:
        shm = _create_segment(total, f"m{token}")
    except Exception:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    spans = []
    off = 0
    buf = shm.buf
    for r in raws:
        n = r.nbytes
        buf[off:off + n] = r
        spans.append((off, n))
        off += n
    blob = ShmBlob(shm.name, meta, spans, total)
    del buf, raws, buffers
    # The creator's mapping is no longer needed — the descriptor carries
    # everything the consumer needs to attach by name.
    shm.close()
    return blob


# ---------------------------------------------------------------------------
# Keyed long-lived segments: catalog graphs, shared-pool program payloads
# ---------------------------------------------------------------------------


def _array_specs(arrays: dict) -> tuple[list, int]:
    specs = []
    off = 0
    for key, arr in arrays.items():
        a = np.ascontiguousarray(arr)
        specs.append((key, a, off, tuple(a.shape), a.dtype.str))
        off += a.nbytes
    return specs, off


def attach_arrays(descriptor: dict) -> dict:
    """Worker side: descriptor → named read-mapped arrays (zero-copy).

    The returned arrays are views over the mapped segment; the mapping
    stays alive exactly as long as any view does. Raises
    ``FileNotFoundError`` when the segment is gone (unpublished) — callers
    fall back to their durable source (catalog NPZ, raw payload bytes).
    """
    shm = _attach_segment(descriptor["segment"])
    buf = shm.buf
    out = {}
    for key, off, shape, dtype in descriptor["arrays"]:
        n = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        out[key] = np.frombuffer(buf[off:off + n], dtype=dtype).reshape(shape)
    _adopt_consumer_mapping(shm)
    return out


class SharedSegmentStore:
    """Publisher of content-keyed segments with guaranteed unlink on close.

    One store instance lives in the owning (parent) process; workers only
    ever see descriptors and attach by name. ``publish`` is idempotent per
    key; every descriptor handout counts as one attach for the ``/healthz``
    stats. ``close()`` unlinks everything and is also registered with
    ``atexit`` so an abandoned store cannot leak segments past process
    exit.
    """

    def __init__(self, tag: str = "seg"):
        self._tag = tag
        self._lock = threading.Lock()
        self._segments: dict = {}  # key -> {"shm", "descriptor", "nbytes"}
        self._attaches = 0
        self._closed = False
        atexit.register(self.close)

    def publish(self, key: str, arrays: dict) -> dict:
        """Place ``arrays`` (name → ndarray) in one segment keyed ``key``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedSegmentStore is closed")
            entry = self._segments.get(key)
            if entry is not None:
                return dict(entry["descriptor"])
            specs, total = _array_specs(arrays)
            shm = _create_segment(total, self._tag)
            buf = shm.buf
            desc_rows = []
            for name, a, off, shape, dtype in specs:
                buf[off:off + a.nbytes] = a.reshape(-1).view(np.uint8).data
                desc_rows.append((name, off, shape, dtype))
            del buf
            descriptor = {
                "segment": shm.name,
                "nbytes": total,
                "arrays": desc_rows,
            }
            self._segments[key] = {
                "shm": shm, "descriptor": descriptor, "nbytes": total,
            }
            return dict(descriptor)

    def publish_bytes(self, key: str, payload: bytes) -> dict:
        """Publish one opaque byte payload (e.g. a pickled program)."""
        return self.publish(key, {"payload": np.frombuffer(payload, np.uint8)})

    def descriptor(self, key: str) -> dict | None:
        """The key's descriptor (counted as one attach), or ``None``."""
        with self._lock:
            entry = self._segments.get(key)
            if entry is None:
                return None
            self._attaches += 1
        ambient().counter(
            "repro_shm_attaches_total",
            "Shared-segment descriptor handouts",
        ).inc()
        return dict(entry["descriptor"])

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._segments

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def unpublish(self, key: str) -> bool:
        with self._lock:
            entry = self._segments.pop(key, None)
        if entry is None:
            return False
        self._release(entry)
        return True

    def stats(self) -> dict:
        """Segment count, resident bytes, attach (descriptor handout) count."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "bytes": sum(e["nbytes"] for e in self._segments.values()),
                "attaches": self._attaches,
            }

    @staticmethod
    def _release(entry) -> None:
        shm = entry["shm"]
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - parent-side views alive
            pass

    def close(self) -> None:
        """Unlink every published segment (idempotent; atexit-guarded)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._segments.values())
            self._segments.clear()
        for entry in entries:
            self._release(entry)
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "SharedSegmentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Cancel flags for the pre-forked dispatchers
# ---------------------------------------------------------------------------


class CancelFlags:
    """An ``int64`` flag per dispatcher slot, shared parent ↔ workers.

    The parent (owner) creates and unlinks; workers attach by descriptor.
    Slot semantics mirror :class:`~repro.pipeline.cancel.CancelToken`:
    nonzero means "stop at your next safe point".
    """

    def __init__(self, shm, n: int, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n = n
        self._flags = np.frombuffer(shm.buf, dtype=np.int64, count=n)

    @classmethod
    def create(cls, n: int) -> "CancelFlags":
        if n < 1:
            raise ValueError("need at least one slot")
        shm = _create_segment(8 * n, "flags")
        flags = cls(shm, n, owner=True)
        flags._flags[:] = 0
        return flags

    @classmethod
    def attach(cls, descriptor: dict) -> "CancelFlags":
        shm = _attach_segment(descriptor["segment"])
        return cls(shm, int(descriptor["n"]), owner=False)

    @property
    def descriptor(self) -> dict:
        return {"segment": self._shm.name, "n": self.n}

    def set(self, slot: int) -> None:
        self._flags[slot] = 1

    def clear(self, slot: int) -> None:
        self._flags[slot] = 0

    def is_set(self, slot: int) -> bool:
        return bool(self._flags[slot])

    def close(self) -> None:
        """Owner: unlink; attacher: drop the mapping reference."""
        if self._flags is None:
            return
        self._flags = None
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass


class HeartbeatSlots:
    """One monotonic-nanosecond heartbeat per dispatcher slot.

    The liveness poll in the forked dispatcher pool can tell a *dead*
    worker (pipe EOF) from a healthy one, but not a *hung* one — a worker
    spinning in a wedged superstep holds its pipe open forever. Workers
    therefore stamp ``time.monotonic_ns()`` into their slot at every
    cancel-token poll (superstep and sub-run boundaries); the parent
    compares against its own monotonic clock (``CLOCK_MONOTONIC`` is
    system-wide on Linux) and declares a worker hung once the stamp goes
    stale past the hang timeout. Same ownership protocol as
    :class:`CancelFlags`: parent creates and unlinks, workers attach.
    """

    def __init__(self, shm, n: int, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n = n
        self._stamps = np.frombuffer(shm.buf, dtype=np.int64, count=n)

    @classmethod
    def create(cls, n: int) -> "HeartbeatSlots":
        if n < 1:
            raise ValueError("need at least one slot")
        shm = _create_segment(8 * n, "hb")
        slots = cls(shm, n, owner=True)
        slots._stamps[:] = 0
        return slots

    @classmethod
    def attach(cls, descriptor: dict) -> "HeartbeatSlots":
        shm = _attach_segment(descriptor["segment"])
        return cls(shm, int(descriptor["n"]), owner=False)

    @property
    def descriptor(self) -> dict:
        return {"segment": self._shm.name, "n": self.n}

    def beat(self, slot: int) -> None:
        """Stamp 'alive right now' into ``slot``."""
        self._stamps[slot] = time.monotonic_ns()

    def age_seconds(self, slot: int) -> float | None:
        """Seconds since the slot's last beat (``None``: never beaten)."""
        stamp = int(self._stamps[slot])
        if stamp == 0:
            return None
        return max(0.0, (time.monotonic_ns() - stamp) / 1e9)

    def close(self) -> None:
        """Owner: unlink; attacher: drop the mapping reference."""
        if self._stamps is None:
            return
        self._stamps = None
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass
