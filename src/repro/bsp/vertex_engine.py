"""Vertex-centric BSP engine — the Pregel model at vertex granularity.

Substrate for the Makki [17] baseline (§2.2): the algorithm keeps exactly one
*active vertex* per superstep and traverses one edge per superstep, which is
why its coordination cost is O(|E|) supersteps — the inefficiency the
partition-centric algorithm exists to fix. The engine is a thin, fast loop:
per superstep it runs the compute function only on vertices that received
messages or are still active, Pregel-style.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import BSPError
from .messages import MailRouter

__all__ = ["VertexComputeResult", "VertexBSPEngine", "VertexRunStats"]


@dataclass
class VertexComputeResult:
    """Per-vertex compute outcome: optional new value, messages, halt vote."""

    value: Any = None
    outgoing: dict[int, list] = field(default_factory=dict)
    halt: bool = True


@dataclass
class VertexRunStats:
    """Coordination/communication counters for a vertex-centric run."""

    n_supersteps: int = 0
    total_messages: int = 0
    #: Vertices executed per superstep; for Makki this is ~1, the paper's
    #: "all but one machine ... are idle" observation.
    active_per_superstep: list[int] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def mean_active(self) -> float:
        """Average number of active vertices per superstep."""
        if not self.active_per_superstep:
            return 0.0
        return sum(self.active_per_superstep) / len(self.active_per_superstep)


class VertexBSPEngine:
    """Superstep loop over vertex programs with bulk message delivery."""

    def __init__(self, n_vertices: int):
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self.n_vertices = n_vertices

    def run(
        self,
        values: dict[int, Any],
        compute: Callable[[int, Any, list, int], VertexComputeResult],
        initial_active: list[int],
        max_supersteps: int = 10_000_000,
    ) -> tuple[dict[int, Any], VertexRunStats]:
        """Run until all vertices halt and no messages are in flight."""
        router = MailRouter()
        stats = VertexRunStats()
        active = set(initial_active)
        t0 = time.perf_counter()
        for superstep in range(max_supersteps):
            runnable = sorted(active | set(router.destinations()))
            if not runnable:
                break
            stats.active_per_superstep.append(len(runnable))
            for v in runnable:
                if not (0 <= v < self.n_vertices):
                    raise BSPError(f"vertex id {v} out of range")
                res = compute(v, values.get(v), router.receive(v), superstep)
                if res.value is not None:
                    values[v] = res.value
                if res.halt:
                    active.discard(v)
                else:
                    active.add(v)
                for dst, msgs in res.outgoing.items():
                    router.send_many(dst, msgs)
            router.barrier()
            stats.n_supersteps += 1
            if not active and not router.has_current:
                break
        else:
            raise BSPError(f"no quiescence after {max_supersteps} supersteps")
        stats.total_messages = router.total_messages
        stats.wall_seconds = time.perf_counter() - t0
        return values, stats
