"""Partition-centric BSP engine (the Spark/Giraph substitute).

Executes a user compute function over every *active* partition each
superstep, delivers messages in bulk after a global barrier, and repeats
until every partition has voted to halt and no messages are in flight —
Pregel's termination rule lifted to partitions (§2.1 of the paper).

*Where* the per-partition compute runs is delegated to a pluggable executor
backend (:mod:`repro.bsp.executors`): ``serial`` (deterministic timings),
``thread`` (shared-memory pool) or ``process`` (real pickle round-trips, the
paper's distributed-machines analogue). Results are committed in pid order
under every backend, so the *outcome* of a run is backend-independent; only
the wall-clock interleaving changes.

Every superstep is timed barrier-to-barrier and per-partition compute time
is recorded separately, giving the Fig. 5 "total vs compute" split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from ..errors import BSPError
from .accounting import PartitionStepRecord, RunStats
from .executors import make_executor
from .messages import MailRouter

__all__ = ["ComputeResult", "BSPEngine"]


@dataclass
class ComputeResult:
    """What a partition's compute function returns each superstep.

    Attributes
    ----------
    state:
        The partition's new state (``None`` retires the partition for good —
        its pid no longer participates, messages to it raise).
    outgoing:
        Messages keyed by destination pid, delivered next superstep.
    halt:
        Vote to halt. A halted partition is re-activated when a message
        arrives for it; the run ends when all votes are halt and no message
        is in flight.
    payload:
        Program-defined side-band data (e.g. a fragment batch produced out
        of process) handed to the engine's ``on_commit`` hook; the engine
        itself never interprets it.
    """

    state: Any
    outgoing: Mapping[Hashable, list] = field(default_factory=dict)
    halt: bool = True
    payload: Any = None


#: Signature of the per-partition compute function:
#: ``compute(pid, state, messages, record, superstep) -> ComputeResult``.
ComputeFn = Callable[[Hashable, Any, list, PartitionStepRecord, int], ComputeResult]

#: Signature of the optional commit hook, called in pid order inside the
#: barrier: ``on_commit(pid, record, result, superstep)``.
CommitFn = Callable[[Hashable, PartitionStepRecord, ComputeResult, int], None]


class BSPEngine:
    """Superstep loop with barrier-synchronized bulk messaging."""

    def __init__(self, max_workers: int = 1, executor: str | Any | None = None,
                 transport=None, hosts=None):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.executor = executor
        #: Task-wire codec spec forwarded to the backend (see
        #: :data:`repro.bsp.transport.TRANSPORTS`); ``None`` = in-memory.
        self.transport = transport
        #: ``host:port`` specs for the ``remote`` backend; ignored otherwise.
        self.hosts = hosts

    def run(
        self,
        initial_states: Mapping[Hashable, Any],
        compute: ComputeFn,
        max_supersteps: int = 1000,
        on_commit: CommitFn | None = None,
        check_abort: Callable[[], None] | None = None,
    ) -> tuple[dict[Hashable, Any], RunStats]:
        """Run to quiescence; returns final states and :class:`RunStats`.

        ``on_commit`` runs in the engine (parent) process, in pid order,
        after each superstep's results are gathered — the single mutation
        point for shared structures (fragment stores, spill directories)
        that out-of-process compute cannot touch directly.

        ``check_abort`` (optional) runs in the engine process at the top of
        every superstep — the cooperative-cancellation checkpoint. It stops
        the run by raising; a superstep that has started always completes,
        so shared state stays consistent. Backend-independent: the loop
        lives here, not on the workers.

        Raises
        ------
        BSPError
            If ``max_supersteps`` elapses without quiescence (a guard against
            non-terminating algorithms) or a message targets a retired or
            unknown pid.
        """
        states: dict[Hashable, Any] = dict(initial_states)
        retired: set[Hashable] = set()
        router = MailRouter()
        stats = RunStats()
        active: set[Hashable] = set(states)
        backend = make_executor(self.executor, self.max_workers,
                                transport=self.transport, hosts=self.hosts)
        backend.start(compute)

        try:
            for superstep in range(max_supersteps):
                if check_abort is not None:
                    check_abort()
                runnable = sorted(active | set(router.destinations()))
                if not runnable:
                    return states, stats
                t_step = time.perf_counter()
                tasks = [
                    (pid, states.get(pid), router.receive(pid), superstep)
                    for pid in runnable
                ]
                triples = backend.run_superstep(tasks)

                # Commit in pid order for determinism regardless of backend.
                step_records: list[PartitionStepRecord] = []
                for pid, rec, res in sorted(triples, key=lambda t: str(t[0])):
                    if not isinstance(res, ComputeResult):
                        raise BSPError(
                            f"compute for pid {pid} returned {type(res).__name__}, "
                            "expected ComputeResult"
                        )
                    step_records.append(rec)
                    if res.state is None:
                        states.pop(pid, None)
                        retired.add(pid)
                        active.discard(pid)
                    else:
                        states[pid] = res.state
                        if res.halt:
                            active.discard(pid)
                        else:
                            active.add(pid)
                    for dst, msgs in res.outgoing.items():
                        if dst in retired:
                            raise BSPError(f"message sent to retired partition {dst}")
                        if dst not in states and dst not in initial_states:
                            raise BSPError(f"message sent to unknown partition {dst}")
                        router.send_many(dst, msgs)
                    if on_commit is not None:
                        on_commit(pid, rec, res, superstep)

                router.barrier()
                stats.records.append(step_records)
                wall = time.perf_counter() - t_step
                stats.superstep_wall.append(wall)
                stats.platform_overhead += max(
                    0.0, wall - sum(r.compute_seconds for r in step_records)
                )
                if not active and not router.has_current:
                    return states, stats
            raise BSPError(f"no quiescence after {max_supersteps} supersteps")
        finally:
            backend.close()
