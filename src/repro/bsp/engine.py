"""Partition-centric BSP engine (the Spark/Giraph substitute).

Executes a user compute function over every *active* partition each
superstep, delivers messages in bulk after a global barrier, and repeats
until every partition has voted to halt and no messages are in flight —
Pregel's termination rule lifted to partitions (§2.1 of the paper).

Determinism and measurement were the design drivers (per the HPC guides:
make it work, make it reliably measurable, then make it fast):

* with ``max_workers=1`` (default) partitions execute in ascending pid order
  on the calling thread — fully deterministic, no GIL noise in timings;
* with ``max_workers>1`` partitions run on a thread pool. Results are
  committed in pid order either way, so the *outcome* is identical; only the
  wall-clock interleaving changes. (Python threads model the paper's
  executor-per-partition Spark deployment; the algorithm itself only needs
  BSP semantics, not true parallel speedup, to reproduce the evaluation.)
* every superstep is timed barrier-to-barrier and per-partition compute time
  is recorded separately, giving the Fig. 5 "total vs compute" split.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

from ..errors import BSPError
from .accounting import PartitionStepRecord, RunStats
from .messages import MailRouter

__all__ = ["ComputeResult", "BSPEngine"]


@dataclass
class ComputeResult:
    """What a partition's compute function returns each superstep.

    Attributes
    ----------
    state:
        The partition's new state (``None`` retires the partition for good —
        its pid no longer participates, messages to it raise).
    outgoing:
        Messages keyed by destination pid, delivered next superstep.
    halt:
        Vote to halt. A halted partition is re-activated when a message
        arrives for it; the run ends when all votes are halt and no message
        is in flight.
    """

    state: Any
    outgoing: Mapping[Hashable, list] = field(default_factory=dict)
    halt: bool = True


#: Signature of the per-partition compute function:
#: ``compute(pid, state, messages, record, superstep) -> ComputeResult``.
ComputeFn = Callable[[Hashable, Any, list, PartitionStepRecord, int], ComputeResult]


class BSPEngine:
    """Superstep loop with barrier-synchronized bulk messaging."""

    def __init__(self, max_workers: int = 1):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(
        self,
        initial_states: Mapping[Hashable, Any],
        compute: ComputeFn,
        max_supersteps: int = 1000,
    ) -> tuple[dict[Hashable, Any], RunStats]:
        """Run to quiescence; returns final states and :class:`RunStats`.

        Raises
        ------
        BSPError
            If ``max_supersteps`` elapses without quiescence (a guard against
            non-terminating algorithms) or a message targets a retired or
            unknown pid.
        """
        states: dict[Hashable, Any] = dict(initial_states)
        retired: set[Hashable] = set()
        router = MailRouter()
        stats = RunStats()
        active: set[Hashable] = set(states)

        for superstep in range(max_supersteps):
            runnable = sorted(active | set(router.destinations()))
            if not runnable:
                return states, stats
            t_step = time.perf_counter()
            step_records: list[PartitionStepRecord] = []
            results: dict[Hashable, ComputeResult] = {}

            def _one(pid: Hashable) -> tuple[Hashable, PartitionStepRecord, ComputeResult]:
                rec = PartitionStepRecord(pid=pid, superstep=superstep)
                t0 = time.perf_counter()
                res = compute(pid, states.get(pid), router.receive(pid), rec, superstep)
                # Any un-categorized compute time is still visible in the
                # record so Fig. 5's compute line never under-counts.
                elapsed = time.perf_counter() - t0
                unaccounted = elapsed - rec.compute_seconds
                if unaccounted > 0:
                    rec.add_time("other", unaccounted)
                return pid, rec, res

            if self.max_workers == 1 or len(runnable) == 1:
                triples = [_one(pid) for pid in runnable]
            else:
                with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                    triples = list(pool.map(_one, runnable))

            # Commit in pid order for determinism regardless of worker count.
            for pid, rec, res in sorted(triples, key=lambda t: str(t[0])):
                if not isinstance(res, ComputeResult):
                    raise BSPError(
                        f"compute for pid {pid} returned {type(res).__name__}, "
                        "expected ComputeResult"
                    )
                step_records.append(rec)
                results[pid] = res
                if res.state is None:
                    states.pop(pid, None)
                    retired.add(pid)
                    active.discard(pid)
                else:
                    states[pid] = res.state
                    if res.halt:
                        active.discard(pid)
                    else:
                        active.add(pid)
                for dst, msgs in res.outgoing.items():
                    if dst in retired:
                        raise BSPError(f"message sent to retired partition {dst}")
                    if dst not in states and dst not in initial_states:
                        raise BSPError(f"message sent to unknown partition {dst}")
                    router.send_many(dst, msgs)

            router.barrier()
            stats.records.append(step_records)
            wall = time.perf_counter() - t_step
            stats.superstep_wall.append(wall)
            stats.platform_overhead += max(
                0.0, wall - sum(r.compute_seconds for r in step_records)
            )
            if not active and not router.has_current:
                return states, stats
        raise BSPError(f"no quiescence after {max_supersteps} supersteps")
