"""Pluggable superstep executors: serial, thread and process backends.

The BSP engine is parameterized by *where* each partition's compute runs
within a superstep; the barrier/commit logic stays in the engine. Three
interchangeable backends model increasingly truthful deployments of the
paper's Spark cluster:

``serial``
    Every partition runs on the calling thread in ascending pid order —
    fully deterministic, no GIL noise in timings. The default.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`. Partitions
    share one address space (states and messages cross by reference), the
    single-machine concurrency the seed shipped with.
``process``
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor` — the
    truthful analogue of the paper's one-executor-per-partition machines.
    The compute program is installed once per worker (the "static graph
    loaded on every machine" cost); each task round-trips ``(state,
    messages)`` through real pickling, so nothing can leak between
    partitions except through messages and the returned results. What
    crosses that boundary is columnar: partition states are packed int64
    arrays (held rows, CoarseTable, remote-degree table) and a returned
    :class:`~repro.core.pathmap.FragmentBatch` pickles all its fragment
    bodies as one concatenated ItemArray buffer plus a metadata table —
    a few raw buffers per task instead of per-element tuple encoding.

All backends produce ``(pid, record, result)`` triples that the engine
commits in pid order, so the *outcome* of a run is identical under every
backend; only wall-clock interleaving (and serialization cost) changes.
The executor-parity test in ``tests/bsp/test_executor_parity.py`` enforces
this end-to-end.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Hashable

from . import shm
from .accounting import PartitionStepRecord

__all__ = [
    "EXECUTORS",
    "SuperstepTask",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedPool",
    "make_executor",
    "resolve_executor_name",
]

#: One partition's work item for a superstep: ``(pid, state, messages,
#: superstep)``.
SuperstepTask = tuple

# The compute program installed in each worker process by
# :class:`ProcessExecutor`'s initializer (one pickle per worker, not per
# task — the analogue of a machine loading its partition of the graph once).
_WORKER_PROGRAM: Callable | None = None


def run_task(compute: Callable, task: SuperstepTask):
    """Execute one partition-superstep and return ``(pid, record, result)``.

    Creates the :class:`PartitionStepRecord` next to the compute call so the
    triple is self-contained (and picklable) regardless of backend. Any
    compute time the program did not categorize is still recorded, so the
    Fig. 5 compute line never under-counts.
    """
    pid, state, messages, superstep = task
    rec = PartitionStepRecord(pid=pid, superstep=superstep)
    t0 = time.perf_counter()
    res = compute(pid, state, messages, rec, superstep)
    unaccounted = (time.perf_counter() - t0) - rec.compute_seconds
    if unaccounted > 0:
        rec.add_time("other", unaccounted)
    return pid, rec, res


def _process_init(program: Callable) -> None:
    global _WORKER_PROGRAM
    _WORKER_PROGRAM = program


def _process_task(task: SuperstepTask):
    return run_task(_WORKER_PROGRAM, task)


class _Closable:
    """Context-manager protocol shared by every executor backend.

    A long-lived service must be able to scope worker pools with ``with``;
    ``close()`` is idempotent under every backend, so exiting the block is
    always safe even after an explicit close.
    """

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(_Closable):
    """Run every partition inline, in the order given (ascending pid)."""

    name = "serial"

    def __init__(self, max_workers: int = 1):
        self.max_workers = 1

    def start(self, compute: Callable) -> None:
        self._compute = compute

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        return [run_task(self._compute, t) for t in tasks]

    def close(self) -> None:
        pass


class ThreadExecutor(_Closable):
    """Run partitions on a persistent thread pool (shared address space)."""

    name = "thread"

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def start(self, compute: Callable) -> None:
        self._compute = compute
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        assert self._pool is not None, "start() must be called before supersteps"
        return list(self._pool.map(lambda t: run_task(self._compute, t), tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(_Closable):
    """Run partitions on a process pool with real pickle round-trips.

    Requires the compute program and everything flowing through it (states,
    messages, records, results) to be picklable — which is exactly what the
    paper's distributed setting requires of partition state, making this
    backend an honest single-machine stand-in for the cluster.
    """

    name = "process"

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None

    def start(self, compute: Callable) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_process_init,
            initargs=(compute,),
        )

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        assert self._pool is not None, "start() must be called before supersteps"
        return list(self._pool.map(_process_task, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# Shared, persistent pools (job-orchestration substrate)
# ---------------------------------------------------------------------------

# Worker-side cache of superstep programs keyed by content hash: a shared
# process pool serves many jobs, so each worker unpickles a given program at
# most once and reuses it for every later task of that job (and of any job
# re-running the same program). Bounded so a very long-lived worker cannot
# accumulate graphs forever.
_SHARED_PROGRAMS: dict[str, Callable] = {}
_SHARED_PROGRAM_CAP = 8


class ProgramSegmentGone(RuntimeError):
    """A worker found its program's shared segment already unlinked.

    Raised across the pool boundary so the parent can replay the superstep
    with the raw pickled payload — the portable fallback is always correct,
    the descriptor path is only an optimization.
    """


def _shared_process_task(arg):
    key, wire, task = arg
    prog = _SHARED_PROGRAMS.get(key)
    if prog is None:
        kind, body = wire
        if kind == "seg":
            try:
                views = shm.attach_arrays(body)
            except FileNotFoundError:
                raise ProgramSegmentGone(key) from None
            prog = pickle.loads(views["payload"])
            del views  # drops the adopted mapping with the last view
        else:
            prog = pickle.loads(body)
        while len(_SHARED_PROGRAMS) >= _SHARED_PROGRAM_CAP:
            _SHARED_PROGRAMS.pop(next(iter(_SHARED_PROGRAMS)))
        _SHARED_PROGRAMS[key] = prog
    return run_task(prog, task)


class _ThreadSession(_Closable):
    """One run's executor view over a shared thread pool (close is a no-op)."""

    def __init__(self, pool: "SharedPool"):
        self._pool = pool
        self.name = pool.name
        self.max_workers = pool.max_workers

    def start(self, compute: Callable) -> None:
        self._compute = compute

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        return self._pool._map_thread(self._compute, tasks)

    def close(self) -> None:  # the pool outlives the run; the owner closes it
        pass


class _ProcessSession(_Closable):
    """One run's executor view over a shared process pool.

    ``start`` pickles the superstep program once; every task ships ``(key,
    payload)`` and workers cache the unpickled program by content hash, so a
    warm worker pays one dict lookup per task instead of a per-job pool
    spawn plus per-worker initializer pickle.
    """

    def __init__(self, pool: "SharedPool"):
        self._pool = pool
        self.name = pool.name
        self.max_workers = pool.max_workers

    def start(self, compute: Callable) -> None:
        self._payload = pickle.dumps(compute, protocol=pickle.HIGHEST_PROTOCOL)
        self._key = hashlib.sha256(self._payload).hexdigest()[:16]
        self._pool._register_program(self._key, self._payload)

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        return self._pool._map_process(self._key, self._payload, tasks)

    def close(self) -> None:  # the pool outlives the run; the owner closes it
        pass


class SharedPool(_Closable):
    """A persistent worker pool multiplexed across many pipeline runs.

    The per-request execution path builds and tears down a pool inside every
    :func:`~repro.pipeline.run_pipeline` call; a long-lived service instead
    owns **one** ``SharedPool`` and hands each run a *session*
    (:meth:`session`) — an object satisfying the executor protocol whose
    ``close()`` is a no-op, so the engine's own lifecycle management cannot
    kill the shared workers. Only the owner's :meth:`close` (or the context
    manager) shuts the pool down. Sessions may be used concurrently from
    multiple dispatcher threads; both stdlib pools are thread-safe.
    """

    def __init__(self, kind: str = "thread", max_workers: int = 4):
        if kind not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {kind!r}; use 'thread' or 'process'")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.kind = kind
        self.max_workers = max_workers
        self.name = f"shared-{kind}"
        # Program payloads published once into shared memory so each task
        # ships a tiny (segment, offset, shape, dtype) descriptor instead of
        # the full pickled program. Lazily created on first registration;
        # bounded LRU — an evicted program transparently falls back to the
        # raw-payload wire (see ProgramSegmentGone).
        self._segstore: shm.SharedSegmentStore | None = None
        self._prog_order: list[str] = []
        self._seg_lock = threading.Lock()
        if kind == "thread":
            self._pool: Any = ThreadPoolExecutor(max_workers=max_workers)
        else:
            self._pool = ProcessPoolExecutor(max_workers=max_workers)

    @property
    def closed(self) -> bool:
        return self._pool is None

    def session(self):
        """A fresh executor-protocol adapter bound to this pool."""
        if self._pool is None:
            raise RuntimeError("SharedPool is closed")
        return _ThreadSession(self) if self.kind == "thread" else _ProcessSession(self)

    def _map_thread(self, compute: Callable, tasks: list[SuperstepTask]) -> list:
        if self._pool is None:
            raise RuntimeError("SharedPool is closed")
        return list(self._pool.map(lambda t: run_task(compute, t), tasks))

    def _register_program(self, key: str, payload: bytes) -> None:
        """Publish a program payload to shared memory (LRU, cap 8).

        No-op for thread pools or when POSIX shared memory is unavailable —
        the raw-payload wire stays fully functional without it.
        """
        if self.kind != "process" or not shm.shm_available():
            return
        with self._seg_lock:
            if self._segstore is None:
                self._segstore = shm.SharedSegmentStore(tag="prog")
            if key in self._segstore:
                self._prog_order.remove(key)
                self._prog_order.append(key)
                return
            self._segstore.publish_bytes(key, payload)
            self._prog_order.append(key)
            while len(self._prog_order) > _SHARED_PROGRAM_CAP:
                self._segstore.unpublish(self._prog_order.pop(0))

    def _program_wire(self, key: str, payload: bytes):
        """Per-superstep wire for a program: segment descriptor or raw bytes.

        Resolved fresh each superstep so a program evicted mid-job degrades
        to the raw payload instead of a dead descriptor.
        """
        with self._seg_lock:
            if self._segstore is not None and key in self._segstore:
                return ("seg", self._segstore.descriptor(key))
        return ("raw", payload)

    def _map_process(self, key: str, payload: bytes, tasks: list[SuperstepTask]) -> list:
        if self._pool is None:
            raise RuntimeError("SharedPool is closed")
        wire = self._program_wire(key, payload)
        try:
            return list(self._pool.map(_shared_process_task,
                                       [(key, wire, t) for t in tasks]))
        except ProgramSegmentGone:
            # Evicted between resolve and attach; replay on the raw wire.
            return list(self._pool.map(_shared_process_task,
                                       [(key, ("raw", payload), t) for t in tasks]))

    def segment_stats(self) -> dict:
        """Program segment-store stats (zeros when the store is idle)."""
        with self._seg_lock:
            if self._segstore is None:
                return {"segments": 0, "bytes": 0, "attaches": 0}
            return self._segstore.stats()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._seg_lock:
            if self._segstore is not None:
                self._segstore.close()
                self._segstore = None
                self._prog_order.clear()


#: Registry of executor backends selectable by name from
#: :func:`repro.core.driver.find_euler_circuit`, the CLI and the bench
#: harness.
EXECUTORS: dict[str, type] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def resolve_executor_name(executor: str | None, max_workers: int = 1) -> str:
    """The backend name a ``None``/string spec resolves to.

    ``None`` keeps the historical default: serial when ``max_workers == 1``,
    a thread pool otherwise. The single source of truth for that rule —
    run artifacts report executors through this resolution too.
    """
    if executor is None:
        return "serial" if max_workers <= 1 else "thread"
    return executor


def make_executor(executor: str | Any | None, max_workers: int = 1):
    """Resolve an executor spec into a backend instance.

    A string (or ``None``, via :func:`resolve_executor_name`) selects from
    :data:`EXECUTORS`; an object with ``start``/``run_superstep``/``close``
    is used as-is.
    """
    if executor is None or isinstance(executor, str):
        executor = resolve_executor_name(executor, max_workers)
        try:
            cls = EXECUTORS[executor]
        except KeyError:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {sorted(EXECUTORS)}"
            ) from None
        return cls(max_workers=max_workers)
    if all(hasattr(executor, a) for a in ("start", "run_superstep", "close")):
        return executor
    raise TypeError(f"not an executor: {executor!r}")
