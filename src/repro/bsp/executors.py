"""Pluggable superstep executors: serial, thread and process backends.

The BSP engine is parameterized by *where* each partition's compute runs
within a superstep; the barrier/commit logic stays in the engine. Three
interchangeable backends model increasingly truthful deployments of the
paper's Spark cluster:

``serial``
    Every partition runs on the calling thread in ascending pid order —
    fully deterministic, no GIL noise in timings. The default.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`. Partitions
    share one address space (states and messages cross by reference), the
    single-machine concurrency the seed shipped with.
``process``
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor` — the
    truthful analogue of the paper's one-executor-per-partition machines.
    The compute program is installed once per worker (the "static graph
    loaded on every machine" cost); each task round-trips ``(state,
    messages)`` through real pickling, so nothing can leak between
    partitions except through messages and the returned results. What
    crosses that boundary is columnar: partition states are packed int64
    arrays (held rows, CoarseTable, remote-degree table) and a returned
    :class:`~repro.core.pathmap.FragmentBatch` pickles all its fragment
    bodies as one concatenated ItemArray buffer plus a metadata table —
    a few raw buffers per task instead of per-element tuple encoding.

``remote``
    Partitions run on :class:`~repro.jobs.remote.WorkerHost` processes
    reached over TCP sockets — the paper's actual deployment shape. Tasks
    and result triples cross as length-prefixed binary frames
    (:mod:`repro.bsp.transport`) whose packed int64 columns ship raw,
    out-of-band of the meta pickle; the superstep program installs once
    per host (shared-memory descriptor when co-located, framed pickle
    otherwise) and partitions pin to hosts via
    :class:`~repro.bsp.transport.StaticPlacement`.

Orthogonal to *where* compute runs is *how* payloads move: the serial and
thread backends accept a ``transport`` codec
(:data:`repro.bsp.transport.TRANSPORTS`) that round-trips every task and
result triple through a real encode/decode, so wire-format parity can be
asserted without paying for a process pool.

All backends produce ``(pid, record, result)`` triples that the engine
commits in pid order, so the *outcome* of a run is identical under every
backend; only wall-clock interleaving (and serialization cost) changes.
The executor-parity test in ``tests/bsp/test_executor_parity.py`` enforces
this end-to-end.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Hashable

from ..errors import BSPError, TransientJobError, UnknownExecutorError
from . import shm
from . import transport as transport_mod

from .accounting import PartitionStepRecord

__all__ = [
    "EXECUTORS",
    "SuperstepTask",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "RemoteExecutor",
    "SharedPool",
    "make_executor",
    "resolve_executor_name",
]

#: One partition's work item for a superstep: ``(pid, state, messages,
#: superstep)``.
SuperstepTask = tuple

# The compute program installed in each worker process by
# :class:`ProcessExecutor`'s initializer (one pickle per worker, not per
# task — the analogue of a machine loading its partition of the graph once).
_WORKER_PROGRAM: Callable | None = None


def run_task(compute: Callable, task: SuperstepTask):
    """Execute one partition-superstep and return ``(pid, record, result)``.

    Creates the :class:`PartitionStepRecord` next to the compute call so the
    triple is self-contained (and picklable) regardless of backend. Any
    compute time the program did not categorize is still recorded, so the
    Fig. 5 compute line never under-counts.
    """
    pid, state, messages, superstep = task
    rec = PartitionStepRecord(pid=pid, superstep=superstep)
    t0 = time.perf_counter()
    res = compute(pid, state, messages, rec, superstep)
    unaccounted = (time.perf_counter() - t0) - rec.compute_seconds
    if unaccounted > 0:
        rec.add_time("other", unaccounted)
    return pid, rec, res


def _process_init(program: Callable) -> None:
    global _WORKER_PROGRAM
    _WORKER_PROGRAM = program


def _process_task(task: SuperstepTask):
    return run_task(_WORKER_PROGRAM, task)


class _Closable:
    """Context-manager protocol shared by every executor backend.

    A long-lived service must be able to scope worker pools with ``with``;
    ``close()`` is idempotent under every backend, so exiting the block is
    always safe even after an explicit close.
    """

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(_Closable):
    """Run every partition inline, in the order given (ascending pid).

    ``transport`` selects a task codec from
    :data:`repro.bsp.transport.TRANSPORTS`; every task and result triple is
    round-tripped through it, so ``SerialExecutor(transport="socket")`` is
    the remote wire format minus the network — the transport-matrix parity
    suite runs exactly this.
    """

    name = "serial"

    def __init__(self, max_workers: int = 1, transport=None):
        self.max_workers = 1
        self._transport = transport_mod.resolve_transport(transport)

    def start(self, compute: Callable) -> None:
        self._compute = compute

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        wire = self._transport
        return [wire.roundtrip(run_task(self._compute, wire.roundtrip(t)))
                for t in tasks]

    def close(self) -> None:
        self._transport.close()


class ThreadExecutor(_Closable):
    """Run partitions on a persistent thread pool (shared address space)."""

    name = "thread"

    def __init__(self, max_workers: int = 4, transport=None):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._transport = transport_mod.resolve_transport(transport)
        self._pool: ThreadPoolExecutor | None = None

    def start(self, compute: Callable) -> None:
        self._compute = compute
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        assert self._pool is not None, "start() must be called before supersteps"
        wire = self._transport
        return list(self._pool.map(
            lambda t: wire.roundtrip(run_task(self._compute, wire.roundtrip(t))),
            tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._transport.close()


class ProcessExecutor(_Closable):
    """Run partitions on a process pool with real pickle round-trips.

    Requires the compute program and everything flowing through it (states,
    messages, records, results) to be picklable — which is exactly what the
    paper's distributed setting requires of partition state, making this
    backend an honest single-machine stand-in for the cluster.
    """

    name = "process"

    def __init__(self, max_workers: int = 4, transport=None):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if transport not in (None, "pickle"):
            raise ValueError(
                "the process executor's pipe is already a pickle transport; "
                f"task transport {transport!r} is not supported on it"
            )
        self.max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None

    def start(self, compute: Callable) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_process_init,
            initargs=(compute,),
        )

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        assert self._pool is not None, "start() must be called before supersteps"
        return list(self._pool.map(_process_task, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class RemoteExecutor(_Closable):
    """Run partitions on remote :class:`~repro.jobs.remote.WorkerHost`\\ s.

    The paper's deployment made real: each superstep's tasks are pinned to
    hosts by :class:`~repro.bsp.transport.StaticPlacement` (a partition's
    state always lands on the same host), pipelined down one framed socket
    per host, and the ``(pid, record, result)`` triples come back as frames
    whose packed columns were never re-encoded.

    The superstep program installs once per host at :meth:`start` — as a
    shared-memory descriptor when the host is co-located on this machine
    (it attaches the segment instead of receiving bytes), falling back to
    the framed raw pickle when the host replies it cannot attach. A host
    that evicted the program mid-run answers ``need_install`` and the
    affected tasks are replayed after a raw re-install, mirroring
    :class:`SharedPool`'s ``ProgramSegmentGone`` fallback.

    A host that disconnects mid-superstep raises
    :class:`~repro.errors.TransientJobError`: partition state for its shard
    is lost, so the *run* cannot be salvaged — but the job level can and
    does retry on the surviving hosts (the coordinator's re-dispatch path).
    """

    name = "remote"

    def __init__(self, hosts, max_workers: int | None = None,
                 connect_timeout: float = 10.0, transport=None):
        addrs = transport_mod.parse_hosts(hosts)
        if not addrs:
            raise ValueError(
                "remote executor requires at least one worker host "
                "(hosts='host:port,...')"
            )
        if transport not in (None, "socket"):
            raise ValueError(
                "the remote executor always speaks the socket frame "
                f"transport; task transport {transport!r} is not supported"
            )
        self.hosts = addrs
        self.max_workers = len(addrs)
        self.connect_timeout = connect_timeout
        self.placement = transport_mod.StaticPlacement(len(addrs))
        self._conns: list[transport_mod.FrameConnection] = []
        self._pool: ThreadPoolExecutor | None = None
        self._segstore: shm.SharedSegmentStore | None = None
        self._key = ""
        self._payload = b""
        #: Scoped wire accounting for this executor's task frames.
        self.wire = transport_mod.WireStats(scope="remote_executor")

    def start(self, compute: Callable) -> None:
        self._payload = pickle.dumps(compute, protocol=pickle.HIGHEST_PROTOCOL)
        self._key = hashlib.sha256(self._payload).hexdigest()[:16]
        wire = ("raw", self._payload)
        if shm.shm_available():
            try:
                self._segstore = shm.SharedSegmentStore(tag="rprog")
                self._segstore.publish_bytes(self._key, self._payload)
                wire = ("seg", self._segstore.descriptor(self._key))
            except Exception:
                if self._segstore is not None:
                    self._segstore.close()
                    self._segstore = None
                wire = ("raw", self._payload)
        try:
            for addr in self.hosts:
                try:
                    conn = transport_mod.FrameConnection.open(
                        addr, self.connect_timeout, stats=self.wire)
                except OSError as exc:
                    raise TransientJobError(
                        f"cannot reach worker host {addr[0]}:{addr[1]}: {exc}"
                    ) from exc
                self._conns.append(conn)
            for conn in self._conns:
                reply = self._request(
                    conn, {"op": "install", "key": self._key, "wire": wire})
                if reply.get("need_payload"):
                    reply = self._request(
                        conn, {"op": "install", "key": self._key,
                               "wire": ("raw", self._payload)})
                if not reply.get("ok"):
                    raise TransientJobError(
                        f"worker host {conn.addr} rejected program install: "
                        f"{reply.get('error')}"
                    )
        except BaseException:
            self.close()
            raise
        self._pool = ThreadPoolExecutor(max_workers=len(self._conns))

    def _request(self, conn: "transport_mod.FrameConnection", msg: dict) -> dict:
        try:
            return conn.request(msg)
        except (EOFError, OSError) as exc:
            raise TransientJobError(
                f"worker host {conn.addr} disconnected: {exc}"
            ) from exc

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        assert self._pool is not None, "start() must be called before supersteps"
        groups = self.placement.group(tasks)
        futures = {slot: self._pool.submit(self._run_host, slot, group)
                   for slot, group in groups.items()}
        out: list = []
        first_error: BaseException | None = None
        for slot in sorted(futures):
            try:
                out.extend(futures[slot].result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return out

    def _run_host(self, slot: int, tasks: list[SuperstepTask]) -> list:
        conn = self._conns[slot]
        # The task burst is pumped from a helper thread while this thread
        # drains replies. Sending everything first and only then receiving
        # deadlocks once frames outgrow the socket buffers: the host blocks
        # sending reply 1 to a peer that is itself blocked sending task 2.
        # Draining concurrently means the host's replies always have a
        # reader, so its recv loop always makes progress.
        send_err: list[BaseException] = []

        def pump():
            try:
                for t in tasks:
                    conn.send({"op": "task", "key": self._key, "task": t})
            except BaseException as exc:
                send_err.append(exc)

        sender = threading.Thread(
            target=pump, name=f"remote-send-{slot}", daemon=True)
        sender.start()
        try:
            replies = [conn.recv() for _ in tasks]
        except (EOFError, OSError) as exc:
            # The sender may still be blocked mid-frame; closing the
            # connection (the caller's error path) unblocks it.
            raise TransientJobError(
                f"worker host {conn.addr} disconnected mid-superstep: {exc}"
            ) from exc
        # All replies arrived, so the host consumed every task frame and
        # the sender is finished (or completing its final buffered write).
        sender.join()
        if send_err:
            exc = send_err[0]
            if isinstance(exc, (EOFError, OSError)):
                raise TransientJobError(
                    f"worker host {conn.addr} disconnected mid-superstep: "
                    f"{exc}"
                ) from exc
            raise exc
        if any(r.get("need_install") for r in replies):
            # The host evicted (or never saw) this program; a pipelined
            # burst then fails wholesale, so re-install raw and replay only
            # the tasks that bounced.
            self._request(conn, {"op": "install", "key": self._key,
                                 "wire": ("raw", self._payload)})
            for i, (t, r) in enumerate(zip(tasks, replies)):
                if r.get("need_install"):
                    replies[i] = self._request(
                        conn, {"op": "task", "key": self._key, "task": t})
        return [self._unpack(conn, t, r) for t, r in zip(tasks, replies)]

    def _unpack(self, conn, task: SuperstepTask, reply: dict):
        if reply.get("ok"):
            pid, rec, res = reply["triple"]
            return pid, rec, res
        exc_bytes = reply.get("exc")
        if exc_bytes is not None:
            try:
                exc = pickle.loads(exc_bytes)
            except Exception:
                exc = None
            if isinstance(exc, BaseException):
                raise exc
        raise BSPError(
            f"remote task pid={task[0]} failed on {conn.addr}: "
            f"{reply.get('error')}"
        )

    def wire_stats(self) -> dict:
        return {
            "hosts": len(self.hosts),
            "frames_sent": sum(c.frames_sent for c in self._conns),
            "frames_received": sum(c.frames_received for c in self._conns),
            "bytes_sent": sum(c.bytes_sent for c in self._conns),
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for conn in self._conns:
            conn.close()
        self._conns = []
        if self._segstore is not None:
            self._segstore.close()
            self._segstore = None


# ---------------------------------------------------------------------------
# Shared, persistent pools (job-orchestration substrate)
# ---------------------------------------------------------------------------

# Worker-side cache of superstep programs keyed by content hash: a shared
# process pool serves many jobs, so each worker unpickles a given program at
# most once and reuses it for every later task of that job (and of any job
# re-running the same program). Bounded so a very long-lived worker cannot
# accumulate graphs forever.
_SHARED_PROGRAMS: dict[str, Callable] = {}
_SHARED_PROGRAM_CAP = 8


class ProgramSegmentGone(RuntimeError):
    """A worker found its program's shared segment already unlinked.

    Raised across the pool boundary so the parent can replay the superstep
    with the raw pickled payload — the portable fallback is always correct,
    the descriptor path is only an optimization.
    """


def _shared_process_task(arg):
    key, wire, task = arg
    prog = _SHARED_PROGRAMS.get(key)
    if prog is None:
        kind, body = wire
        if kind == "seg":
            try:
                views = shm.attach_arrays(body)
            except FileNotFoundError:
                raise ProgramSegmentGone(key) from None
            prog = pickle.loads(views["payload"])
            del views  # drops the adopted mapping with the last view
        else:
            prog = pickle.loads(body)
        while len(_SHARED_PROGRAMS) >= _SHARED_PROGRAM_CAP:
            _SHARED_PROGRAMS.pop(next(iter(_SHARED_PROGRAMS)))
        _SHARED_PROGRAMS[key] = prog
    return run_task(prog, task)


class _ThreadSession(_Closable):
    """One run's executor view over a shared thread pool (close is a no-op)."""

    def __init__(self, pool: "SharedPool"):
        self._pool = pool
        self.name = pool.name
        self.max_workers = pool.max_workers

    def start(self, compute: Callable) -> None:
        self._compute = compute

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        return self._pool._map_thread(self._compute, tasks)

    def close(self) -> None:  # the pool outlives the run; the owner closes it
        pass


class _ProcessSession(_Closable):
    """One run's executor view over a shared process pool.

    ``start`` pickles the superstep program once; every task ships ``(key,
    payload)`` and workers cache the unpickled program by content hash, so a
    warm worker pays one dict lookup per task instead of a per-job pool
    spawn plus per-worker initializer pickle.
    """

    def __init__(self, pool: "SharedPool"):
        self._pool = pool
        self.name = pool.name
        self.max_workers = pool.max_workers

    def start(self, compute: Callable) -> None:
        self._payload = pickle.dumps(compute, protocol=pickle.HIGHEST_PROTOCOL)
        self._key = hashlib.sha256(self._payload).hexdigest()[:16]
        self._pool._register_program(self._key, self._payload)

    def run_superstep(self, tasks: list[SuperstepTask]) -> list:
        return self._pool._map_process(self._key, self._payload, tasks)

    def close(self) -> None:  # the pool outlives the run; the owner closes it
        pass


class SharedPool(_Closable):
    """A persistent worker pool multiplexed across many pipeline runs.

    The per-request execution path builds and tears down a pool inside every
    :func:`~repro.pipeline.run_pipeline` call; a long-lived service instead
    owns **one** ``SharedPool`` and hands each run a *session*
    (:meth:`session`) — an object satisfying the executor protocol whose
    ``close()`` is a no-op, so the engine's own lifecycle management cannot
    kill the shared workers. Only the owner's :meth:`close` (or the context
    manager) shuts the pool down. Sessions may be used concurrently from
    multiple dispatcher threads; both stdlib pools are thread-safe.
    """

    def __init__(self, kind: str = "thread", max_workers: int = 4):
        if kind not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {kind!r}; use 'thread' or 'process'")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.kind = kind
        self.max_workers = max_workers
        self.name = f"shared-{kind}"
        # Program payloads published once into shared memory so each task
        # ships a tiny (segment, offset, shape, dtype) descriptor instead of
        # the full pickled program. Lazily created on first registration;
        # bounded LRU — an evicted program transparently falls back to the
        # raw-payload wire (see ProgramSegmentGone).
        self._segstore: shm.SharedSegmentStore | None = None
        self._prog_order: list[str] = []
        self._seg_lock = threading.Lock()
        if kind == "thread":
            self._pool: Any = ThreadPoolExecutor(max_workers=max_workers)
        else:
            self._pool = ProcessPoolExecutor(max_workers=max_workers)

    @property
    def closed(self) -> bool:
        return self._pool is None

    def session(self):
        """A fresh executor-protocol adapter bound to this pool."""
        if self._pool is None:
            raise RuntimeError("SharedPool is closed")
        return _ThreadSession(self) if self.kind == "thread" else _ProcessSession(self)

    def _map_thread(self, compute: Callable, tasks: list[SuperstepTask]) -> list:
        if self._pool is None:
            raise RuntimeError("SharedPool is closed")
        return list(self._pool.map(lambda t: run_task(compute, t), tasks))

    def _register_program(self, key: str, payload: bytes) -> None:
        """Publish a program payload to shared memory (LRU, cap 8).

        No-op for thread pools or when POSIX shared memory is unavailable —
        the raw-payload wire stays fully functional without it.
        """
        if self.kind != "process" or not shm.shm_available():
            return
        with self._seg_lock:
            if self._segstore is None:
                self._segstore = shm.SharedSegmentStore(tag="prog")
            if key in self._segstore:
                self._prog_order.remove(key)
                self._prog_order.append(key)
                return
            self._segstore.publish_bytes(key, payload)
            self._prog_order.append(key)
            while len(self._prog_order) > _SHARED_PROGRAM_CAP:
                self._segstore.unpublish(self._prog_order.pop(0))

    def _program_wire(self, key: str, payload: bytes):
        """Per-superstep wire for a program: segment descriptor or raw bytes.

        Resolved fresh each superstep so a program evicted mid-job degrades
        to the raw payload instead of a dead descriptor.
        """
        with self._seg_lock:
            if self._segstore is not None and key in self._segstore:
                return ("seg", self._segstore.descriptor(key))
        return ("raw", payload)

    def _map_process(self, key: str, payload: bytes, tasks: list[SuperstepTask]) -> list:
        if self._pool is None:
            raise RuntimeError("SharedPool is closed")
        wire = self._program_wire(key, payload)
        try:
            return list(self._pool.map(_shared_process_task,
                                       [(key, wire, t) for t in tasks]))
        except ProgramSegmentGone:
            # Evicted between resolve and attach; replay on the raw wire.
            return list(self._pool.map(_shared_process_task,
                                       [(key, ("raw", payload), t) for t in tasks]))

    def segment_stats(self) -> dict:
        """Program segment-store stats (zeros when the store is idle)."""
        with self._seg_lock:
            if self._segstore is None:
                return {"segments": 0, "bytes": 0, "attaches": 0}
            return self._segstore.stats()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._seg_lock:
            if self._segstore is not None:
                self._segstore.close()
                self._segstore = None
                self._prog_order.clear()


#: Registry of executor backends selectable by name from
#: :func:`repro.core.driver.find_euler_circuit`, the CLI and the bench
#: harness.
EXECUTORS: dict[str, type] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "remote": RemoteExecutor,
}


def resolve_executor_name(executor: str | Any | None,
                          max_workers: int = 1) -> str:
    """The backend name an executor spec resolves to.

    ``None`` keeps the historical default: serial when ``max_workers == 1``,
    a thread pool otherwise. The single source of truth for that rule —
    run artifacts report executors through this resolution too. An unknown
    string raises :class:`~repro.errors.UnknownExecutorError` (a
    ``ValueError``) listing the valid backends instead of flowing through
    to a confusing downstream ``KeyError``; an executor *instance* resolves
    to its ``name`` attribute.
    """
    if executor is None:
        return "serial" if max_workers <= 1 else "thread"
    if not isinstance(executor, str):
        return getattr(executor, "name", type(executor).__name__)
    if executor not in EXECUTORS:
        raise UnknownExecutorError(executor, EXECUTORS)
    return executor


def make_executor(executor: str | Any | None, max_workers: int = 1,
                  transport=None, hosts=None):
    """Resolve an executor spec into a backend instance.

    A string (or ``None``, via :func:`resolve_executor_name`) selects from
    :data:`EXECUTORS`; an object with ``start``/``run_superstep``/``close``
    is used as-is. ``transport`` selects the task codec (backends that fix
    their own wire reject incompatible codecs); ``hosts`` is required by —
    and only meaningful for — the ``remote`` backend.
    """
    if executor is None or isinstance(executor, str):
        name = resolve_executor_name(executor, max_workers)
        if name == "remote":
            return RemoteExecutor(hosts, transport=transport)
        return EXECUTORS[name](max_workers=max_workers, transport=transport)
    if all(hasattr(executor, a) for a in ("start", "run_superstep", "close")):
        return executor
    raise TypeError(f"not an executor: {executor!r}")
