"""Example partition-centric programs on the BSP engine.

The paper builds its algorithm on a partition-centric abstraction ("think
like a graph" / GoFFish / Giraph++ style, §2.1). These programs demonstrate
— and test — that our :class:`~repro.bsp.engine.BSPEngine` is a genuine
general substrate, not an Euler-circuit one-off:

* :func:`bsp_connected_components` — the canonical partition-centric
  algorithm: each partition solves components *locally* to convergence per
  superstep, exchanging only boundary labels; supersteps scale with the
  number of partitions crossed, not the graph diameter.
* :func:`bsp_degree_histogram` — a one-superstep aggregation (map-reduce
  shaped) over partitions.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..graph.partition import PartitionedGraph
from .engine import BSPEngine, ComputeResult

__all__ = ["bsp_connected_components", "bsp_degree_histogram"]


def bsp_connected_components(
    pg: PartitionedGraph, max_workers: int = 1
) -> tuple[np.ndarray, int]:
    """Global connected components via partition-centric label propagation.

    Each superstep, every active partition runs local label propagation to
    convergence (the partition-centric trick that beats vertex-centric
    round counts), then sends the labels of its boundary vertices to the
    neighbouring partitions. Quiescence when no label changes anywhere.

    Returns ``(labels, n_supersteps)`` where ``labels[v]`` is the minimum
    vertex id in ``v``'s component.
    """
    graph = pg.graph
    n = graph.n_vertices
    offsets, targets, _ = graph.csr
    labels = np.arange(n, dtype=np.int64)

    # Per-partition local structures.
    part_vertices = {pid: np.flatnonzero(pg.part_of == pid) for pid in range(pg.n_parts)}
    remote_of = {pid: pg.view(pid).remote for pid in range(pg.n_parts)}

    def local_converge(pid: int) -> bool:
        """Propagate min labels inside the partition until stable."""
        verts = part_vertices[pid]
        changed_any = False
        while True:
            changed = False
            for v in verts.tolist():
                lo, hi = int(offsets[v]), int(offsets[v + 1])
                for i in range(lo, hi):
                    t = int(targets[i])
                    if pg.part_of[t] != pid:
                        continue
                    if labels[t] < labels[v]:
                        labels[v] = labels[t]
                        changed = True
                    elif labels[v] < labels[t]:
                        labels[t] = labels[v]
                        changed = True
            changed_any |= changed
            if not changed:
                return changed_any

    def compute(pid, state, messages, rec, superstep):
        changed = False
        for src, lbl in (pair for msg in messages for pair in msg):
            if lbl < labels[src]:
                labels[src] = lbl
                changed = True
        if superstep == 0 or changed:
            changed |= local_converge(pid)
        if not changed and superstep > 0:
            return ComputeResult(state=True)
        # Ship boundary labels to the partitions on the other side.
        out: dict[int, list] = defaultdict(list)
        rows = remote_of[pid]
        for src, dst, _eid, dst_pid in rows.tolist():
            out[int(dst_pid)].append((int(dst), int(labels[src])))
        outgoing = {pid_: [pairs] for pid_, pairs in out.items()}
        return ComputeResult(state=True, outgoing=outgoing, halt=True)

    engine = BSPEngine(max_workers=max_workers)
    _, stats = engine.run({pid: None for pid in range(pg.n_parts)}, compute)
    return labels, stats.n_supersteps


def bsp_degree_histogram(
    pg: PartitionedGraph, max_workers: int = 1
) -> dict[int, int]:
    """Degree histogram computed as a partition-parallel aggregation.

    Each partition histograms its own vertices in superstep 0 and sends the
    partial histogram to partition 0, which folds them in superstep 1 —
    the bulk-aggregation idiom on the same engine.
    """
    degrees = pg.graph.degrees()
    result: dict[int, int] = {}

    def compute(pid, state, messages, rec, superstep):
        if superstep == 0:
            verts = np.flatnonzero(pg.part_of == pid)
            part_hist: dict[int, int] = defaultdict(int)
            for v in verts.tolist():
                part_hist[int(degrees[v])] += 1
            return ComputeResult(state=True, outgoing={0: [dict(part_hist)]})
        for msg in messages:
            for deg, cnt in msg.items():
                result[deg] = result.get(deg, 0) + cnt
        return ComputeResult(state=True)

    BSPEngine(max_workers=max_workers).run(
        {pid: None for pid in range(pg.n_parts)}, compute
    )
    return result
