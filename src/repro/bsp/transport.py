"""Task transport and placement: how superstep payloads move, and where.

The executor backends (:mod:`repro.bsp.executors`) answer two questions
that PR 1 fused into one class hierarchy and this module splits apart:

* **transport** — how a :data:`~repro.bsp.executors.SuperstepTask` and its
  result triple cross an execution boundary. Four interchangeable codecs:
  ``memory`` (by reference, the in-process identity), ``pickle`` (a real
  serialization round-trip), ``shm`` (buffers placed in a POSIX
  shared-memory segment, descriptor crosses), and ``socket`` (the
  length-prefixed binary frame the remote backend speaks, run through an
  in-memory loopback). Every codec is bit-parity equivalent by contract —
  the transport-matrix suite enforces it.
* **placement** — which worker slot runs which partition.
  :class:`StaticPlacement` pins each pid to a slot by value (ints) or
  stable hash (everything else), so a partition's state always lands on
  the same host across supersteps — the paper's one-machine-per-partition
  deployment, made explicit.

The frame protocol (``send_frame`` / ``recv_frame``) is what
:class:`~repro.bsp.executors.RemoteExecutor` and
:class:`~repro.jobs.remote.WorkerHost` speak over TCP or Unix sockets::

    frame  := header | meta | buffer*
    header := magic "REF1" (4s) | n_buffers (<I) | meta_len (<Q)
    buffer := nbytes (<Q) | raw bytes

``meta`` is a pickle-protocol-5 payload whose contiguous array buffers are
externalized via ``buffer_callback`` and written to the socket *raw*, after
the meta pickle — the packed int64 EdgeTable/ItemArray/CoarseTable columns
PR 2 built ship with zero re-encoding, and the receive side rebuilds the
arrays as views over the received buffers. Module-level :data:`WIRE`
counters record total vs out-of-band bytes, which is exactly the
"bytes-on-wire ≤ packed columns + framing overhead" gate the data-plane
benchmark asserts.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import threading
import zlib
from typing import Any, Iterable

import numpy as np

from ..obs import get_registry
from . import shm

__all__ = [
    "TRANSPORTS",
    "FrameConnection",
    "MemoryTransport",
    "PickleTransport",
    "ShmTransport",
    "SocketTransport",
    "StaticPlacement",
    "WireStats",
    "connect",
    "encode_frame",
    "decode_frame",
    "parse_hosts",
    "recv_frame",
    "resolve_transport",
    "send_frame",
    "slot_of",
    "wire_stats",
    "reset_wire_stats",
]

_MAGIC = b"REF1"
_HEADER = struct.Struct("<4sIQ")
_BUFLEN = struct.Struct("<Q")

#: Hard ceiling on a single frame (1 GiB) — a corrupted or hostile length
#: prefix must not become an allocation bomb.
MAX_FRAME_BYTES = 1 << 30


class WireStats:
    """Thread-safe byte accounting for the frame protocol.

    ``buffer_bytes`` counts the out-of-band raw array buffers; everything
    else (headers, length prefixes, meta pickles) is framing/encoding
    overhead. The benchmark gate is ``bytes_total - buffer_bytes`` per
    message staying under a fixed cap — a pickle blowup (arrays re-encoded
    element-wise into the meta) shows up there immediately.

    Instances are **scoped**: the module-level :data:`WIRE` counts frames
    sent by code that named no narrower accumulator (scope ``process``),
    while each remote host pool / executor / worker host owns its own
    ``WireStats(scope=...)`` — so a coordinator and an in-process degrade
    path running concurrently no longer double-count each other's frames.
    Every ``add`` is mirrored into the bound metrics registry as the
    ``repro_wire_*`` counter families labeled by scope; the raw fields
    keep the historical resettable-snapshot semantics (the data-plane
    benchmark resets between measurements; Prometheus counters never do).
    """

    def __init__(self, registry=None, scope: str = "process"):
        self._lock = threading.Lock()
        self.scope = scope
        self.messages = 0
        self.bytes_total = 0
        self.buffer_bytes = 0
        reg = registry if registry is not None else get_registry()
        self._m_messages = reg.counter(
            "repro_wire_messages_total", "Frames sent", labelnames=("scope",)
        ).labels(scope=scope)
        self._m_bytes = reg.counter(
            "repro_wire_bytes_total", "Frame bytes sent (header+meta+buffers)",
            labelnames=("scope",),
        ).labels(scope=scope)
        self._m_buffer_bytes = reg.counter(
            "repro_wire_buffer_bytes_total",
            "Out-of-band array buffer bytes sent", labelnames=("scope",),
        ).labels(scope=scope)

    def add(self, total: int, buffers: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes_total += int(total)
            self.buffer_bytes += int(buffers)
        self._m_messages.inc()
        self._m_bytes.inc(int(total))
        self._m_buffer_bytes.inc(int(buffers))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes_total": self.bytes_total,
                "buffer_bytes": self.buffer_bytes,
                "overhead_bytes": self.bytes_total - self.buffer_bytes,
            }

    def reset(self) -> None:
        """Zero the snapshot fields (registry counters stay monotonic)."""
        with self._lock:
            self.messages = 0
            self.bytes_total = 0
            self.buffer_bytes = 0


class _LazyWire:
    """Deferred process-wide :class:`WireStats` (created on first use).

    Binding the registry at import time would freeze the global registry
    before a test (or ``REPRO_METRICS=0``) could swap it; deferring to
    first frame keeps module import side-effect free.
    """

    _inner: WireStats | None = None
    _init_lock = threading.Lock()

    def _get(self) -> WireStats:
        if self._inner is None:
            with self._init_lock:
                if self._inner is None:
                    self._inner = WireStats(scope="process")
        return self._inner

    def add(self, total: int, buffers: int) -> None:
        self._get().add(total, buffers)

    def snapshot(self) -> dict:
        return self._get().snapshot()

    def reset(self) -> None:
        self._get().reset()

    @property
    def messages(self) -> int:
        return self._get().messages

    @property
    def bytes_total(self) -> int:
        return self._get().bytes_total

    @property
    def buffer_bytes(self) -> int:
        return self._get().buffer_bytes


#: Process-wide accumulator every unscoped frame send adds to (receives
#: are counted by the sending side of the peer, so loopback runs see both
#: directions). Scoped senders pass their own :class:`WireStats` instead.
WIRE = _LazyWire()


def wire_stats() -> dict:
    """Snapshot of the process-wide frame-protocol byte counters."""
    return WIRE.snapshot()


def reset_wire_stats() -> None:
    WIRE.reset()


#: ``bytes`` payloads at least this large are shipped out-of-band like
#: array buffers, instead of being copied into the meta pickle.
_BYTES_OOB_MIN = 4096


#: Persistent-id tag marking an out-of-band ``bytes`` buffer slot.
_OOB_BYTES_PID = "repro-oob-bytes"


class _FramePickler(pickle.Pickler):
    """Protocol-5 pickler that also externalizes large ``bytes`` payloads.

    NumPy arrays go out-of-band natively under protocol 5, but
    already-serialized payloads (pickled superstep *messages* riding
    inside a task result) are plain ``bytes`` — the default pickler would
    copy them into the meta, double-buffering the frame and blowing the
    fixed-framing-overhead budget the data-plane benchmark gates on.

    ``reducer_override``/``dispatch_table`` are skipped for exact core
    types like ``bytes``; ``persistent_id`` is the one hook consulted for
    every object, so large ``bytes`` are diverted here into the same
    buffer list the ``buffer_callback`` fills. Pickle streams are strictly
    sequential, so encode-side appends and decode-side pulls happen in the
    same order and one shared cursor serves both kinds of slot.
    """

    def __init__(self, sink, buffers: list):
        super().__init__(sink, protocol=5, buffer_callback=buffers.append)
        self._oob = buffers

    def persistent_id(self, obj):
        if type(obj) is bytes and len(obj) >= _BYTES_OOB_MIN:
            self._oob.append(pickle.PickleBuffer(obj))
            return _OOB_BYTES_PID
        return None


class _FrameUnpickler(pickle.Unpickler):
    """Counterpart to :class:`_FramePickler`: restores oob ``bytes``."""

    def __init__(self, meta, buffers):
        self._cursor = iter(buffers)
        super().__init__(io.BytesIO(meta), buffers=self._cursor)

    def persistent_load(self, pid):
        if pid == _OOB_BYTES_PID:
            return bytes(next(self._cursor))
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _load_meta(meta, buffers) -> Any:
    return _FrameUnpickler(bytes(meta), buffers).load()


def encode_frame(obj: Any) -> tuple[list, int, int]:
    """Serialize ``obj`` into frame parts; ``(parts, total, buffer_bytes)``.

    ``parts`` is a list of bytes-like chunks to be written in order —
    nothing is concatenated, so the raw array buffers are never copied
    into an intermediate bytestring.
    """
    buffers: list = []
    sink = io.BytesIO()
    _FramePickler(sink, buffers).dump(obj)
    meta = sink.getvalue()
    raws = [b.raw() for b in buffers]
    parts: list = [_HEADER.pack(_MAGIC, len(raws), len(meta)), meta]
    total = _HEADER.size + len(meta)
    buffer_bytes = 0
    for r in raws:
        n = r.nbytes
        parts.append(_BUFLEN.pack(n))
        parts.append(r if r.contiguous else bytes(r))
        total += _BUFLEN.size + n
        buffer_bytes += n
    return parts, total, buffer_bytes


def decode_frame(data: bytes | bytearray | memoryview) -> Any:
    """Parse one complete frame from a contiguous byte block."""
    view = memoryview(data)
    magic, n_buffers, meta_len = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad frame magic {magic!r}")
    off = _HEADER.size
    meta = view[off:off + meta_len]
    off += meta_len
    buffers = []
    for _ in range(n_buffers):
        (n,) = _BUFLEN.unpack_from(view, off)
        off += _BUFLEN.size
        # A bytearray copy keeps the rebuilt arrays writable (a read-only
        # view would poison downstream in-place merges).
        buffers.append(bytearray(view[off:off + n]))
        off += n
    return _load_meta(meta, buffers)


def send_frame(sock: socket.socket, obj: Any, stats=None) -> int:
    """Write one frame to a connected socket; returns bytes sent.

    ``stats`` names the :class:`WireStats` accumulator charged for the
    frame; ``None`` charges the process-wide :data:`WIRE`. A scoped
    accumulator is charged *instead of* (not in addition to) the global
    one — that exclusivity is the double-counting fix.
    """
    parts, total, buffer_bytes = encode_frame(obj)
    for part in parts:
        sock.sendall(part)
    (stats if stats is not None else WIRE).add(total, buffer_bytes)
    return total


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes; ``EOFError`` on a clean peer close."""
    out = bytearray(n)
    view = memoryview(out)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            raise EOFError("peer closed the connection")
        got += k
    return out


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame from a connected socket (blocking).

    Raises ``EOFError`` when the peer closed cleanly between frames, and
    ``ValueError`` on a corrupt header.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, n_buffers, meta_len = _HEADER.unpack(bytes(header))
    if magic != _MAGIC:
        raise ValueError(f"bad frame magic {magic!r}")
    if meta_len > MAX_FRAME_BYTES:
        raise ValueError(f"frame meta too large ({meta_len} bytes)")
    meta = _recv_exact(sock, meta_len)
    buffers = []
    for _ in range(n_buffers):
        (n,) = _BUFLEN.unpack(bytes(_recv_exact(sock, _BUFLEN.size)))
        if n > MAX_FRAME_BYTES:
            raise ValueError(f"frame buffer too large ({n} bytes)")
        buffers.append(_recv_exact(sock, n))
    return _load_meta(meta, buffers)


# ---------------------------------------------------------------------------
# Host addressing
# ---------------------------------------------------------------------------


def parse_hosts(spec) -> list[tuple[str, int]]:
    """Normalize a host spec into ``[(host, port), ...]``.

    Accepts ``"h1:p1,h2:p2"`` strings (the ``--hosts`` CLI flag), an
    iterable of ``"host:port"`` strings, ``(host, port)`` tuples, or a mix.
    ``None``/empty specs return ``[]``.
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        items: Iterable = [s for s in (p.strip() for p in spec.split(",")) if s]
    else:
        items = spec
    hosts: list[tuple[str, int]] = []
    for item in items:
        if isinstance(item, str):
            host, sep, port = item.rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"bad host spec {item!r}; expected 'host:port'"
                )
            hosts.append((host, int(port)))
        else:
            host, port = item
            hosts.append((str(host), int(port)))
    return hosts


def connect(addr: tuple[str, int], timeout: float | None = 10.0) -> socket.socket:
    """A connected TCP socket to ``(host, port)`` with Nagle disabled.

    ``TCP_NODELAY`` matters here for the same reason it did for the HTTP
    front end: superstep frames are small and latency-bound; batching them
    behind delayed ACKs would serialize the barrier on the network timer.
    """
    sock = socket.create_connection(addr, timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - non-TCP transports
        pass
    sock.settimeout(None)
    return sock


class FrameConnection:
    """One framed peer connection: ``send``/``recv``/``request`` + counters.

    Send and receive sides carry independent locks so a pipelined caller
    (send N frames, then collect N replies) can overlap directions; callers
    multiplexing one connection across threads must serialize
    request/response pairs themselves (the remote pool gives each
    connection a single owning thread instead).
    """

    def __init__(self, sock: socket.socket, addr=None, stats=None):
        self.sock = sock
        self.addr = addr if addr is not None else _peername(sock)
        self.stats = stats  # scoped WireStats, or None for the global WIRE
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self.bytes_sent = 0
        self.frames_sent = 0
        self.frames_received = 0

    @classmethod
    def open(cls, addr: tuple[str, int],
             timeout: float | None = 10.0, stats=None) -> "FrameConnection":
        return cls(connect(addr, timeout), addr=addr, stats=stats)

    def send(self, obj: Any) -> int:
        with self._send_lock:
            n = send_frame(self.sock, obj, stats=self.stats)
        self.bytes_sent += n
        self.frames_sent += 1
        return n

    def recv(self, timeout: float | None = None) -> Any:
        """Receive one frame; ``socket.timeout`` when ``timeout`` elapses."""
        with self._recv_lock:
            if timeout is not None:
                self.sock.settimeout(timeout)
                try:
                    obj = recv_frame(self.sock)
                finally:
                    self.sock.settimeout(None)
            else:
                obj = recv_frame(self.sock)
        self.frames_received += 1
        return obj

    def request(self, obj: Any, timeout: float | None = None) -> Any:
        self.send(obj)
        return self.recv(timeout)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


def _peername(sock: socket.socket):
    try:
        return sock.getpeername()
    except OSError:
        return None


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


def slot_of(pid, n_slots: int) -> int:
    """The stable worker slot for a partition id.

    Integer pids map by value (``pid % n_slots`` — consecutive partitions
    spread round-robin and the mapping is obvious in logs); other hashables
    map by CRC of their string form, which is stable across processes and
    interpreter hash randomization — ``hash()`` is not.
    """
    if n_slots < 1:
        raise ValueError("n_slots must be >= 1")
    if isinstance(pid, (int, np.integer)) and not isinstance(pid, bool):
        return int(pid) % n_slots
    return zlib.crc32(str(pid).encode()) % n_slots


class StaticPlacement:
    """Pid → slot assignment, fixed for a run (the paper's static sharding).

    Partition state lives on the worker that computes it only if the
    mapping never moves mid-run; this object is that guarantee, and the
    single place a future dynamic/rebalancing policy would replace.
    """

    def __init__(self, n_slots: int):
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.n_slots = n_slots

    def slot_of(self, pid) -> int:
        return slot_of(pid, self.n_slots)

    def group(self, tasks) -> dict[int, list]:
        """Superstep tasks bucketed by slot (insertion order preserved)."""
        groups: dict[int, list] = {}
        for task in tasks:
            groups.setdefault(self.slot_of(task[0]), []).append(task)
        return groups


# ---------------------------------------------------------------------------
# Task transports (codecs)
# ---------------------------------------------------------------------------


class MemoryTransport:
    """In-memory identity: payloads cross by reference (serial/thread)."""

    name = "memory"

    def encode(self, obj: Any) -> Any:
        return obj

    def decode(self, wire: Any) -> Any:
        return wire

    def roundtrip(self, obj: Any) -> Any:
        return self.decode(self.encode(obj))

    def close(self) -> None:
        pass


class PickleTransport(MemoryTransport):
    """A real pickle round-trip — what a process pool's pipe does."""

    name = "pickle"

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, wire: bytes) -> Any:
        return pickle.loads(wire)


class ShmTransport(MemoryTransport):
    """Buffers through a shared-memory segment; descriptor crosses.

    Wraps :func:`repro.bsp.shm.ship` / :class:`~repro.bsp.shm.ShmBlob`:
    the encode side copies the payload's array buffers once into a fresh
    segment; decode attaches, rebuilds, and unlinks. ``close()`` sweeps
    any segment an aborted round-trip stranded (by this transport's unique
    token), so the codec upholds the no-leak contract on every exit path.
    """

    name = "shm"

    def __init__(self):
        import os

        self._token = f"t{os.urandom(3).hex()}"

    def encode(self, obj: Any):
        return shm.ship(obj, token=self._token)

    def decode(self, wire) -> Any:
        if isinstance(wire, shm.ShmBlob):
            obj = wire.load()
            wire.dispose()
            return obj
        return pickle.loads(wire)

    def close(self) -> None:
        shm.cleanup_token(self._token)


class SocketTransport(MemoryTransport):
    """The remote backend's frame codec, run through an in-memory loopback.

    Encodes exactly the bytes :func:`send_frame` would put on a socket and
    decodes them exactly as :func:`recv_frame` would — the transport-matrix
    parity suite exercises the real wire format without binding a port.
    """

    name = "socket"

    def __init__(self, stats=None):
        self._stats = stats

    def encode(self, obj: Any) -> bytes:
        parts, total, buffer_bytes = encode_frame(obj)
        out = io.BytesIO()
        for part in parts:
            out.write(part)
        (self._stats if self._stats is not None else WIRE).add(
            total, buffer_bytes)
        return out.getvalue()

    def decode(self, wire: bytes) -> Any:
        return decode_frame(wire)


#: Registry of task-transport codecs selectable by name.
TRANSPORTS: dict[str, type] = {
    "memory": MemoryTransport,
    "pickle": PickleTransport,
    "shm": ShmTransport,
    "socket": SocketTransport,
}


def resolve_transport(transport) -> MemoryTransport:
    """A transport spec (name, ``None``, or instance) → codec instance.

    ``None`` means in-memory. ``"shm"`` falls back to pickle when POSIX
    shared memory is unavailable, mirroring ``RunConfig.transport_name``.
    """
    if transport is None:
        return MemoryTransport()
    if isinstance(transport, str):
        if transport == "shm" and not shm.shm_available():
            return PickleTransport()
        try:
            cls = TRANSPORTS[transport]
        except KeyError:
            raise ValueError(
                f"unknown task transport {transport!r}; "
                f"valid transports: {', '.join(sorted(TRANSPORTS))}"
            ) from None
        return cls()
    if all(hasattr(transport, a) for a in ("encode", "decode", "roundtrip")):
        return transport
    raise TypeError(f"not a task transport: {transport!r}")
