"""BSP substrate: partition-centric and vertex-centric superstep engines.

Simulates the execution model the paper targets (Spark extended to a
partition-centric abstraction; Pregel for the vertex-centric baseline) with
barrier-synchronized supersteps, bulk message delivery and the cost
accounting (§3.5, §4.3) every benchmark reads.
"""

from .accounting import (
    CAT_COPY_SINK,
    CAT_COPY_SRC,
    CAT_CREATE,
    CAT_PHASE1,
    PartitionStepRecord,
    RunStats,
)
from .engine import BSPEngine, ComputeResult
from .executors import (
    EXECUTORS,
    ProcessExecutor,
    RemoteExecutor,
    SerialExecutor,
    SharedPool,
    ThreadExecutor,
    make_executor,
    resolve_executor_name,
)
from .transport import (
    TRANSPORTS,
    StaticPlacement,
    parse_hosts,
    resolve_transport,
    wire_stats,
)
from .programs import bsp_connected_components, bsp_degree_histogram
from .messages import MailRouter
from .vertex_engine import VertexBSPEngine, VertexComputeResult, VertexRunStats

__all__ = [
    "BSPEngine",
    "ComputeResult",
    "EXECUTORS",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "RemoteExecutor",
    "SharedPool",
    "make_executor",
    "resolve_executor_name",
    "TRANSPORTS",
    "StaticPlacement",
    "parse_hosts",
    "resolve_transport",
    "wire_stats",
    "bsp_connected_components",
    "bsp_degree_histogram",
    "MailRouter",
    "VertexBSPEngine",
    "VertexComputeResult",
    "VertexRunStats",
    "PartitionStepRecord",
    "RunStats",
    "CAT_CREATE",
    "CAT_COPY_SRC",
    "CAT_COPY_SINK",
    "CAT_PHASE1",
]
