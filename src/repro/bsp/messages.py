"""Mailboxes with barrier-deferred bulk delivery (Pregel/BSP semantics).

Messages sent during superstep ``s`` become visible only at superstep
``s+1`` — the defining property of the BSP model [Valiant 1990] that the
paper's algorithm relies on to avoid race conditions (§2.1). The
:class:`MailRouter` enforces this by double-buffering: sends go to the
*pending* buffer; :meth:`MailRouter.barrier` swaps buffers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable

__all__ = ["MailRouter"]


class MailRouter:
    """Double-buffered message router keyed by destination id."""

    def __init__(self) -> None:
        self._pending: dict[Hashable, list[Any]] = defaultdict(list)
        self._current: dict[Hashable, list[Any]] = {}
        #: Number of messages delivered across all barriers (diagnostics).
        self.total_messages = 0

    def send(self, dst: Hashable, message: Any) -> None:
        """Queue ``message`` for ``dst``; visible after the next barrier."""
        self._pending[dst].append(message)

    def send_many(self, dst: Hashable, messages) -> None:
        """Queue several messages for ``dst``."""
        self._pending[dst].extend(messages)

    def barrier(self) -> None:
        """End the superstep: pending messages become current deliveries."""
        self._current = dict(self._pending)
        self.total_messages += sum(len(v) for v in self._current.values())
        self._pending = defaultdict(list)

    def receive(self, dst: Hashable) -> list[Any]:
        """Messages addressed to ``dst`` in the current superstep."""
        return self._current.get(dst, [])

    @property
    def has_pending(self) -> bool:
        """True if any message awaits the next barrier."""
        return any(self._pending.values())

    @property
    def has_current(self) -> bool:
        """True if any message is deliverable in the current superstep."""
        return any(self._current.values())

    def destinations(self):
        """Ids with deliverable messages this superstep."""
        return [d for d, v in self._current.items() if v]
