"""Pipeline stage 3 — Reconstruct: unroll the fragment hierarchy (Phase 3).

The part the paper left to future work: splice every anchored cycle into the
top-level cycle and expand coarse items recursively into the final Euler
circuit, then (optionally) verify it against the input graph.
"""

from __future__ import annotations

import time

from ..core.circuit import verify_circuit
from ..core.pathmap import KIND_CYCLE
from ..core.phase3 import reconstruct_circuit
from ..errors import NotEulerianError
from ..graph.graph import Graph
from .context import RunContext

__all__ = ["Reconstruct"]


class Reconstruct:
    """Produce (and optionally verify) the circuit from the fragment store."""

    def run(self, graph: Graph, ctx: RunContext) -> None:
        t3 = time.perf_counter()
        store = ctx.store
        cycles = [f for f in store.all_fragments() if f.kind == KIND_CYCLE]
        if not cycles:
            raise NotEulerianError(
                "no cycle fragments produced (empty partition run?)"
            )
        # Base = the highest-level cycle (the root partition's unified cycle).
        # Note the *partition id* running the final Phase 1 with real content
        # may differ from tree.root when empty partitions pad the tree, so we
        # key on level (and fid for determinism), not pid.
        top_level = max(f.level for f in cycles)
        base_fid = min(f.fid for f in cycles if f.level == top_level)
        ctx.circuit = reconstruct_circuit(store, [f.fid for f in cycles], base_fid)
        ctx.phase3_seconds = time.perf_counter() - t3

        if ctx.config.verify:
            verify_circuit(graph, ctx.circuit)
            ctx.verified = True
