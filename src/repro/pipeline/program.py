"""Pipeline stage 2 — SuperstepProgram: the BSP compute function as a class.

One instance runs Phase 1 + the child→parent state transfer (Phase 2) for
every partition at every merge level. The instance is a plain picklable
value — static plan data only — so the ``process`` executor can install it
once per worker and run partitions out of process with real serialization
boundaries, exactly like the paper's one-machine-per-partition deployment:

* fragments created during a run go into a :class:`FragmentBatch` with
  structured, coordination-free ids (:func:`repro.core.pathmap.make_fid`)
  and travel back in ``ComputeResult.payload``;
* the engine's commit hook (:meth:`SuperstepProgram.make_commit`) adopts
  each batch into the parent-side :class:`FragmentStore` in pid order, the
  single mutation point for shared state — so serial, thread and process
  backends produce bit-identical fragment stores and circuits.
"""

from __future__ import annotations

import pickle
import time

import numpy as np

from ..bsp import shm
from ..bsp.accounting import (
    CAT_COPY_SINK,
    CAT_COPY_SRC,
    CAT_CREATE,
    CAT_PHASE1,
    PartitionStepRecord,
)
from ..bsp.engine import ComputeResult
from ..core.merging import (
    PartitionState,
    local_edges_level0,
    merge_states,
    phase1_state_longs,
    state_from_view,
)
from ..core.pathmap import FragmentBatch, FragmentStore
from ..core.phase1 import EDGE_RAW, run_phase1
from ..graph.partition import PartitionedGraph

__all__ = ["SuperstepProgram"]


class SuperstepProgram:
    """Per-partition compute for one superstep (= one merge level).

    Parameters
    ----------
    pg:
        The partitioned graph (each worker's copy stands in for the static
        partition a machine loads once).
    held0:
        Remote half-edge rows each partition holds at level 0 (strategy
        placement).
    send_plan:
        ``child -> (parent, superstep)`` shipping plan from the static tree.
    extras:
        Deferred-strategy shipments keyed ``(parent, superstep)`` — the rows
        the leaves release into that parent's merge (empty unless deferred).
    deferred, validate:
        Strategy flag and Lemma-checking flag, as in the driver.
    transport:
        Child→parent state wire format: ``"pickle"`` ships one pickled
        byte blob per transfer (the portable default); ``"shm"`` ships a
        :class:`~repro.bsp.shm.ShmBlob` descriptor whose array buffers
        live in a shared-memory segment — the receiver reconstructs
        zero-copy views, and a level-0 state whose held rows are still the
        program's own ``held0[pid]`` ships a by-reference token instead of
        bytes (every worker already holds ``held0`` as program static
        data, the paper's graph-loaded-on-every-machine dedup). Both
        formats are accepted on receive regardless of the configured
        transport, so per-message fallback is always safe.
    run_token:
        Unique tag naming this run's message segments, letting the runner
        sweep stragglers (:func:`repro.bsp.shm.cleanup_token`) when a run
        aborts between ship and receive.
    """

    def __init__(
        self,
        pg: PartitionedGraph,
        held0: dict[int, np.ndarray],
        send_plan: dict[int, tuple[int, int]],
        extras: dict[tuple[int, int], np.ndarray],
        deferred: bool,
        validate: bool,
        transport: str = "pickle",
        run_token: str = "",
    ):
        self.pg = pg
        self.held0 = held0
        self.send_plan = send_plan
        self.extras = extras
        self.deferred = deferred
        self.validate = validate
        self.transport = transport
        self.run_token = run_token

    # ---- state wire format -------------------------------------------------

    #: Placeholder held table while a by-reference state is on the wire.
    _HELD_SENTINEL = np.empty((0, 4), dtype=np.int64)

    def _ship_state(self, state: PartitionState):
        """Encode one child state for the executor boundary.

        Returns pickle bytes or a :class:`~repro.bsp.shm.ShmBlob`. When the
        state's held table is (identically) the program's own
        ``held0[pid]`` — a leaf that never merged — the table ships as a
        by-reference token and zero bytes move.
        """
        held = state.held
        ref = state.pid if held is self.held0.get(state.pid) else None
        if ref is not None:
            state.held = self._HELD_SENTINEL
        try:
            payload = (ref, state)
            if self.transport == "shm":
                return shm.ship(payload, token=self.run_token)
            return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            if ref is not None:
                state.held = held

    def _load_state(self, blob) -> PartitionState:
        """Decode one shipped child state (either wire format)."""
        if isinstance(blob, shm.ShmBlob):
            ref, state = blob.load()
        else:
            ref, state = pickle.loads(blob)
        if ref is not None:
            state.held = self.held0[ref]
        return state

    @staticmethod
    def _dispose_messages(messages: list) -> None:
        """Unlink consumed message segments (post-merge, views are dead)."""
        for blob in messages:
            if isinstance(blob, shm.ShmBlob):
                blob.dispose()

    def cleanup_transport(self) -> None:
        """Janitor: sweep any message segment this run left behind."""
        if self.transport == "shm" and self.run_token:
            shm.cleanup_token(self.run_token)

    # ---- the compute function (runs on any executor backend) --------------
    def __call__(
        self,
        pid: int,
        state: PartitionState | None,
        messages: list,
        rec: PartitionStepRecord,
        superstep: int,
    ) -> ComputeResult:
        level = superstep
        if superstep == 0:
            t0 = time.perf_counter()
            graph = self.pg.graph
            local_edges = local_edges_level0(
                self.pg.local_eids_of(pid), graph.edge_u, graph.edge_v
            )
            state, _, remote_deg = state_from_view(
                pid, self.pg.remote_rows_of(pid), self.held0[pid], (pid,)
            )
            rec.add_time(CAT_CREATE, time.perf_counter() - t0)
        elif messages:
            t0 = time.perf_counter()
            children = [self._load_state(blob) for blob in messages]
            rec.add_time(CAT_COPY_SINK, time.perf_counter() - t0)
            t0 = time.perf_counter()
            # All rows the leaves release for this merge arrive with the
            # first child; merge_states re-examines retained rows as the
            # group grows, so this is equivalent to per-child shipping.
            extra = self.extras.get((pid, superstep)) if self.deferred else None
            edge_parts = []
            # The CoarseTables consumed by the merges carry the fid ->
            # n_edges weights the Phase-1 batch needs for prior fragments;
            # collect them before merge_states folds the tables into the
            # level's EdgeTable.
            known_coarse = state.known_coarse_edges()
            for child in children:
                known_coarse.update(child.known_coarse_edges())
                group = set(state.member_leaves) | set(child.member_leaves)
                state, le, _ = merge_states(state, child, group, extra_rows=extra)
                extra = None
                edge_parts.append(le)
            local_edges = np.concatenate(edge_parts)
            remote_deg = state.remote_deg
            # merge_states copies every surviving array, so no view into a
            # message segment outlives the loop — safe to unlink now.
            del children
            self._dispose_messages(messages)
            rec.add_time(CAT_CREATE, time.perf_counter() - t0)
        else:
            # Idle partition carrying state (skipped this level, or waiting
            # to ship at a later level). Record its resident state so the
            # Fig. 8 cumulative series counts it.
            rec.state_longs = state.state_longs() if state else 0
            target = self.send_plan.get(pid)
            if target is not None and target[1] == level:
                t0 = time.perf_counter()
                blob = self._ship_state(state)
                rec.add_time(CAT_COPY_SRC, time.perf_counter() - t0)
                rec.sent_longs = state.state_longs()
                return ComputeResult(state=None, outgoing={target[0]: [blob]})
            still_waiting = target is not None and target[1] > level
            return ComputeResult(state=state, halt=not still_waiting)

        if superstep == 0:
            known_coarse = None  # level 0 consumes only raw edges
        pre_entries = state.n_pathmap_entries
        batch = FragmentBatch(pid, level, known_edges=known_coarse)
        t0 = time.perf_counter()
        pathmap, stats = self._phase1(pid, level, local_edges, remote_deg, batch)
        rec.add_time(CAT_PHASE1, time.perf_counter() - t0)
        state.level = level
        # CoarseTable rows (src, dst, fid, n_edges) for the just-produced
        # OB-pair paths: ob_paths plus its aligned weight column (which
        # replaces the old side-band ``coarse_meta`` dict).
        state.coarse = np.concatenate(
            (pathmap.ob_paths, pathmap.ob_path_edges[:, None]), axis=1
        )
        state.n_pathmap_entries = pre_entries + len(pathmap.ob_paths) + len(
            pathmap.anchored_cycles
        )

        # Fig. 8 unit: state as loaded for this Phase-1 run (vertices + local
        # edges + held remote edges + carried pathMap metadata).
        n_raw_local = int(np.count_nonzero(local_edges[:, 2] == EDGE_RAW))
        rec.state_longs = phase1_state_longs(
            stats.n_live_vertices,
            n_raw_local,
            int(local_edges.shape[0]) - n_raw_local,
            int(state.held.shape[0]),
            pre_entries,
        )
        rec.census = {
            "n_internal": stats.n_internal,
            "n_ob": stats.n_ob,
            "n_eb": stats.n_eb,
            "n_local_edges": stats.n_local_edges,
            "n_remote_half_edges": int(state.held.shape[0]),
            "phase1_cost": stats.phase1_cost,
            "n_paths": stats.n_paths,
            "n_anchored_cycles": len(pathmap.anchored_cycles),
        }

        target = self.send_plan.get(pid)
        if target is not None and target[1] == level:
            t0 = time.perf_counter()
            blob = self._ship_state(state)
            rec.add_time(CAT_COPY_SRC, time.perf_counter() - t0)
            rec.sent_longs = state.state_longs()
            return ComputeResult(
                state=None, outgoing={target[0]: [blob]}, payload=batch
            )
        still_waiting = target is not None
        return ComputeResult(state=state, halt=not still_waiting, payload=batch)

    # ---- Phase-1 entry (the incremental-repair override point) ------------
    def _phase1(self, pid, level, local_edges, remote_deg, batch):
        """Run Phase 1 for one (partition, level) node.

        ``run_phase1`` is a deterministic pure function of exactly these
        arguments (plus the batch's known-edge weights), which is what the
        dynamic-graph repair engine exploits: its program subclass
        intercepts this call, compares the inputs against a cached prior
        run, and replays the cached fragments when nothing changed.
        """
        return run_phase1(
            pid, level, local_edges, remote_deg, batch, validate=self.validate
        )

    # ---- parent-side commit (the single shared-state mutation point) ------
    def make_commit(self, store: FragmentStore):
        """Commit hook adopting each superstep's fragment batches in pid order."""

        def on_commit(pid, rec, res, superstep) -> None:
            batch = res.payload
            if batch is None:
                return
            for frag in batch.fragments:
                store.adopt(frag)
            if store.spill_dir is not None:
                store.spill_level(batch.level)

        return on_commit
