"""Pipeline stage 1 — Setup: validate, partition, plan the whole run.

Everything static about a run is decided here, before the first superstep:
the partitioning, the meta-graph, the static merge tree (Alg. 2), the §5
remote-edge placement, the child→parent shipping plan, and — for the
deferred strategy — the exact half-edge rows each merge will pull off the
leaf machines. Precomputing the deferred shipments from the static tree is
what lets the superstep program run in worker *processes*: the program
carries plain data, never a handle to shared mutable planning state.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..core.improvements import DeferredStore, plan_remote_placement, strategy_flags
from ..core.merge_tree import build_merge_tree
from ..graph.graph import Graph
from ..graph.metagraph import build_metagraph
from ..graph.partition import PartitionedGraph
from ..graph.properties import check_eulerian
from ..partitioning import partition as partition_graph
from .context import RunConfig, RunContext
from .program import SuperstepProgram

__all__ = ["Setup", "cached_partition"]


def cached_partition(graph: Graph, cfg: RunConfig, n_parts: int) -> PartitionedGraph | None:
    """The catalog-provided partition, iff it provably matches this run.

    ``cfg.derived["partition_map"]`` entries carry the full key they were
    computed under (partitioner, seed, part count, graph shape). Any
    mismatch — including a scenario handing an augmented or component
    sub-graph down — falls back to computing, so a cached map can only ever
    reproduce exactly what :func:`repro.partitioning.partition` would have
    produced (the partitioners are deterministic for a fixed key).
    """
    derived = cfg.derived
    if not isinstance(derived, dict):
        return None
    entry = derived.get("partition_map")
    if not isinstance(entry, dict):
        return None
    part_of = entry.get("part_of")
    if part_of is None:
        return None
    if (
        entry.get("partitioner") != cfg.partitioner
        or int(entry.get("seed", -1)) != cfg.seed
        or int(entry.get("n_parts", -1)) != n_parts
        or int(entry.get("n_vertices", -1)) != graph.n_vertices
        or int(entry.get("n_edges", -1)) != graph.n_edges
    ):
        return None
    part_of = np.asarray(part_of, dtype=np.int64)
    if part_of.shape != (graph.n_vertices,):
        return None
    return PartitionedGraph(graph, part_of, n_parts)


class Setup:
    """Build every static input of the BSP run and the superstep program."""

    def run(self, graph: Graph, ctx: RunContext) -> SuperstepProgram:
        """Fill ``ctx``'s setup fields; return the program for the engine."""
        cfg = ctx.config
        t_setup = time.perf_counter()
        if cfg.check_input:
            check_eulerian(graph)

        n_parts = max(1, min(cfg.n_parts, graph.n_vertices))
        dedup, deferred = strategy_flags(cfg.strategy)

        pg = cached_partition(graph, cfg, n_parts)
        if pg is None and cfg.repair is not None:
            # The repair session carries the canonical partition map it
            # captured (and extended across deltas) — reusing it is what
            # keeps a repaired run on the same partitioning as the cold
            # run it is compared against.
            pg = cfg.repair.partitioned(graph, n_parts)
        if pg is None:
            pg = partition_graph(graph, n_parts, method=cfg.partitioner, seed=cfg.seed)
        # Static per-partition edge grouping: built here, once, so level-0
        # partition loads inside the BSP run are pure array slicing.
        pg.build_grouped_index()
        mg = build_metagraph(pg)
        tree = build_merge_tree(mg, policy=cfg.matching, seed=cfg.seed)
        placement = plan_remote_placement(pg, tree, dedup=dedup)

        # Remote half-edge placement: what each partition holds at level 0,
        # and (deferred strategy) what stays parked on the leaf machines.
        deferred_store = DeferredStore()
        held0: dict[int, np.ndarray] = {}
        for pid in range(n_parts):
            rows = placement.rows_for[pid]
            if deferred and rows.size:
                lv = placement.merge_level_by_eid[rows[:, 2]]
                held0[pid] = rows[lv == 0]
                for level in np.unique(lv[lv > 0]).tolist():
                    deferred_store.deposit(pid, int(level), rows[lv == level])
            else:
                held0[pid] = rows

        # child -> (parent, superstep at which it must ship its state)
        send_plan: dict[int, tuple[int, int]] = {}
        for level, merges in enumerate(tree.levels):
            for m in merges:
                send_plan[m.child] = (m.parent, level)

        # Deferred shipments, resolved against the static tree: the rows the
        # merge at tree level L pulls off the leaves arrive at the parent's
        # superstep L+1. Recording the leaves' residual state per level gives
        # the Fig. 8 leaf-memory overlay for free.
        extras: dict[tuple[int, int], np.ndarray] = {}
        if deferred:
            leaves = {pid: {pid} for pid in range(n_parts)}
            resident = [deferred_store.resident_longs()]
            for level, merges in enumerate(tree.levels):
                for m in merges:
                    group = leaves[m.parent] | leaves[m.child]
                    rows = deferred_store.ship(sorted(group), level)
                    if rows.size:
                        key = (m.parent, level + 1)
                        extras[key] = (
                            np.concatenate([extras[key], rows])
                            if key in extras
                            else rows
                        )
                    leaves[m.parent] = group
                resident.append(deferred_store.resident_longs())
            ctx.deferred_resident_longs = resident

        ctx.n_parts = n_parts
        ctx.partitioned = pg
        ctx.metagraph = mg
        ctx.tree = tree
        program_kwargs = dict(
            pg=pg,
            held0=held0,
            send_plan=send_plan,
            extras=extras,
            deferred=deferred,
            validate=cfg.validate,
            transport=cfg.transport_name,
            run_token=os.urandom(4).hex(),
        )
        if cfg.repair is not None:
            program = cfg.repair.build_program(**program_kwargs)
        else:
            program = SuperstepProgram(**program_kwargs)
        ctx.setup_seconds = time.perf_counter() - t_setup
        return program
