"""Typed run artifact: configuration, stage products, and the report.

:class:`RunContext` is the single object the pipeline stages communicate
through and the audit artifact benchmarks read: ``Setup`` fills the
partitioning/merge-tree products, the engine run fills ``run_stats`` and the
fragment ``store``, and ``Reconstruct`` fills the circuit. The derived
:class:`ExecutionReport` (kept for its figure-series accessors and the
established tests/benchmarks) is assembled on demand from those fields.

``SCHEMA_VERSION`` stamps every serialized artifact
(:mod:`repro.bench.report_io`) so downstream analysis can detect layout
changes across commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..bsp.accounting import (
    CAT_COPY_SINK,
    CAT_COPY_SRC,
    CAT_CREATE,
    CAT_PHASE1,
    RunStats,
)
from ..core.circuit import EulerCircuit
from ..core.merge_tree import MergeTree
from ..core.pathmap import FragmentStore
from ..graph.graph import Graph
from ..graph.metagraph import MetaGraph
from ..graph.partition import PartitionedGraph

__all__ = ["SCHEMA_VERSION", "RunConfig", "RunContext", "ExecutionReport"]

#: Version of the run-artifact layout (RunContext fields / report JSON).
#: Bump on any field addition, removal or meaning change.
#: v3: columnar data plane — the fragment-store summary gained
#: ``n_item_rows`` (resident packed ItemArray rows).
#: v4: scenario layer — artifacts carry an ``artifact`` kind tag
#: (``"run"`` | ``"scenario"``); scenario artifacts nest one run artifact
#: per sub-run (see :func:`repro.bench.report_io.scenario_to_dict`).
#: v5: job orchestration — a new ``"job"`` artifact kind wraps a scenario
#: artifact with job metadata (id, priority, state), queue/run timings and
#: the pass history (see :func:`repro.bench.report_io.job_to_dict`).
SCHEMA_VERSION = 5


@dataclass(frozen=True)
class RunConfig:
    """Everything that determines a run, resolved before any stage executes."""

    n_parts: int = 4
    partitioner: str = "ldg"
    strategy: str = "eager"
    matching: str = "greedy"
    seed: int = 0
    #: Executor backend name (``serial`` | ``thread`` | ``process`` |
    #: ``remote``); ``None`` keeps the historical default (serial iff
    #: ``workers == 1``).
    executor: str | None = None
    #: Worker count for the thread/process backends.
    workers: int = 1
    spill_dir: Any = None
    validate: bool = False
    verify: bool = False
    check_input: bool = True
    #: Externally-owned :class:`~repro.bsp.executors.SharedPool` (or any
    #: object with a ``session()`` factory). When set, the run executes its
    #: supersteps on the shared pool instead of building a private backend —
    #: the job engine's amortization path. Never serialized; not picklable.
    pool: Any = None
    #: Precomputed derived artifacts from the graph catalog (a mapping with
    #: optional ``partition_map`` / ``eulerize_plan`` entries). Consumers
    #: validate each entry against the actual graph and config before use
    #: and silently recompute on mismatch, so stale or foreign entries can
    #: never change a run's result.
    derived: Any = None
    #: Cooperative cancellation token (a
    #: :class:`~repro.pipeline.cancel.CancelToken`, or anything with a
    #: ``check(where)`` that raises :class:`~repro.errors.RunCancelledError`
    #: and a ``should_stop`` flag). Checked at superstep boundaries and
    #: between scenario sub-runs. Never serialized; stripped before any
    #: process fan-out — all checks run in the submitting process.
    cancel: Any = None
    #: Deterministic fault-injection plan (a
    #: :class:`~repro.faults.FaultPlan`, or ``None`` for the universal
    #: no-faults default). Checked at the same safe points as ``cancel``;
    #: faults only abort or delay a run, never change its result. The job
    #: engine re-arms the plan per retry attempt so recovered runs execute
    #: clean.
    faults: Any = None
    #: Superstep state transport: ``"pickle"`` (portable default) or
    #: ``"shm"`` — child→parent states ship as shared-memory segment
    #: descriptors (:mod:`repro.bsp.shm`) instead of pickled byte blobs.
    #: ``None`` resolves to pickle; ``"shm"`` silently falls back to
    #: pickle when POSIX shared memory is unavailable, so a config is
    #: portable either way. Both transports are bit-parity equivalent.
    transport: str | None = None
    #: Per-task wire codec for the superstep executor
    #: (:data:`repro.bsp.transport.TRANSPORTS`: ``"memory"`` | ``"pickle"``
    #: | ``"shm"`` | ``"socket"``). Orthogonal to ``transport`` above (which
    #: ships whole child→parent states): this round-trips each
    #: ``SuperstepTask``/result triple through a real encode/decode on the
    #: serial and thread backends, and is fixed by construction on the
    #: process (pipe pickle) and remote (socket frame) backends. ``None``
    #: means by-reference. All codecs are bit-parity equivalent.
    task_transport: str | None = None
    #: Worker host addresses for the ``remote`` executor backend — a
    #: ``"host:port,host:port"`` string or a list of ``(host, port)``
    #: pairs. Ignored by every other backend.
    hosts: Any = None
    #: Process-local incremental-repair session (a
    #: :class:`~repro.deltas.RepairSession`, or ``None`` for the
    #: universal cold-run default). When set, ``Setup`` reuses the
    #: session's partition map and builds its repair program, which
    #: replays cached Phase-1 fragments for partitions a graph delta did
    #: not touch. Purely an accelerator: a repaired run is bit-identical
    #: to a cold one by construction. Never serialized; stripped before
    #: any process fan-out or wire crossing — repair only accelerates
    #: in-process runs.
    repair: Any = None

    @property
    def transport_name(self) -> str:
        """The resolved transport (``"shm"`` only when actually usable)."""
        if self.transport in (None, "pickle"):
            return "pickle"
        if self.transport != "shm":
            raise ValueError(
                f"unknown transport {self.transport!r}; use 'pickle' or 'shm'"
            )
        from ..bsp.shm import shm_available

        return "shm" if shm_available() else "pickle"

    @property
    def executor_name(self) -> str:
        """The resolved backend name (single source of truth in bsp)."""
        if self.pool is not None:
            return getattr(self.pool, "name", "pool")
        from ..bsp.executors import resolve_executor_name

        return resolve_executor_name(self.executor, self.workers)


@dataclass
class RunContext:
    """Products of a pipeline run, stage by stage (the audit artifact).

    Field → figure mapping (see ARCHITECTURE.md for the full table):
    ``run_stats`` feeds Figs. 5–9 through the :class:`ExecutionReport`
    accessors; ``setup_seconds``/``phase3_seconds`` complete the Fig. 5
    total; ``deferred_resident_longs`` is the Fig. 8 leaf-memory overlay for
    the §5 deferred strategy; ``tree`` renders the Fig. 3 stage DAG.
    """

    config: RunConfig
    schema_version: int = SCHEMA_VERSION
    #: Input graph summary.
    n_vertices: int = 0
    n_edges: int = 0

    # ---- Setup products ----------------------------------------------------
    #: Actual partition count (requested count clamped to the vertex count).
    n_parts: int = 0
    partitioned: PartitionedGraph | None = None
    metagraph: MetaGraph | None = None
    tree: MergeTree | None = None
    setup_seconds: float = 0.0
    #: Longs resident on leaf machines per level (deferred strategy only).
    deferred_resident_longs: list[int] = field(default_factory=list)

    # ---- SuperstepProgram (BSP run) products -------------------------------
    run_stats: RunStats = field(default_factory=RunStats)
    store: FragmentStore | None = None
    final_states: dict = field(default_factory=dict)

    # ---- Reconstruct products ----------------------------------------------
    circuit: EulerCircuit | None = None
    phase3_seconds: float = 0.0
    verified: bool = False

    @property
    def report(self) -> ExecutionReport:
        """The figure-series view of this run (assembled from the fields)."""
        return ExecutionReport(
            n_parts=self.n_parts,
            strategy=self.config.strategy,
            partitioner=self.config.partitioner,
            matching=self.config.matching,
            run_stats=self.run_stats,
            tree=self.tree if self.tree is not None else MergeTree(n_parts=0),
            phase3_seconds=self.phase3_seconds,
            setup_seconds=self.setup_seconds,
            deferred_resident_longs=list(self.deferred_resident_longs),
        )

    @classmethod
    def for_graph(cls, graph: Graph, config: RunConfig) -> "RunContext":
        return cls(config=config, n_vertices=graph.n_vertices, n_edges=graph.n_edges)


@dataclass
class ExecutionReport:
    """Everything the benchmarks need about one run.

    The raw per-superstep records live in ``run_stats``; the convenience
    accessors below produce exactly the series of the paper's figures.
    """

    n_parts: int
    strategy: str
    partitioner: str
    matching: str
    run_stats: RunStats
    tree: MergeTree
    #: Seconds spent in Phase 3 (not part of the BSP run).
    phase3_seconds: float = 0.0
    #: Seconds spent partitioning + planning (outside the BSP run).
    setup_seconds: float = 0.0
    #: Longs resident on leaf machines per level (deferred strategy only).
    deferred_resident_longs: list[int] = field(default_factory=list)

    @property
    def n_supersteps(self) -> int:
        """Coordination cost; the paper reports ``ceil(log2 n) + 1``."""
        return self.run_stats.n_supersteps

    @property
    def total_seconds(self) -> float:
        """Fig. 5 "Total Time" analogue (BSP wall + setup + Phase 3)."""
        return self.run_stats.total_seconds + self.setup_seconds + self.phase3_seconds

    @property
    def compute_seconds(self) -> float:
        """Fig. 5 "Compute Time" analogue (user code inside supersteps)."""
        return self.run_stats.compute_seconds

    def time_split_rows(self) -> list[dict]:
        """Fig. 6 rows: per (level, partition), seconds per category."""
        rows = []
        for step in self.run_stats.records:
            for rec in step:
                if not rec.timings:
                    continue
                rows.append(
                    {
                        "level": rec.superstep,
                        "pid": rec.pid,
                        CAT_CREATE: rec.timings.get(CAT_CREATE, 0.0),
                        CAT_COPY_SRC: rec.timings.get(CAT_COPY_SRC, 0.0),
                        CAT_COPY_SINK: rec.timings.get(CAT_COPY_SINK, 0.0),
                        CAT_PHASE1: rec.timings.get(CAT_PHASE1, 0.0),
                    }
                )
        return rows

    def phase1_points(self) -> list[dict]:
        """Fig. 7 points: expected ``|B|+|I|+|L|`` vs observed Phase-1 secs."""
        pts = []
        for step in self.run_stats.records:
            for rec in step:
                if "phase1_cost" not in rec.census:
                    continue
                pts.append(
                    {
                        "level": rec.superstep,
                        "pid": rec.pid,
                        "expected_cost": rec.census["phase1_cost"],
                        "observed_seconds": rec.timings.get(CAT_PHASE1, 0.0),
                    }
                )
        return pts

    def state_by_level(self) -> list[dict]:
        """Fig. 8 series (cumulative / average Longs per level)."""
        return self.run_stats.state_by_level()

    def census_rows(self) -> list[dict]:
        """Fig. 9 rows (per level & partition vertex/edge census)."""
        return self.run_stats.census_table()

    def stage_dag(self) -> str:
        """Text rendering of the execution DAG (the paper's Fig. 3 analogue).

        One stage per superstep: which partitions ran Phase 1 at that level,
        and which child→parent state transfers crossed the following
        barrier, mirroring the Spark stage DAG the paper screenshots.
        """
        lines = []
        for s, step in enumerate(self.run_stats.records):
            ran = sorted(r.pid for r in step if "phase1_tour" in r.timings)
            lines.append(
                f"stage {s} (level {s}): Phase1 on partitions "
                f"{ran if ran else '[]'}"
            )
            transfers = sorted(
                (m.child, m.parent)
                for m in (self.tree.levels[s] if s < len(self.tree.levels) else [])
            )
            if transfers:
                arrows = ", ".join(f"P{c}->P{p}" for c, p in transfers)
                lines.append(f"  barrier; shuffle: {arrows}")
            else:
                lines.append("  barrier; done" if s == len(self.run_stats.records) - 1
                             else "  barrier")
        return "\n".join(lines)
