"""The staged run pipeline: Setup → SuperstepProgram → Reconstruct.

The paper's algorithm is a pipeline (validate → partition → merge tree →
per-level Phase 1 + state transfer → Phase 3); this package makes each stage
an explicit, reusable unit communicating through a typed
:class:`~repro.pipeline.context.RunContext` — the single audit artifact the
benchmarks read. The compute stage is a picklable
:class:`~repro.pipeline.program.SuperstepProgram`, which is what lets the
BSP engine run it on interchangeable executor backends (serial, thread,
process) with identical results. See ARCHITECTURE.md for the stage diagram
and the RunContext → figure field mapping.
"""

from .cancel import CancelToken
from .context import SCHEMA_VERSION, ExecutionReport, RunConfig, RunContext
from .program import SuperstepProgram
from .reconstruct import Reconstruct
from .runner import run_pipeline
from .setup import Setup

__all__ = [
    "SCHEMA_VERSION",
    "CancelToken",
    "ExecutionReport",
    "RunConfig",
    "RunContext",
    "Setup",
    "SuperstepProgram",
    "Reconstruct",
    "run_pipeline",
]
