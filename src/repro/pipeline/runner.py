"""Orchestrate the staged pipeline: Setup → BSP run → Reconstruct.

:func:`run_pipeline` is the engine-room behind
:func:`repro.core.driver.find_euler_circuit`; it returns the full
:class:`~repro.pipeline.context.RunContext` so benchmarks and tools can
audit every stage product, not just the circuit.
"""

from __future__ import annotations

import numpy as np

from ..bsp.accounting import CAT_COPY_SINK, CAT_COPY_SRC, CAT_CREATE, CAT_PHASE1
from ..bsp.engine import BSPEngine
from ..core.circuit import EulerCircuit
from ..core.pathmap import FragmentStore
from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph
from ..graph.properties import check_eulerian
from ..obs import Span, record_stage
from .context import RunConfig, RunContext
from .reconstruct import Reconstruct
from .setup import Setup

__all__ = ["run_pipeline"]

#: Superstep stage names derived from the Fig. 6 timing categories: the
#: BSP engine already times every partition-step category, so the runner
#: reports phase splits from :class:`~repro.bsp.accounting.RunStats`
#: instead of re-instrumenting the inner loop.
_STAGE_CATEGORIES = (
    ("phase1", (CAT_PHASE1,)),
    ("merge", (CAT_COPY_SINK, CAT_CREATE)),
    ("placement", (CAT_COPY_SRC,)),
)


def _record_superstep_stages(run_stats) -> None:
    """Report per-superstep phase1/merge/placement splits as stage spans."""
    for s, step in enumerate(run_stats.records):
        totals: dict[str, float] = {}
        for rec in step:
            for cat, sec in rec.timings.items():
                totals[cat] = totals.get(cat, 0.0) + sec
        for stage, cats in _STAGE_CATEGORIES:
            wall = sum(totals.get(cat, 0.0) for cat in cats)
            if wall > 0.0:
                record_stage(stage, wall, superstep=s)


def _make_checkpoint(token, faults):
    """The superstep-boundary hook: cancel check + fault injection.

    Both ride the same safe points so an injected fault interrupts a run
    exactly where a real failure (cancel, deadline, worker death) would —
    never mid-superstep, never with shared structures inconsistent.
    """
    if token is None and not faults:
        return None

    def check() -> None:
        if token is not None:
            token.check("superstep boundary")
        if faults:
            faults.superstep()

    return check


def run_pipeline(graph: Graph, config: RunConfig) -> RunContext:
    """Run the full partition-centric pipeline; returns the run artifact.

    When ``config.cancel`` carries a
    :class:`~repro.pipeline.cancel.CancelToken`, the run checks it at the
    start, at every superstep boundary and before Phase 3, raising
    :class:`~repro.errors.RunCancelledError` at the first tripped check.
    """
    token = config.cancel
    faults = config.faults
    if token is not None:
        token.check("pipeline start")
    ctx = RunContext.for_graph(graph, config)
    ctx.store = FragmentStore(spill_dir=config.spill_dir)

    if graph.n_edges == 0:
        if config.check_input:
            check_eulerian(graph)
        ctx.circuit = EulerCircuit(
            vertices=np.empty(0, dtype=np.int64),
            edge_ids=np.empty(0, dtype=np.int64),
        )
        ctx.partitioned = PartitionedGraph(
            graph, np.zeros(graph.n_vertices, dtype=np.int64), 1
        )
        return ctx

    with Span("setup"):
        program = Setup().run(graph, ctx)

    n_levels = len(ctx.tree.levels) + 1
    # A shared pool (job engine) supersedes the per-run backend: the engine
    # gets a session whose close() is a no-op, so pool lifecycle stays with
    # the pool's owner while this run still goes through the normal barrier
    # and commit machinery.
    executor = config.pool.session() if config.pool is not None else config.executor
    engine = BSPEngine(max_workers=config.workers, executor=executor,
                       transport=config.task_transport, hosts=config.hosts)
    states = {pid: None for pid in range(ctx.n_parts)}
    try:
        ctx.final_states, ctx.run_stats = engine.run(
            states,
            program,
            max_supersteps=n_levels + 2,
            on_commit=program.make_commit(ctx.store),
            check_abort=_make_checkpoint(token, faults),
        )
    finally:
        # Janitor: a run that aborts between ship and receive (cancel,
        # timeout, worker crash) would strand its message segments; sweep
        # everything carrying this run's token.
        program.cleanup_transport()

    _record_superstep_stages(ctx.run_stats)
    if token is not None:
        token.check("before reconstruct")
    with Span("phase3"):
        Reconstruct().run(graph, ctx)
    return ctx
