"""Cooperative cancellation: a cancel flag + optional deadline for one run.

Nothing in the pipeline is interrupted preemptively — a superstep that has
started always completes, so every shared structure (fragment store, spill
directory, catalog pins) stays consistent. Instead a :class:`CancelToken`
is threaded through :class:`~repro.pipeline.context.RunConfig` and checked
at the run's safe points:

* the start of :func:`~repro.pipeline.runner.run_pipeline` and every
  superstep boundary (the BSP engine's ``check_abort`` hook) and before
  Phase 3;
* between scenario sub-runs in :mod:`repro.scenarios.base`.

A tripped check raises :class:`~repro.errors.RunCancelledError`, which the
job engine maps to the CANCELLED (cancel) or FAILED (deadline) terminal
state with the partial pass history persisted. The token is thread-safe
and deliberately never crosses a process boundary: all checks run in the
submitting process (the BSP superstep loop and the scenario layer), so
cancellation works identically under the serial, thread and process
backends and both shared pools.
"""

from __future__ import annotations

import threading
import time

from ..errors import RunCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """Cancel flag + optional deadline, checked at run safe points.

    Parameters
    ----------
    timeout_seconds:
        Optional wall-clock budget. The clock starts at construction and
        restarts at every :meth:`arm` — the job engine arms the token when
        the job leaves the queue, so the budget covers *run* time, not
        queue latency.
    """

    def __init__(self, timeout_seconds: float | None = None):
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0")
        self.timeout_seconds = timeout_seconds
        self._cancelled = threading.Event()
        self._deadline: float | None = None
        self.arm()

    def arm(self) -> None:
        """(Re)start the deadline clock (no-op without a timeout)."""
        if self.timeout_seconds is not None:
            self._deadline = time.monotonic() + self.timeout_seconds

    def cancel(self) -> None:
        """Request a stop; the run obeys at its next checkpoint."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    @property
    def should_stop(self) -> bool:
        """True once either the flag is set or the deadline elapsed."""
        return self.cancelled or self.expired

    def check(self, where: str = "") -> None:
        """Raise :class:`~repro.errors.RunCancelledError` when tripped.

        An explicit cancel wins over a simultaneously-expired deadline so
        ``DELETE /jobs/<id>`` always lands on CANCELLED, never FAILED.
        """
        if self.cancelled:
            raise RunCancelledError("cancel", where)
        if self.expired:
            raise RunCancelledError("timeout", where, self.timeout_seconds)
