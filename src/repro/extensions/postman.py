"""Chinese Postman routes: Euler circuits on non-Eulerian graphs.

The paper's stated future work (§6): *"We will also consider generalizing
this to non Eulerian graphs, by allowing edge revisits."* A closed walk
covering every edge at least once, with revisits minimized, is the Chinese
Postman Problem [Edmonds & Johnson 1973 — the paper's ref 3].

The classical construction: pair up the odd-degree vertices and duplicate a
shortest path between each pair (each duplicated edge is one *revisit*,
a.k.a. deadheading); the multigraph becomes Eulerian and its Euler circuit
— found here with the paper's distributed algorithm — maps back to a
covering walk of the original graph. Exact CPP needs minimum-weight perfect
matching (O(|V|^3)); we use the standard greedy nearest-neighbour matching
on BFS distances, a ~2-approximation adequate for route planning and for
exercising the edge-revisit code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.circuit import EulerCircuit
from ..core.driver import find_euler_circuit
from ..errors import DisconnectedGraphError, NotEulerianError
from ..graph.graph import Graph
from ..graph.properties import n_edge_components, odd_vertices
from ..graph.traversal import bfs_distances, shortest_path

__all__ = ["PostmanRoute", "chinese_postman_route"]


@dataclass(frozen=True)
class PostmanRoute:
    """A closed walk covering every edge at least once.

    Attributes
    ----------
    vertices:
        Vertex sequence of the walk (first == last).
    edge_ids:
        Original-graph edge id per step; duplicated (revisited) edges repeat
        their id.
    n_revisits:
        Number of steps that traverse an already-covered edge again.
    deadhead_fraction:
        ``n_revisits / n_edges`` — the route-planning overhead.
    """

    vertices: np.ndarray
    edge_ids: np.ndarray
    n_revisits: int
    deadhead_fraction: float

    @property
    def n_steps(self) -> int:
        """Total steps in the walk (= |E| + revisits)."""
        return int(self.edge_ids.shape[0])

    @property
    def is_closed(self) -> bool:
        """True when the walk returns to its start."""
        return self.n_steps == 0 or int(self.vertices[0]) == int(self.vertices[-1])


def _greedy_odd_matching(graph: Graph, odd: np.ndarray) -> list[tuple[int, int]]:
    """Nearest-neighbour pairing of odd vertices by BFS distance."""
    remaining = [int(v) for v in odd]
    pairs: list[tuple[int, int]] = []
    while remaining:
        a = remaining.pop(0)
        dist = bfs_distances(graph, a)
        best_i, best_d = None, None
        for i, b in enumerate(remaining):
            d = int(dist[b])
            if d >= 0 and (best_d is None or d < best_d):
                best_i, best_d = i, d
        if best_i is None:
            raise DisconnectedGraphError(
                f"odd vertex {a} cannot reach any other odd vertex",
                num_components=n_edge_components(graph),
            )
        pairs.append((a, remaining.pop(best_i)))
    return pairs


def chinese_postman_route(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    seed: int = 0,
) -> PostmanRoute:
    """Compute a closed covering walk (Euler circuit with edge revisits).

    Eulerizes the graph by duplicating shortest paths between greedily
    matched odd-degree vertices, runs the paper's distributed algorithm on
    the resulting multigraph, and maps edge ids back to the original graph.

    Raises
    ------
    DisconnectedGraphError
        If the edges span several components (cover each separately).
    """
    if graph.n_edges == 0:
        return PostmanRoute(
            np.empty(0, np.int64), np.empty(0, np.int64), 0, 0.0
        )
    if n_edge_components(graph) > 1:
        raise DisconnectedGraphError(
            "postman route requires edges in a single component",
            num_components=n_edge_components(graph),
        )

    odd = odd_vertices(graph)
    dup_u: list[int] = []
    dup_v: list[int] = []
    dup_orig: list[int] = []  # original eid each duplicate revisits
    for a, b in _greedy_odd_matching(graph, odd):
        verts, eids = shortest_path(graph, a, b)
        for (x, y), e in zip(zip(verts[:-1], verts[1:]), eids):
            dup_u.append(x)
            dup_v.append(y)
            dup_orig.append(e)

    augmented = graph.with_extra_edges(dup_u, dup_v)
    result = find_euler_circuit(
        augmented,
        n_parts=n_parts,
        partitioner=partitioner,
        strategy=strategy,
        seed=seed,
    )
    circ: EulerCircuit = result.circuit

    # Map augmented edge ids back: ids >= graph.n_edges are duplicates.
    m = graph.n_edges
    mapped = circ.edge_ids.copy()
    dup_mask = mapped >= m
    if dup_mask.any():
        orig = np.array(dup_orig, dtype=np.int64)
        mapped[dup_mask] = orig[mapped[dup_mask] - m]
    n_rev = int(dup_mask.sum())
    return PostmanRoute(
        vertices=circ.vertices,
        edge_ids=mapped,
        n_revisits=n_rev,
        deadhead_fraction=n_rev / m,
    )
