"""Chinese Postman routes — façade over the ``postman`` scenario.

The paper's stated future work (§6): *"We will also consider generalizing
this to non Eulerian graphs, by allowing edge revisits."* A closed walk
covering every edge at least once, with revisits minimized, is the Chinese
Postman Problem [Edmonds & Johnson 1973 — the paper's ref 3]. The
eulerization (greedy odd-vertex matching + duplicated shortest paths) and
the edge-id mapping live in :mod:`repro.scenarios.postman`; this module
keeps the established :class:`PostmanRoute` return type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.graph import Graph
from ..pipeline import RunConfig
from ..scenarios import run_scenario

__all__ = ["PostmanRoute", "chinese_postman_route"]


@dataclass(frozen=True)
class PostmanRoute:
    """A closed walk covering every edge at least once.

    Attributes
    ----------
    vertices:
        Vertex sequence of the walk (first == last).
    edge_ids:
        Original-graph edge id per step; duplicated (revisited) edges repeat
        their id.
    n_revisits:
        Number of steps that traverse an already-covered edge again.
    deadhead_fraction:
        ``n_revisits / n_edges`` — the route-planning overhead.
    """

    vertices: np.ndarray
    edge_ids: np.ndarray
    n_revisits: int
    deadhead_fraction: float

    @property
    def n_steps(self) -> int:
        """Total steps in the walk (= |E| + revisits)."""
        return int(self.edge_ids.shape[0])

    @property
    def is_closed(self) -> bool:
        """True when the walk returns to its start."""
        return self.n_steps == 0 or int(self.vertices[0]) == int(self.vertices[-1])


def chinese_postman_route(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    seed: int = 0,
    *,
    matching: str = "greedy",
    executor: str | None = None,
    engine_workers: int = 1,
    spill_dir=None,
    validate: bool = False,
    verify: bool = False,
) -> PostmanRoute:
    """Compute a closed covering walk (Euler circuit with edge revisits).

    Eulerizes the graph by duplicating shortest paths between greedily
    matched odd-degree vertices, runs the paper's distributed algorithm on
    the resulting multigraph — with the full pipeline configuration
    (executor backend, workers, spill, validation, verification) — and
    maps edge ids back to the original graph.

    Raises
    ------
    DisconnectedGraphError
        If the edges span several components (cover each separately).
    """
    config = RunConfig(
        n_parts=n_parts,
        partitioner=partitioner,
        strategy=strategy,
        matching=matching,
        seed=seed,
        executor=executor,
        workers=engine_workers,
        spill_dir=spill_dir,
        validate=validate,
        verify=verify,
    )
    result = run_scenario(graph, "postman", config)
    walk = result.circuit
    return PostmanRoute(
        vertices=walk.vertices,
        edge_ids=walk.edge_ids,
        n_revisits=int(result.metrics["n_revisits"]),
        deadhead_fraction=float(result.metrics["deadhead_fraction"]),
    )
