"""Distributed Euler *paths* (open walks) via the virtual-edge reduction.

A connected graph with exactly two odd-degree vertices has an Euler path
between them (but no circuit). The classical reduction: join the odd pair
with a virtual edge, find an Euler circuit — here with the paper's
distributed algorithm — then rotate the circuit so the virtual edge comes
last and cut it off. Needed by the DNA-assembly use case the paper cites
(linear genomes give Euler paths, not circuits).
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import EulerCircuit, verify_circuit
from ..core.driver import find_euler_circuit
from ..errors import NotEulerianError
from ..graph.graph import Graph
from ..graph.properties import euler_path_endpoints, odd_vertices

__all__ = ["find_euler_path"]


def find_euler_path(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    seed: int = 0,
    verify: bool = False,
) -> EulerCircuit:
    """Find an Euler path (or circuit) with the distributed algorithm.

    For a graph with exactly two odd vertices, returns an open walk between
    them using every edge exactly once; for an Eulerian graph, delegates to
    :func:`~repro.core.driver.find_euler_circuit`.

    Raises
    ------
    NotEulerianError
        If the graph has more than two odd-degree vertices (no Euler path)
        or its edges are disconnected.
    """
    ends = euler_path_endpoints(graph)
    if ends is None:
        odd = odd_vertices(graph)
        if odd.size == 0:
            result = find_euler_circuit(
                graph, n_parts=n_parts, partitioner=partitioner,
                strategy=strategy, seed=seed, verify=verify,
            )
            return result.circuit
        raise NotEulerianError(
            f"no Euler path: {odd.size} odd-degree vertices (need 0 or 2)",
            odd_vertices=odd[:64].tolist(),
        )

    a, b = ends
    augmented = graph.with_extra_edges([a], [b])
    virtual_eid = graph.n_edges
    result = find_euler_circuit(
        augmented, n_parts=n_parts, partitioner=partitioner,
        strategy=strategy, seed=seed,
    )
    circ = result.circuit

    # Rotate the circuit so the virtual edge is the last step, then cut it.
    eids = circ.edge_ids
    verts = circ.vertices
    k = int(np.flatnonzero(eids == virtual_eid)[0])
    # Closed walk: verts[0] == verts[-1]; rotate to start just after step k.
    rot_e = np.concatenate([eids[k + 1 :], eids[:k]])
    rot_v = np.concatenate([verts[k + 1 : -1], verts[: k + 1]])
    path = EulerCircuit(vertices=rot_v, edge_ids=rot_e)
    if verify:
        verify_circuit(graph, path, require_closed=False)
    return path
