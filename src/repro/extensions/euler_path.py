"""Distributed Euler *paths* (open walks) — façade over the ``path`` scenario.

A connected graph with exactly two odd-degree vertices has an Euler path
between them (but no circuit). The classical reduction — join the odd pair
with a virtual edge, find an Euler circuit distributedly, rotate it so the
virtual edge comes last and cut it off — lives in
:mod:`repro.scenarios.path`; this module keeps the established call
signature. Needed by the DNA-assembly use case the paper cites (linear
genomes give Euler paths, not circuits).
"""

from __future__ import annotations

from ..core.circuit import EulerCircuit
from ..graph.graph import Graph
from ..pipeline import RunConfig
from ..scenarios import run_scenario

__all__ = ["find_euler_path"]


def find_euler_path(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    seed: int = 0,
    verify: bool = False,
    *,
    matching: str = "greedy",
    executor: str | None = None,
    engine_workers: int = 1,
    spill_dir=None,
    validate: bool = False,
) -> EulerCircuit:
    """Find an Euler path (or circuit) with the distributed algorithm.

    For a graph with exactly two odd vertices, returns an open walk between
    them using every edge exactly once; for an Eulerian graph, the circuit.
    The full pipeline configuration is forwarded: ``executor`` /
    ``engine_workers`` select the BSP backend, ``spill_dir`` spills
    fragment bodies, ``validate`` checks Lemmas 1–3, and ``verify`` checks
    both the augmented circuit *and* the rotated open walk.

    Raises
    ------
    NotEulerianError
        If the graph has more than two odd-degree vertices (no Euler path)
        or its edges are disconnected.
    """
    config = RunConfig(
        n_parts=n_parts,
        partitioner=partitioner,
        strategy=strategy,
        matching=matching,
        seed=seed,
        executor=executor,
        workers=engine_workers,
        spill_dir=spill_dir,
        validate=validate,
        verify=verify,
    )
    return run_scenario(graph, "path", config).circuit
