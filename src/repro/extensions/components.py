"""Per-component Euler circuits for graphs with several edge components.

The paper treats the graph WLOG as connected; real inputs often are not.
This extension decomposes the graph into edge-bearing connected components
and runs the distributed algorithm on each, returning one circuit per
component with vertex ids mapped back to the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.circuit import EulerCircuit
from ..core.driver import find_euler_circuit
from ..graph.graph import Graph
from ..graph.properties import connected_components

__all__ = ["ComponentCircuit", "find_component_circuits"]


@dataclass(frozen=True)
class ComponentCircuit:
    """One component's circuit, in original-graph vertex/edge ids."""

    component: int
    circuit: EulerCircuit


def find_component_circuits(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    seed: int = 0,
) -> list[ComponentCircuit]:
    """Find an Euler circuit in every edge-bearing connected component.

    Each component must individually have all-even degrees (raises
    :class:`~repro.errors.NotEulerianError` naming the offenders otherwise).
    Components get partition counts proportional to their edge share (at
    least 1). Returns components ordered by their smallest vertex id.
    """
    if graph.n_edges == 0:
        return []
    comp = connected_components(graph)
    edge_comp = comp[graph.edge_u]
    labels = np.unique(edge_comp)
    out: list[ComponentCircuit] = []
    for label in labels.tolist():
        eids = np.flatnonzero(edge_comp == label)
        verts = np.flatnonzero(comp == label)
        remap = np.full(graph.n_vertices, -1, dtype=np.int64)
        remap[verts] = np.arange(verts.size, dtype=np.int64)
        sub = Graph(
            verts.size,
            remap[graph.edge_u[eids]],
            remap[graph.edge_v[eids]],
        )
        share = max(1, round(n_parts * eids.size / graph.n_edges))
        res = find_euler_circuit(
            sub, n_parts=share, partitioner=partitioner,
            strategy=strategy, seed=seed,
        )
        circ = res.circuit
        out.append(
            ComponentCircuit(
                component=int(label),
                circuit=EulerCircuit(
                    vertices=verts[circ.vertices],
                    edge_ids=eids[circ.edge_ids],
                ),
            )
        )
    return out
