"""Per-component Euler circuits — façade over the ``components`` scenario.

The paper treats the graph WLOG as connected; real inputs often are not.
The decomposition, the largest-remainder partition-budget split, and the
batch execution (optionally fanned out across a process pool) live in
:mod:`repro.scenarios.components`; this module keeps the established
:class:`ComponentCircuit` return type.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.circuit import EulerCircuit
from ..graph.graph import Graph
from ..pipeline import RunConfig
from ..scenarios import run_scenario

__all__ = ["ComponentCircuit", "find_component_circuits"]


@dataclass(frozen=True)
class ComponentCircuit:
    """One component's circuit, in original-graph vertex/edge ids."""

    component: int
    circuit: EulerCircuit


def find_component_circuits(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    seed: int = 0,
    *,
    matching: str = "greedy",
    executor: str | None = None,
    engine_workers: int = 1,
    spill_dir=None,
    validate: bool = False,
    verify: bool = False,
) -> list[ComponentCircuit]:
    """Find an Euler circuit in every edge-bearing connected component.

    Each component must individually have all-even degrees (raises
    :class:`~repro.errors.NotEulerianError` naming the offenders otherwise).
    The ``n_parts`` budget is split across components proportionally to
    their edge counts by largest-remainder allocation — at least one each,
    and never more than ``n_parts`` in total (unless there are more
    components than partitions). With ``executor="process"`` and
    ``engine_workers > 1`` the components run concurrently, one process
    per component. Returns components ordered by their smallest vertex id.
    """
    config = RunConfig(
        n_parts=n_parts,
        partitioner=partitioner,
        strategy=strategy,
        matching=matching,
        seed=seed,
        executor=executor,
        workers=engine_workers,
        spill_dir=spill_dir,
        validate=validate,
        verify=verify,
    )
    result = run_scenario(graph, "components", config)
    return [
        ComponentCircuit(component=int(sub.meta["label"]), circuit=circ)
        for sub, circ in zip(result.sub_runs, result.circuits)
    ]
