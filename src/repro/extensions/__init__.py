"""Extensions beyond the paper's evaluated scope (its §6 future work).

* :func:`chinese_postman_route` — non-Eulerian graphs via minimized edge
  revisits (the paper's "generalizing to non Eulerian graphs, by allowing
  edge revisits").
* :func:`find_euler_path` — open Euler walks via the virtual-edge reduction.
* :func:`find_component_circuits` — one circuit per connected component.

All three are thin compatibility façades over :mod:`repro.scenarios`,
which runs each workload through the full staged pipeline (executor
backends, spill, validation, verification, run artifacts). New code
should prefer :func:`repro.scenarios.run_scenario`.
"""

from .components import ComponentCircuit, find_component_circuits
from .euler_path import find_euler_path
from .postman import PostmanRoute, chinese_postman_route

__all__ = [
    "ComponentCircuit",
    "find_component_circuits",
    "find_euler_path",
    "PostmanRoute",
    "chinese_postman_route",
]
