"""Batch mode: execute a JSONL job file and emit a ``run_table.csv`` report.

The offline counterpart of the serve API: one JSON object per line
describes a job —

::

    {"input": "graphs/city.el", "scenario": "postman",
     "config": {"n_parts": 4, "verify": true}, "priority": 1, "repeat": 3}

``input`` is an edge-list file, an NPZ file, or a named benchmark workload
(``G40k/P4``, ``POSTMAN/RMAT``, ...); ``repeat`` submits the same job N
times (the warm-path measurement shape). The whole batch goes through a
:class:`~repro.jobs.engine.JobEngine` — shared pool, warm catalog — and
the report has **one row per job** with the queueing/latency/throughput
columns of a ``run_table.csv`` (throughput is walk edges per run-second).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..graph.io import atomic_write, load_edge_list, load_npz
from .engine import JobEngine
from .queue import DONE

__all__ = ["REPORT_COLUMNS", "load_job_specs", "run_batch", "write_report_csv"]

#: ``run_table.csv`` column order — one row per job.
REPORT_COLUMNS = [
    "job_id",
    "scenario",
    "graph",
    "graph_key",
    "n_vertices",
    "n_edges",
    "n_parts",
    "executor",
    "priority",
    "state",
    "queue_latency_s",
    "run_wall_s",
    "walk_edges",
    "throughput_edges_per_s",
    "artifact",
    "error",
]


def load_job_specs(path) -> list[dict]:
    """Parse a JSONL job file (blank lines and ``#`` comments allowed)."""
    specs = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            spec = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad JSON job line: {exc}") from exc
        if "input" not in spec:
            raise ValueError(f"{path}:{lineno}: job line needs an 'input'")
        specs.append(spec)
    return specs


def _load_input(name: str):
    """Resolve a job's ``input`` to ``(graph, display_name)``."""
    from ..bench import workloads as wl

    if name in wl.PAPER_WORKLOADS:
        return wl.load_workload(name)[0], name
    if name in wl.SCENARIO_WORKLOADS:
        return wl.load_scenario_workload(name)[0], name
    path = Path(name)
    if path.suffix == ".npz":
        return load_npz(path)[0], path.name
    return load_edge_list(path), path.name


def run_batch(
    specs: list[dict],
    engine: JobEngine,
    timeout: float | None = None,
) -> list[dict]:
    """Submit every spec (expanding ``repeat``), wait, and build report rows.

    Jobs run concurrently across the engine's dispatchers; rows come back
    in submission order regardless of completion order.
    """
    from ..jobs.server import config_from_dict

    submitted = []
    key_by_input: dict[str, str] = {}
    for spec in specs:
        name = str(spec["input"])
        key = key_by_input.get(name)
        if key is None:
            graph, display = _load_input(name)
            key = engine.catalog.put(graph, name=display)
            key_by_input[name] = key
        config = config_from_dict(spec.get("config", {}))
        for _ in range(int(spec.get("repeat", 1))):
            handle = engine.submit(
                str(spec.get("scenario", "circuit")),
                graph_key=key,
                config=config,
                priority=int(spec.get("priority", 0)),
                name=name,
            )
            submitted.append(handle)

    rows = []
    for handle in submitted:
        handle.wait(timeout)
        job = engine.job(handle.job_id)
        walk_edges = (
            int(sum(c.n_edges for c in job.result.circuits))
            if job.state == DONE and job.result is not None
            else 0
        )
        run_wall = job.run_seconds or 0.0
        rows.append({
            "job_id": job.id,
            "scenario": job.scenario,
            "graph": job.graph_name,
            "graph_key": job.graph_key,
            "n_vertices": job.n_vertices,
            "n_edges": job.n_edges,
            "n_parts": job.config.n_parts,
            "executor": job.executor or job.config.executor_name,
            "priority": job.priority,
            "state": job.state,
            "queue_latency_s": job.queue_latency_seconds,
            "run_wall_s": run_wall,
            "walk_edges": walk_edges,
            "throughput_edges_per_s": (walk_edges / run_wall) if run_wall else 0.0,
            "artifact": job.artifact_path or "",
            "error": job.error or "",
        })
    return rows


def write_report_csv(rows: list[dict], path) -> Path:
    """Write report rows as CSV (atomic; one row per job)."""
    path = Path(path)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=REPORT_COLUMNS)
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k, "") for k in REPORT_COLUMNS})
    with atomic_write(path, suffix=".csv") as fh:
        fh.write(buf.getvalue().encode())
    return path
