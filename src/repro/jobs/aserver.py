"""Async serving front end: one event loop instead of a thread per client.

The threaded front end spends a thread (and its GIL churn) on every open
connection, so a burst of cheap ``GET /jobs/<id>`` polls competes with
result serialization for scheduler slots. Here the cheap traffic —
submit / status / healthz / cancel — is multiplexed on a single
``asyncio.start_server`` loop with HTTP/1.1 keep-alive: parked clients
cost a coroutine, not a thread. Route handling still happens through the
exact same :class:`~repro.jobs.server.JobApi` (run in the default executor
so a large inline-graph submit cannot stall the accept loop), so the two
front ends cannot drift.

Only the HTTP subset the API needs is implemented: request line, headers,
``Content-Length`` bodies (no chunked uploads — responses are always
fixed-length JSON). The lifecycle mirrors ``ThreadingHTTPServer`` —
``server_address`` is known at construction (the listening socket binds
synchronously), ``serve_forever()`` blocks, ``shutdown()`` is
thread-safe, ``server_close()`` is idempotent — so
:func:`repro.jobs.server.serve_forever` and the tests drive either front
end identically.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

from .engine import JobEngine
from .server import JobApi

__all__ = ["AsyncJobServer"]

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 410: "Gone",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class AsyncJobServer:
    """Asyncio HTTP/1.1 front end over a :class:`JobApi`.

    Parameters mirror :func:`repro.jobs.server.make_server`; ``port=0``
    binds an ephemeral port, readable from ``server_address`` immediately
    (the socket is bound in the constructor, the loop starts in
    :meth:`serve_forever`).
    """

    def __init__(self, engine: JobEngine, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = True):
        self.api = JobApi(engine)
        self.quiet = quiet
        self._sock = socket.create_server((host, port))
        self._sock.setblocking(False)
        self.server_address = self._sock.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._tasks: set = set()
        self._started = threading.Event()
        self._finished = threading.Event()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking call)."""
        try:
            asyncio.run(self._serve())
        finally:
            self._finished.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._client, sock=self._sock)
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            try:
                server.close()
                await server.wait_closed()
            except (OSError, ValueError):  # pragma: no cover - racing close
                pass
            # Keep-alive clients are parked on readline; cancel them so
            # shutdown never waits on an idle connection.
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)

    def wait_started(self, timeout: float | None = 5.0) -> bool:
        """Block until the accept loop is up (for thread-driven tests)."""
        return self._started.wait(timeout)

    def shutdown(self) -> None:
        """Stop the loop from any thread (no-op before/after serving)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)

    def server_close(self) -> None:
        """Close the listening socket (idempotent).

        Safe to call right after :meth:`shutdown`: it waits for the loop
        to finish tearing itself down first, so the socket is never pulled
        out from under the loop's own close path.
        """
        if not self._closed:
            self._closed = True
            if self._started.is_set():
                self._finished.wait(timeout=5.0)
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already closed by the loop
                pass

    # -- connection handling -----------------------------------------------

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    return
                try:
                    method, path, version = (
                        request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
                    )
                except ValueError:
                    await self._respond(writer, 400,
                                        {"error": "malformed request line"},
                                        keep_alive=False)
                    return
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                # The engine/catalog calls are thread-safe but blocking;
                # the default executor keeps the accept loop responsive
                # while a large submit serializes its graph.
                status, payload = await asyncio.get_running_loop().run_in_executor(
                    None, self.api.handle, method, path, body
                )
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    return
        except (asyncio.CancelledError, asyncio.IncompleteReadError,
                ConnectionResetError, BrokenPipeError):
            pass  # client went away (or shutdown cancelled the task)
        finally:
            self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, keep_alive: bool) -> None:
        if isinstance(payload, str):
            # TextResponse (e.g. /metrics): ship verbatim, not JSON.
            content_type = getattr(payload, "content_type", "text/plain")
            body = payload.encode()
        else:
            content_type = "application/json"
            body = json.dumps(payload, default=float).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            + ("Retry-After: 1\r\n" if status in (429, 503) else "")
            + "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
