"""Shared supervision plumbing for the dispatcher pools and the engine.

Before this module, three near-identical ``supervisor_stats()`` grew side
by side — :class:`~repro.jobs.dispatch.ForkedWorkerPool`,
:class:`~repro.jobs.remote.RemoteHostPool`, and
:class:`~repro.jobs.engine.JobEngine` each hand-rolled its breaker
bookkeeping and stats dict. The common pieces now live here exactly once:

* :class:`RollingBreaker` — the respawn-budget circuit breaker (count
  failures in a rolling window; past the budget, open for a cooldown).
  The forked pool charges worker respawns against it; anything else that
  needs "stop feeding a crash loop" semantics reuses it.
* :class:`SupervisedPool` — the mixin both pools inherit: hung-kill
  counting (mirrored into the metrics registry), the shared
  ``supervisor_base()`` stats block whose key set
  (:data:`SUPERVISOR_BASE_KEYS`) is pinned by a regression test so the
  two pools can never drift apart again.
* :func:`engine_supervisor_stats` — the engine-level assembly that nests
  the pools' and journal's stats, moved out of ``engine.py`` so the whole
  ``/healthz`` fault-tolerance document is built in one place.

The old ``supervisor_stats()`` methods survive as thin views over these
helpers — ``/healthz`` consumers and existing tests see identical keys.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..obs import MetricsRegistry, get_registry

__all__ = [
    "SUPERVISOR_BASE_KEYS",
    "RollingBreaker",
    "SupervisedPool",
    "engine_supervisor_stats",
]

#: The stats keys every supervised pool reports — the merged key set the
#: regression test pins (``tests/obs/test_supervisor_stats.py``).
SUPERVISOR_BASE_KEYS = frozenset({
    "hung_kills",
    "hang_timeout",
    "circuit_open",
    "circuit_reset_seconds",
})


class RollingBreaker:
    """Failure-budget circuit breaker over a rolling window.

    ``record()`` charges one failure; once more than ``budget`` failures
    land inside ``window`` seconds, :meth:`open` turns true for
    ``cooldown`` seconds. Thread-safe; the clock is injectable for tests.
    """

    def __init__(self, budget: int, window: float, cooldown: float,
                 clock=time.monotonic):
        self.budget = budget
        self.window = window
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._times: deque[float] = deque()
        self._broken_until = 0.0
        self.count = 0  # lifetime failures charged

    def record(self) -> bool:
        """Charge one failure; returns True when this opened the breaker."""
        now = self._clock()
        with self._lock:
            self.count += 1
            self._times.append(now)
            while self._times and now - self._times[0] > self.window:
                self._times.popleft()
            if len(self._times) > self.budget:
                self._broken_until = now + self.cooldown
                return True
        return False

    def open(self) -> bool:
        return self._clock() < self._broken_until

    def reset_seconds(self) -> float:
        """Seconds until the breaker closes again (0 when already closed)."""
        return max(0.0, self._broken_until - self._clock())

    def stats(self) -> dict:
        return {
            "respawns": self.count,
            "respawn_budget": self.budget,
            "respawn_window_seconds": self.window,
            "circuit_open": self.open(),
            "circuit_reset_seconds": self.reset_seconds(),
        }


class SupervisedPool:
    """Mixin: the supervision surface shared by the dispatcher pools.

    Subclasses call :meth:`_init_supervision` from their constructor and
    override :meth:`circuit_open` (the forked pool answers from its
    :class:`RollingBreaker`; the remote pool from host cooldowns).
    ``pool_label`` scopes the registry counters so both pools' respawn
    and hang telemetry coexist in one ``/metrics`` page.
    """

    hang_timeout: float | None = None

    def _init_supervision(self, pool_label: str,
                          hang_timeout: float | None = None,
                          metrics: MetricsRegistry | None = None) -> None:
        self.hang_timeout = hang_timeout
        self.hung_kills = 0
        self._pool_label = pool_label
        self._metrics = metrics if metrics is not None else get_registry()
        self._m_respawns = self._metrics.counter(
            "repro_dispatcher_respawns_total",
            "Worker respawns / host failures charged to the breaker",
            labelnames=("pool",),
        ).labels(pool=pool_label)
        self._m_hung = self._metrics.counter(
            "repro_dispatcher_hung_kills_total",
            "Workers/hosts declared hung by heartbeat age",
            labelnames=("pool",),
        ).labels(pool=pool_label)

    def record_hung_kill(self) -> None:
        self.hung_kills += 1
        self._m_hung.inc()

    def circuit_open(self) -> bool:
        raise NotImplementedError

    def circuit_reset_seconds(self) -> float:
        return 0.0

    def supervisor_base(self) -> dict:
        """The shared stats block (key set: :data:`SUPERVISOR_BASE_KEYS`)."""
        return {
            "hung_kills": self.hung_kills,
            "hang_timeout": self.hang_timeout,
            "circuit_open": self.circuit_open(),
            "circuit_reset_seconds": self.circuit_reset_seconds(),
        }


def engine_supervisor_stats(engine) -> dict:
    """Assemble the engine's ``/healthz`` fault-tolerance document.

    Engine-level counters plus the nested pool / journal views — the one
    place the three formerly-duplicated ``supervisor_stats()`` join up.
    """
    with engine._watch_lock:
        n_watches = len(engine._watches)
    stats = {
        "dispatcher": engine.dispatcher,
        "retries_scheduled": engine._retries_scheduled,
        "degraded_jobs": engine._degraded_jobs,
        "draining": engine._draining,
        "swept_segments": list(engine.swept_segments),
        "recovery": dict(engine.recovery_stats),
        "watches": n_watches,
        "mutations": engine._mutations,
        "watch_emissions": engine._watch_emissions,
    }
    if engine._forked is not None:
        stats["workers"] = engine._forked.supervisor_stats()
    if engine._remote is not None:
        stats["hosts"] = engine._remote.supervisor_stats()
    if engine.journal is not None:
        stats["journal"] = engine.journal.stats()
    return stats
