"""Job engine: dispatcher threads multiplexing jobs over one shared pool.

The engine is the long-lived heart of the serving stack. It owns three
things the per-request path rebuilt on every call:

* the **graph catalog** — so a job's graph and its partition map load from
  cache instead of being re-parsed and re-partitioned;
* one **shared executor pool** (:class:`~repro.bsp.executors.SharedPool`) —
  handed to every pipeline run through ``RunConfig.pool``, so supersteps
  execute on persistent workers instead of a per-run pool;
* the **dispatcher threads** — each pops the highest-priority job, hydrates
  its config with catalog artifacts and the pool, runs the scenario, and
  writes the durable per-job artifact JSON (schema v5) with the full pass
  history.

Concurrent jobs produce bit-identical results to serial
:func:`~repro.scenarios.base.run_scenario` calls: the pipeline's outcome is
executor-independent by the engine's commit contract, and every cached
artifact is validated against the run before use.

Hardened for sustained load: the registry is bounded (``retention``, with
a durable artifact-index fallback for evicted jobs' status), submissions
are bounded (``max_queued`` → :class:`~repro.errors.QueueFullError`), and
RUNNING jobs stop cooperatively — each job carries a
:class:`~repro.pipeline.cancel.CancelToken` (cancel flag + optional
deadline) checked at superstep and sub-run boundaries, so
:meth:`JobEngine.cancel` reaches mid-run jobs on every backend.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from collections import deque
from dataclasses import replace
from pathlib import Path

from ..bsp.executors import SharedPool
from ..errors import JobError, RunCancelledError
from ..pipeline.cancel import CancelToken
from ..pipeline.context import RunConfig
from ..scenarios.base import run_scenario
from .catalog import GraphCatalog
from .dispatch import ForkedWorkerPool
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobResult,
)

__all__ = ["JobEngine"]


class JobEngine:
    """Thread-based scheduler running scenario jobs over shared resources.

    Parameters
    ----------
    catalog:
        The :class:`~repro.jobs.catalog.GraphCatalog` (or a path-like cache
        root, from which one is built).
    dispatchers:
        Number of dispatcher threads — how many jobs run concurrently.
    dispatcher:
        ``"thread"`` (default) runs jobs on the dispatcher threads over the
        shared pool; ``"process"`` pre-forks one worker process per
        dispatcher (:class:`~repro.jobs.dispatch.ForkedWorkerPool`) and
        each thread drives its own worker through a pipe — jobs then run
        on separate cores, with graphs attached from shared memory and
        cancellation delivered through a shared flag array. In process
        mode no pool is injected (``pool_kind`` is ignored): each worker
        picks its backend from the job's own config.
    pool:
        An externally-owned :class:`SharedPool`, or ``None`` to have the
        engine build (and own) one from ``pool_kind``/``pool_workers``.
        ``pool_kind=None`` disables pool injection (each run picks its own
        backend from its config — the cold per-request behavior).
    artifact_dir:
        Where per-job durable artifact JSONs are written (``None`` disables
        them).
    keep_results:
        How many terminal jobs keep their in-memory
        :class:`~repro.scenarios.base.ScenarioResult`. ``None`` (default)
        keeps all — right for batches and tests, wrong for a server: under
        sustained traffic every finished job would pin its full result in
        RAM forever. ``repro-euler serve`` bounds this; evicted results
        remain available through the durable artifact JSON.
    retention:
        How many **terminal** jobs stay in the in-memory registry
        (``None``: all). Evicted jobs answer :meth:`job_summary` /
        ``GET /jobs/<id>`` from the durable artifact index, so a week-long
        server holds O(retention) job records while every job ever run
        stays queryable. Pair with ``artifact_dir`` — without artifacts an
        evicted job's status is gone.
    max_queued:
        Backpressure bound on QUEUED jobs; :meth:`submit` raises
        :class:`~repro.errors.QueueFullError` (HTTP 429 at the front end)
        once hit. ``None``: unbounded.
    default_timeout:
        Default per-job ``timeout_seconds`` applied when a submission does
        not carry its own (``None``: unbounded). The deadline budgets run
        time (armed at dispatch) and fails the job at its next safe point.
    """

    def __init__(
        self,
        catalog: GraphCatalog | str | Path,
        dispatchers: int = 2,
        dispatcher: str = "thread",
        pool: SharedPool | None = None,
        pool_kind: str | None = "thread",
        pool_workers: int = 4,
        artifact_dir: str | Path | None = None,
        keep_results: int | None = None,
        retention: int | None = None,
        max_queued: int | None = None,
        default_timeout: float | None = None,
    ):
        if dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        if dispatcher not in ("thread", "process"):
            raise ValueError(
                f"unknown dispatcher {dispatcher!r}; use 'thread' or 'process'"
            )
        if keep_results is not None and keep_results < 0:
            raise ValueError("keep_results must be >= 0 or None")
        self.catalog = (
            catalog if isinstance(catalog, GraphCatalog) else GraphCatalog(catalog)
        )
        self.dispatcher = dispatcher
        self.dispatchers = dispatchers
        if dispatcher == "process":
            self._owns_pool = False
            self.pool = None
            # Fork the workers *before* any dispatcher thread exists: a
            # single-threaded parent makes fork semantics trivial (no lock
            # can be mid-held in the children).
            self._forked = ForkedWorkerPool(dispatchers, self.catalog.root)
        else:
            self._owns_pool = pool is None and pool_kind is not None
            self.pool = pool if pool is not None else (
                SharedPool(pool_kind, pool_workers) if pool_kind is not None else None
            )
            self._forked = None
        #: job id → worker slot for RUNNING jobs (process mode) — how
        #: :meth:`cancel` finds the flag to raise.
        self._job_slots: dict[str, int] = {}
        self._slots_lock = threading.Lock()
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.keep_results = keep_results
        self.default_timeout = default_timeout
        self._resident: deque[Job] = deque()
        self._resident_lock = threading.Lock()
        self.queue = JobQueue(retention=retention, max_queued=max_queued)
        self._ids = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop, args=(i,),
                name=f"job-dispatch-{i}", daemon=True,
            )
            for i in range(dispatchers)
        ]
        for t in self._threads:
            t.start()

    # -- submission API ----------------------------------------------------

    def submit(
        self,
        scenario: str,
        graph=None,
        graph_key: str | None = None,
        config: RunConfig | None = None,
        priority: int = 0,
        name: str = "",
        timeout_seconds: float | None = None,
    ) -> JobResult:
        """Queue one scenario run; returns its future-style handle.

        Exactly one of ``graph`` (cataloged on the spot) or ``graph_key``
        (already cataloged) must be given. ``timeout_seconds`` bounds the
        job's *run* time (the engine's ``default_timeout`` applies when
        omitted); an overrunning job fails at its next safe point.

        Raises :class:`~repro.errors.QueueFullError` under backpressure
        (``max_queued``) — the graph pin taken here is released on the way
        out, so rejected submissions leak nothing.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if (graph is None) == (graph_key is None):
            raise ValueError("pass exactly one of graph or graph_key")
        # Pinned until the job is terminal: budget eviction must never pull
        # the graph out from under an accepted job. For a fresh graph the
        # pin rides inside put()'s lock hold (no catalog-then-pin TOCTOU);
        # for a pre-cataloged key, pin() itself raises on a stale key.
        if graph is not None:
            graph_key = self.catalog.put(graph, name=name, pin=True)
        else:
            self.catalog.pin(graph_key)  # KeyError on an unknown key
        try:
            config = config if config is not None else RunConfig()
            meta = self.catalog.meta(graph_key)
            if timeout_seconds is None:
                timeout_seconds = self.default_timeout
            job = Job(
                id=f"job-{next(self._ids):06d}",
                scenario=scenario,
                graph_key=graph_key,
                config=config,
                priority=priority,
                graph_name=name or meta.get("name", ""),
                n_vertices=int(meta["n_vertices"]),
                n_edges=int(meta["n_edges"]),
                timeout_seconds=timeout_seconds,
                cancel_token=CancelToken(timeout_seconds),
            )
            return self.queue.submit(job)
        except BaseException:
            self.catalog.unpin(graph_key)
            raise

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: QUEUED terminally, RUNNING cooperatively.

        Returns ``True`` when the request took effect — a queued job
        reached CANCELLED on the spot, or a running job's cancel token was
        signalled (it lands on CANCELLED at its next superstep or sub-run
        boundary, with the partial pass history persisted). Terminal and
        registry-evicted jobs return ``False``; unknown ids raise.
        """
        try:
            job = self.queue.get(job_id)
        except JobError:
            if self.artifact_doc(job_id) is not None:
                return False  # evicted from the registry, hence terminal
            raise
        if self.queue.cancel(job_id):
            self.catalog.unpin(job.graph_key)
            # Cancelled-while-queued jobs never reach a dispatcher; write
            # their artifact here so the registry can evict them too.
            self._write_artifact(job, swallow_errors=True)
            return True
        if job.state == RUNNING and job.cancel_token is not None:
            job.cancel_token.cancel()
            if self._forked is not None:
                with self._slots_lock:
                    slot = self._job_slots.get(job_id)
                if slot is not None:
                    self._forked.cancel(slot)
            return True
        return False

    def job(self, job_id: str) -> Job:
        return self.queue.get(job_id)

    def job_summary(self, job_id: str) -> dict:
        """Status row for any job ever run: registry, then artifact index.

        The bounded registry answers live and recently-terminal jobs; for
        evicted ones the durable per-job artifact
        (:func:`~repro.bench.report_io.load_job_summary`) still serves the
        exact :meth:`~repro.jobs.queue.Job.summary` shape.
        """
        from ..bench.report_io import load_job_summary

        try:
            return self.queue.get(job_id).summary()
        except JobError:
            summary = load_job_summary(self.artifact_dir, job_id)
            if summary is None:
                raise
            return summary

    def artifact_doc(self, job_id: str) -> dict | None:
        """The full durable artifact document, or ``None`` when absent."""
        from ..bench.report_io import load_job

        if self.artifact_dir is None:
            return None
        return load_job(self.artifact_dir / f"{job_id}.json")

    def handle(self, job_id: str) -> JobResult:
        return self.queue.handle(job_id)

    def jobs(self) -> list[Job]:
        return self.queue.jobs()

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self, slot: int) -> None:
        while True:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._closed:
                    return
                continue
            if self._forked is not None:
                self._run_job_forked(job, slot)
            else:
                self._run_job(job)

    def _run_job(self, job: Job) -> None:
        try:
            self._run_job_inner(job)
        finally:
            self.catalog.unpin(job.graph_key)
            self._trim_resident(job)

    def _trim_resident(self, job: Job) -> None:
        """Bound the in-memory results a long-lived engine retains."""
        if self.keep_results is None:
            return
        with self._resident_lock:
            self._resident.append(job)
            while len(self._resident) > self.keep_results:
                self._resident.popleft().result = None

    def _run_job_inner(self, job: Job) -> None:
        started = time.perf_counter()
        try:
            token = job.cancel_token
            if token is not None:
                # The deadline budgets *run* time: restart the clock now
                # that the job left the queue (queue latency is unbounded
                # under load and not the job's fault).
                token.arm()
            t0 = time.perf_counter()
            graph = self.catalog.get(job.graph_key)
            job.record_pass("load_graph", time.perf_counter() - t0,
                            graph_key=job.graph_key)

            t0 = time.perf_counter()
            derived = self.catalog.derived_for(job.graph_key, job.config, job.scenario)
            job.record_pass("derived_artifacts", time.perf_counter() - t0,
                            artifacts=sorted(derived))

            config = job.config
            if self.pool is not None and config.pool is None:
                config = replace(config, pool=self.pool)
            config = replace(config, derived=derived, cancel=token)
            # The backend the job actually runs on (post pool injection) —
            # what status rows and the batch report must attribute to.
            job.executor = config.executor_name

            t0 = time.perf_counter()
            result = run_scenario(graph, job.scenario, config)
            job.record_pass(
                "run_scenario", time.perf_counter() - t0,
                executor=config.executor_name,
                n_sub_runs=len(result.sub_runs),
                walk_edges=int(sum(c.n_edges for c in result.circuits)),
            )
            job.result = result

            # Pre-stamp the terminal state so the durable artifact records
            # the finished job; finish() below only notifies the handle.
            job.state = DONE
            job.finished_at = time.time()
            self._write_artifact(job)
            self.queue.finish(job, DONE)
        except RunCancelledError as exc:
            # Cooperative stop at a safe point. The passes recorded so far
            # ARE the partial pass history — persisted with the terminal
            # state so the artifact audits how far the job got.
            job.record_pass("cancelled", time.perf_counter() - started,
                            reason=exc.reason, where=exc.where)
            if exc.reason == "timeout":
                state, error = FAILED, str(exc)
            else:
                state, error = CANCELLED, None
            job.state = state
            job.error = error
            job.finished_at = time.time()
            self._write_artifact(job, swallow_errors=True)
            self.queue.finish(job, state, error=error)
        except Exception as exc:  # a failed job must never kill its dispatcher
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.record_pass("error", 0.0, error=detail)
            job.state = FAILED
            job.error = detail
            job.finished_at = time.time()
            self._write_artifact(job, swallow_errors=True)
            self.queue.finish(job, FAILED, error=detail)

    # -- pre-forked dispatch (process mode) ---------------------------------

    def _run_job_forked(self, job: Job, slot: int) -> None:
        try:
            self._run_job_forked_inner(job, slot)
        finally:
            with self._slots_lock:
                self._job_slots.pop(job.id, None)
            self._forked.clear(slot)
            self.catalog.unpin(job.graph_key)
            self._trim_resident(job)

    def _run_job_forked_inner(self, job: Job, slot: int) -> None:
        started = time.perf_counter()
        try:
            self._forked.clear(slot)
            with self._slots_lock:
                self._job_slots[job.id] = slot
            token = job.cancel_token
            if token is not None and token.cancelled:
                # A cancel that landed between pop() and slot registration
                # found no slot to flag; raise it now so the worker stops
                # at its first checkpoint.
                self._forked.cancel(slot)

            t0 = time.perf_counter()
            descriptor = self.catalog.share(job.graph_key)
            job.record_pass("share_graph", time.perf_counter() - t0,
                            graph_key=job.graph_key,
                            shared=descriptor is not None)

            t0 = time.perf_counter()
            # Compute (and persist) the derived artifacts parent-side; the
            # worker re-reads them as a disk-cache hit instead of receiving
            # the arrays through the pipe.
            self.catalog.derived_for(job.graph_key, job.config, job.scenario)
            job.record_pass("persist_derived", time.perf_counter() - t0)

            spec = {
                "job_id": job.id,
                "scenario": job.scenario,
                "graph_key": job.graph_key,
                "config": replace(job.config, pool=None, cancel=None,
                                  derived=None),
                "graph_descriptor": descriptor,
                "timeout_seconds": job.timeout_seconds,
            }
            out = self._forked.run(slot, spec)
            if out is None:
                self._finish_failed(job, "dispatcher worker died")
                return
            for name, seconds, extra in out.get("passes", []):
                job.record_pass(name, seconds, **extra)
            job.executor = out.get("executor", "") or job.executor
            state = out["state"]
            if state == DONE:
                job.result = out["result"]
                job.state = DONE
                job.finished_at = time.time()
                self._write_artifact(job)
                self.queue.finish(job, DONE)
            elif state == CANCELLED:
                job.state = CANCELLED
                job.finished_at = time.time()
                self._write_artifact(job, swallow_errors=True)
                self.queue.finish(job, CANCELLED)
            else:
                self._finish_failed(job, out.get("error") or "job failed")
        except Exception as exc:  # parent-side failure must not kill the loop
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.record_pass("error", time.perf_counter() - started,
                            error=detail)
            self._finish_failed(job, detail)

    def _finish_failed(self, job: Job, error: str) -> None:
        job.state = FAILED
        job.error = error
        job.finished_at = time.time()
        self._write_artifact(job, swallow_errors=True)
        self.queue.finish(job, FAILED, error=error)

    def _write_artifact(self, job: Job, swallow_errors: bool = False) -> None:
        if self.artifact_dir is None:
            return
        from ..bench.report_io import save_job

        try:
            t0 = time.perf_counter()
            # Stamped before serialization so the artifact's own status row
            # names its path — what evicted-job lookups serve verbatim.
            path = self.artifact_dir / f"{job.id}.json"
            job.artifact_path = str(path)
            save_job(job, path)
            job.record_pass("write_artifact", time.perf_counter() - t0,
                            path=str(path))
        except Exception:
            job.artifact_path = None  # never point at a file that isn't there
            if not swallow_errors:
                raise

    # -- lifecycle ---------------------------------------------------------

    def close(self, cancel_queued: bool = True) -> None:
        """Drain dispatchers and release the pool (idempotent).

        Queued jobs are cancelled by default so close cannot hang behind a
        deep queue; pass ``cancel_queued=False`` to let the queue drain.
        Running jobs always finish — their shared pool stays up until the
        dispatchers exit.
        """
        if self._closed:
            return
        if cancel_queued:
            for job in self.queue.jobs():
                if job.state == QUEUED:
                    self.cancel(job.id)  # also unpins the graph
        self._closed = True
        self.queue.close()
        for t in self._threads:
            t.join()
        if self._forked is not None:
            self._forked.close()
        if self.pool is not None and self._owns_pool:
            self.pool.close()
        self.catalog.close_shared()

    def segment_stats(self) -> dict:
        """Combined shared-segment stats (catalog + pool program store)."""
        stats = self.catalog.segment_stats()
        if self.pool is not None and hasattr(self.pool, "segment_stats"):
            for k, v in self.pool.segment_stats().items():
                stats[k] = stats.get(k, 0) + v
        return stats

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
