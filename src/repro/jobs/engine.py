"""Job engine: dispatcher threads multiplexing jobs over one shared pool.

The engine is the long-lived heart of the serving stack. It owns three
things the per-request path rebuilt on every call:

* the **graph catalog** — so a job's graph and its partition map load from
  cache instead of being re-parsed and re-partitioned;
* one **shared executor pool** (:class:`~repro.bsp.executors.SharedPool`) —
  handed to every pipeline run through ``RunConfig.pool``, so supersteps
  execute on persistent workers instead of a per-run pool;
* the **dispatcher threads** — each pops the highest-priority job, hydrates
  its config with catalog artifacts and the pool, runs the scenario, and
  writes the durable per-job artifact JSON (schema v5) with the full pass
  history.

Concurrent jobs produce bit-identical results to serial
:func:`~repro.scenarios.base.run_scenario` calls: the pipeline's outcome is
executor-independent by the engine's commit contract, and every cached
artifact is validated against the run before use.

Hardened for sustained load: the registry is bounded (``retention``, with
a durable artifact-index fallback for evicted jobs' status), submissions
are bounded (``max_queued`` → :class:`~repro.errors.QueueFullError`), and
RUNNING jobs stop cooperatively — each job carries a
:class:`~repro.pipeline.cancel.CancelToken` (cancel flag + optional
deadline) checked at superstep and sub-run boundaries, so
:meth:`JobEngine.cancel` reaches mid-run jobs on every backend.

Fault tolerance (the crash-safety layer on top):

* **journal** — with a :class:`~repro.jobs.journal.JobJournal` attached,
  every submission is fsync'd to an append-only WAL *before it is
  acknowledged*, and every transition after it; :meth:`recover` (run
  automatically at construction) replays the journal plus the durable
  artifacts and re-enqueues whatever a crash interrupted, so ``kill -9``
  loses zero acknowledged submissions;
* **retries** — transient failures (:class:`~repro.errors.TransientJobError`:
  killed/hung workers, broken pools, shm attach trouble) re-dispatch with
  exponential backoff and deterministic jitter, up to the job's
  ``max_retries``; permanent job errors never retry;
* **supervision** — the forked worker pool heartbeats, hang-kills and
  respawns its workers under a budgeted circuit breaker; while the breaker
  is open the engine *degrades* process-mode jobs to in-process execution
  instead of feeding a crash loop;
* **drain** — :meth:`drain` stops intake (HTTP 503 at the front ends),
  lets running jobs finish inside a deadline, then checkpoints the journal
  so still-queued jobs survive to the next start.

Dynamic graphs (see :mod:`repro.deltas` and ``PATCH /graphs/<key>``):
:meth:`mutate_graph` applies a :class:`~repro.deltas.GraphDelta` through
the catalog's delta-chain store, and :meth:`add_watch` pins a (graph,
scenario) pair so every mutation re-emits an incrementally repaired
result as an ordinary job. Watch lifecycle records ride the same journal
(``watch_created``/``watch_advanced``/``watch_deleted``) and survive
restarts — recovery re-pins each watch to its last journaled graph head.
"""

from __future__ import annotations

import itertools
import random
import re
import threading
import time
import traceback
import uuid
from collections import deque
from dataclasses import replace
from pathlib import Path

from ..bsp import shm
from ..bsp import transport as frame
from ..bsp.executors import SharedPool
from ..deltas import GraphDelta, RepairSession
from ..errors import (
    EngineDrainingError,
    JobError,
    RunCancelledError,
    TransientJobError,
)
from ..faults import FaultPlan
from ..obs import (
    REQUIRED_FAMILIES,
    MetricsRegistry,
    SpanRecorder,
    get_registry,
    use_registry,
    use_trace,
)
from ..pipeline.cancel import CancelToken
from ..pipeline.context import RunConfig
from ..scenarios.base import run_scenario
from . import supervise
from .catalog import GraphCatalog
from .dispatch import ForkedWorkerPool
from .remote import RemoteHostPool
from .journal import (
    JobJournal,
    TERMINAL_EVENTS,
    config_from_dict,
    reduce_records,
    reduce_watches,
)
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobQueue,
    JobResult,
)

__all__ = ["JobEngine"]

#: Exception class names (stdlib executor breakage) treated as transient.
_TRANSIENT_CLASS_NAMES = frozenset(
    {"BrokenProcessPool", "BrokenThreadPool", "BrokenExecutor"}
)


def _is_transient(exc: BaseException) -> bool:
    """Whether a failure is infrastructure (retryable), not the job's fault."""
    if isinstance(exc, TransientJobError):
        return True
    if isinstance(exc, (EOFError, BrokenPipeError)):
        return True
    return type(exc).__name__ in _TRANSIENT_CLASS_NAMES


class JobEngine:
    """Thread-based scheduler running scenario jobs over shared resources.

    Parameters
    ----------
    catalog:
        The :class:`~repro.jobs.catalog.GraphCatalog` (or a path-like cache
        root, from which one is built).
    dispatchers:
        Number of dispatcher threads — how many jobs run concurrently.
    dispatcher:
        ``"thread"`` (default) runs jobs on the dispatcher threads over the
        shared pool; ``"process"`` pre-forks one worker process per
        dispatcher (:class:`~repro.jobs.dispatch.ForkedWorkerPool`) and
        each thread drives its own worker through a pipe — jobs then run
        on separate cores, with graphs attached from shared memory and
        cancellation delivered through a shared flag array. In process
        mode no pool is injected (``pool_kind`` is ignored): each worker
        picks its backend from the job's own config. ``"remote"`` is the
        coordinator mode: jobs dispatch over the registered ``hosts``
        (:class:`~repro.jobs.remote.RemoteHostPool`) with content-hash
        placement, host-side catalog provisioning, and the same
        transient-retry/circuit-breaker supervision — a dead or hung host
        cools down, its jobs re-dispatch elsewhere, and with every host
        down the engine degrades to in-process execution.
    hosts:
        Worker host addresses for ``dispatcher="remote"`` — a
        ``"host:port,host:port"`` string or a list of ``(host, port)``
        pairs. Required in remote mode, ignored otherwise.
    host_cooldown:
        Seconds a dead/hung remote host stays out of scheduling before
        the coordinator tries it again.
    pool:
        An externally-owned :class:`SharedPool`, or ``None`` to have the
        engine build (and own) one from ``pool_kind``/``pool_workers``.
        ``pool_kind=None`` disables pool injection (each run picks its own
        backend from its config — the cold per-request behavior).
    artifact_dir:
        Where per-job durable artifact JSONs are written (``None`` disables
        them).
    keep_results:
        How many terminal jobs keep their in-memory
        :class:`~repro.scenarios.base.ScenarioResult`. ``None`` (default)
        keeps all — right for batches and tests, wrong for a server: under
        sustained traffic every finished job would pin its full result in
        RAM forever. ``repro-euler serve`` bounds this; evicted results
        remain available through the durable artifact JSON.
    retention:
        How many **terminal** jobs stay in the in-memory registry
        (``None``: all). Evicted jobs answer :meth:`job_summary` /
        ``GET /jobs/<id>`` from the durable artifact index, so a week-long
        server holds O(retention) job records while every job ever run
        stays queryable. Pair with ``artifact_dir`` — without artifacts an
        evicted job's status is gone.
    max_queued:
        Backpressure bound on QUEUED jobs; :meth:`submit` raises
        :class:`~repro.errors.QueueFullError` (HTTP 429 at the front end)
        once hit. ``None``: unbounded.
    default_timeout:
        Default per-job ``timeout_seconds`` applied when a submission does
        not carry its own (``None``: unbounded). The deadline budgets run
        time (armed at dispatch) and fails the job at its next safe point.
    journal:
        A :class:`~repro.jobs.journal.JobJournal` (or a path to build one
        at), or ``None`` (default) for a journal-less engine. With a
        journal, :meth:`recover` runs during construction — before the
        dispatcher threads start — replaying whatever a previous process
        left behind.
    default_max_retries:
        ``max_retries`` applied to submissions that do not carry their
        own. ``0`` (default): transient failures fail like any other.
    retry_backoff / retry_backoff_max:
        Exponential-backoff base and cap (seconds) between retry attempts;
        jitter is deterministic per (job, attempt).
    hang_timeout / respawn_budget / respawn_window / breaker_cooldown:
        Process-mode supervision knobs, passed through to
        :class:`~repro.jobs.dispatch.ForkedWorkerPool` (see its docs).
        Ignored in thread mode.
    """

    def __init__(
        self,
        catalog: GraphCatalog | str | Path,
        dispatchers: int = 2,
        dispatcher: str = "thread",
        pool: SharedPool | None = None,
        pool_kind: str | None = "thread",
        pool_workers: int = 4,
        artifact_dir: str | Path | None = None,
        keep_results: int | None = None,
        retention: int | None = None,
        max_queued: int | None = None,
        default_timeout: float | None = None,
        journal: JobJournal | str | Path | None = None,
        default_max_retries: int = 0,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 5.0,
        hang_timeout: float | None = None,
        respawn_budget: int = 5,
        respawn_window: float = 60.0,
        breaker_cooldown: float = 30.0,
        hosts=None,
        host_cooldown: float = 5.0,
        metrics: MetricsRegistry | None = None,
    ):
        if dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        if dispatcher not in ("thread", "process", "remote"):
            raise ValueError(
                f"unknown dispatcher {dispatcher!r}; "
                "use 'thread', 'process' or 'remote'"
            )
        if keep_results is not None and keep_results < 0:
            raise ValueError("keep_results must be >= 0 or None")
        if default_max_retries < 0:
            raise ValueError("default_max_retries must be >= 0")
        #: The engine's metric sink: the process-global registry by default,
        #: or a caller-supplied one (a second in-process engine — the
        #: degrade path, tests — must not share counter series).
        self.metrics = metrics if metrics is not None else get_registry()
        self.catalog = (
            catalog if isinstance(catalog, GraphCatalog) else GraphCatalog(catalog)
        )
        # Startup janitor: segments named by a previous, now-dead process
        # (a crashed server's cancel flags, heartbeats, graph shares) are
        # unreachable garbage — sweep them before creating our own.
        self.swept_segments: list[str] = (
            shm.sweep_stale_segments() if shm.shm_available() else []
        )
        self.dispatcher = dispatcher
        self.dispatchers = dispatchers
        self._remote = None
        if dispatcher == "process":
            self._owns_pool = False
            self.pool = None
            # Fork the workers *before* any dispatcher thread exists: a
            # single-threaded parent makes fork semantics trivial (no lock
            # can be mid-held in the children).
            self._forked = ForkedWorkerPool(
                dispatchers, self.catalog.root,
                hang_timeout=hang_timeout,
                respawn_budget=respawn_budget,
                respawn_window=respawn_window,
                breaker_cooldown=breaker_cooldown,
                metrics=self.metrics,
            )
        elif dispatcher == "remote":
            self._owns_pool = False
            self.pool = None
            self._forked = None
            self._remote = RemoteHostPool(
                hosts, self.catalog,
                hang_timeout=hang_timeout,
                host_cooldown=host_cooldown,
                metrics=self.metrics,
            )
        else:
            self._owns_pool = pool is None and pool_kind is not None
            self.pool = pool if pool is not None else (
                SharedPool(pool_kind, pool_workers) if pool_kind is not None else None
            )
            self._forked = None
        #: job id → worker slot for RUNNING jobs (process mode) — how
        #: :meth:`cancel` finds the flag to raise.
        self._job_slots: dict[str, int] = {}
        self._slots_lock = threading.Lock()
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.keep_results = keep_results
        self.default_timeout = default_timeout
        self.default_max_retries = default_max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self._resident: deque[Job] = deque()
        self._resident_lock = threading.Lock()
        self.queue = JobQueue(retention=retention, max_queued=max_queued,
                              metrics=self.metrics)
        self.journal = (
            journal if (journal is None or isinstance(journal, JobJournal))
            else JobJournal(journal)
        )
        #: idempotency key → job id (seeded from the journal at recovery).
        self._idem: dict[str, str] = {}
        self._idem_lock = threading.Lock()
        #: Minimal status rows for journal-only jobs (terminal at crash
        #: with no artifact, or unrecoverable) — the job_summary fallback
        #: of last resort.
        self._journal_fallback: dict[str, dict] = {}
        #: Pending backoff timers → their jobs; close() resolves survivors.
        self._retry_timers: dict[threading.Timer, Job] = {}
        self._timers_lock = threading.Lock()
        self._retries_scheduled = 0
        self._degraded_jobs = 0
        self._draining = False
        self._stop_dispatch = False
        self._ids = itertools.count(1)
        self._closed = False
        #: watch id → live watch record (see :meth:`add_watch`).
        self._watches: dict[str, dict] = {}
        self._watch_lock = threading.Lock()
        self._watch_ids = itertools.count(1)
        self._mutations = 0
        self._watch_emissions = 0
        #: What :meth:`recover` found and did (all zero without a journal).
        self.recovery_stats: dict = {
            "replayed": 0, "requeued": 0, "reconciled": 0,
            "failed": 0, "terminal": 0, "watches": 0,
        }
        if self.journal is not None:
            self.recover()
        self._init_metrics()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop, args=(i,),
                name=f"job-dispatch-{i}", daemon=True,
            )
            for i in range(dispatchers)
        ]
        for t in self._threads:
            t.start()

    # -- submission API ----------------------------------------------------

    def submit(
        self,
        scenario: str,
        graph=None,
        graph_key: str | None = None,
        config: RunConfig | None = None,
        priority: int = 0,
        name: str = "",
        timeout_seconds: float | None = None,
        max_retries: int | None = None,
        idempotency_key: str | None = None,
        trace_id: str | None = None,
    ) -> JobResult:
        """Queue one scenario run; returns its future-style handle.

        Exactly one of ``graph`` (cataloged on the spot) or ``graph_key``
        (already cataloged) must be given. ``timeout_seconds`` bounds the
        job's *run* time (the engine's ``default_timeout`` applies when
        omitted); an overrunning job fails at its next safe point.
        ``max_retries`` bounds transient re-dispatches (default:
        ``default_max_retries``).

        ``idempotency_key`` deduplicates: a resubmission carrying a key
        already seen (within the registry retention + journal window)
        returns the original job's handle instead of queueing a duplicate
        — the client-retry safety net.

        With a journal, the submission is fsync'd durable **before** this
        method returns: an acknowledged job survives ``kill -9``.

        Raises :class:`~repro.errors.QueueFullError` under backpressure
        (``max_queued``) and :class:`~repro.errors.EngineDrainingError`
        during graceful shutdown — the graph pin taken here is released on
        the way out, so rejected submissions leak nothing.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._draining:
            raise EngineDrainingError()
        if (graph is None) == (graph_key is None):
            raise ValueError("pass exactly one of graph or graph_key")
        if idempotency_key:
            existing = self.idempotent_job_id(idempotency_key)
            if existing is not None:
                try:
                    return self.queue.handle(existing)
                except JobError:
                    # The original aged out of the registry (terminal long
                    # ago); treat the resubmission as a fresh job.
                    pass
        # Pinned until the job is terminal: budget eviction must never pull
        # the graph out from under an accepted job. For a fresh graph the
        # pin rides inside put()'s lock hold (no catalog-then-pin TOCTOU);
        # for a pre-cataloged key, pin() itself raises on a stale key.
        if graph is not None:
            graph_key = self.catalog.put(graph, name=name, pin=True)
        else:
            self.catalog.pin(graph_key)  # KeyError on an unknown key
        try:
            config = config if config is not None else RunConfig()
            meta = self.catalog.meta(graph_key)
            if timeout_seconds is None:
                timeout_seconds = self.default_timeout
            if max_retries is None:
                max_retries = self.default_max_retries
            job = Job(
                id=f"job-{next(self._ids):06d}",
                scenario=scenario,
                graph_key=graph_key,
                config=config,
                priority=priority,
                graph_name=name or meta.get("name", ""),
                n_vertices=int(meta["n_vertices"]),
                n_edges=int(meta["n_edges"]),
                timeout_seconds=timeout_seconds,
                cancel_token=CancelToken(timeout_seconds),
                max_retries=int(max_retries),
                idempotency_key=idempotency_key,
                # Client-supplied or minted here: every job has a trace id
                # from the moment it exists, so logs/artifacts/worker spans
                # downstream can always name the originating request.
                trace_id=trace_id or uuid.uuid4().hex[:16],
            )
            handle = self.queue.submit(job)
            try:
                self._journal_submit(job)
            except BaseException:
                # Never acknowledge what the journal couldn't record: pull
                # the job back out before the handle escapes.
                self.queue.cancel(job.id)
                raise
            if idempotency_key:
                with self._idem_lock:
                    self._idem[idempotency_key] = job.id
            return handle
        except BaseException:
            self.catalog.unpin(graph_key)
            raise

    def idempotent_job_id(self, key: str) -> str | None:
        """The job id previously submitted under ``key``, if any."""
        with self._idem_lock:
            return self._idem.get(key)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: QUEUED terminally, RUNNING cooperatively.

        Returns ``True`` when the request took effect — a queued job
        reached CANCELLED on the spot, or a running job's cancel token was
        signalled (it lands on CANCELLED at its next superstep or sub-run
        boundary, with the partial pass history persisted). Terminal and
        registry-evicted jobs return ``False``; unknown ids raise.
        """
        try:
            job = self.queue.get(job_id)
        except JobError:
            if self.artifact_doc(job_id) is not None:
                return False  # evicted from the registry, hence terminal
            raise
        if self.queue.cancel(job_id):
            self.catalog.unpin(job.graph_key)
            # Cancelled-while-queued jobs never reach a dispatcher; write
            # their artifact here so the registry can evict them too.
            self._write_artifact(job, swallow_errors=True)
            self._journal_event("cancelled", job)
            return True
        if job.state == RUNNING and job.cancel_token is not None:
            job.cancel_token.cancel()
            if self._forked is not None:
                with self._slots_lock:
                    slot = self._job_slots.get(job_id)
                if slot is not None:
                    self._forked.cancel(slot)
            if self._remote is not None:
                self._remote.cancel(job_id)
            return True
        return False

    def job(self, job_id: str) -> Job:
        return self.queue.get(job_id)

    def job_summary(self, job_id: str) -> dict:
        """Status row for any job ever run: registry, artifact, journal.

        The bounded registry answers live and recently-terminal jobs; for
        evicted ones the durable per-job artifact
        (:func:`~repro.bench.report_io.load_job_summary`) still serves the
        exact :meth:`~repro.jobs.queue.Job.summary` shape; jobs known only
        to the journal (terminal at a crash before their artifact landed)
        answer from the recovery fallback rows.
        """
        from ..bench.report_io import load_job_summary

        try:
            return self.queue.get(job_id).summary()
        except JobError:
            summary = load_job_summary(self.artifact_dir, job_id)
            if summary is None:
                summary = self._journal_fallback.get(job_id)
            if summary is None:
                raise
            return summary

    def artifact_doc(self, job_id: str) -> dict | None:
        """The full durable artifact document, or ``None`` when absent."""
        from ..bench.report_io import load_job

        if self.artifact_dir is None:
            return None
        return load_job(self.artifact_dir / f"{job_id}.json")

    def handle(self, job_id: str) -> JobResult:
        return self.queue.handle(job_id)

    def jobs(self) -> list[Job]:
        return self.queue.jobs()

    # -- dynamic graphs: mutations and watch jobs ----------------------------

    def mutate_graph(self, base_key: str, delta: GraphDelta, name: str = "",
                     faults: FaultPlan | None = None) -> dict:
        """Apply a delta through the catalog; advance every watch on it.

        The catalog mints the child's content hash from a delta chain
        (no full NPZ until something exports it). Each watch currently
        pinned to ``base_key`` then rolls forward: its repair session
        advances across the delta (deciding incremental repair vs full
        recompute), the watch re-pins onto the child hash, and one
        emission job is submitted carrying the session — the repaired
        result lands as a normal job whose artifact pass history records
        the decision. Returns the child key plus per-watch emissions.

        ``faults`` (a plan with a ``delta_apply`` spec armed) makes the
        catalog application itself fail *before* any watch moves — a
        failed mutation leaves the catalog and every watch untouched.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._draining:
            raise EngineDrainingError()
        new_key = self.catalog.mutate(base_key, delta, name=name,
                                      faults=faults)
        self._mutations += 1
        with self._watch_lock:
            targets = [w for w in self._watches.values()
                       if w["graph_key"] == base_key]
        out: dict = {"graph_key": new_key, "base_key": base_key,
                     "delta": delta.summary(), "watches": {}}
        for w in targets:
            report = w["session"].advance(delta)
            self.catalog.pin(new_key)
            self.catalog.unpin(w["graph_key"])
            w["graph_key"] = new_key
            w["mutations"] += 1
            handle = self.submit(
                w["scenario"], graph_key=new_key,
                config=replace(w["config"], repair=w["session"]),
                priority=w["priority"], name=w["name"] or name,
            )
            # The decision is stamped coordinator-side so it reaches the
            # artifact on every dispatcher mode (process/remote workers
            # run the emission cold — the session never crosses a pipe).
            self.queue.get(handle.job_id).record_pass(
                "repair_decision", 0.0, watch_id=w["id"], **report
            )
            w["emitted"].append(handle.job_id)
            w["last_job_id"] = handle.job_id
            self._watch_emissions += 1
            self._journal_event(
                "watch_advanced", _Ref(w["id"]), graph_key=new_key,
                emitted=handle.job_id, decision=report.get("decision"),
            )
            out["watches"][w["id"]] = {
                "job_id": handle.job_id,
                "decision": report.get("decision"),
                "dirty_parts": report.get("dirty_parts"),
            }
        return out

    def add_watch(self, graph_key: str, scenario: str = "circuit",
                  config: RunConfig | None = None, name: str = "",
                  threshold: float = 0.5, priority: int = 0) -> dict:
        """Pin a (graph, scenario) pair: every mutation re-emits a result.

        The watch holds a :class:`~repro.deltas.RepairSession` across
        mutations, so successive emissions repair incrementally instead
        of recomputing (``threshold``: the dirty-partition fraction past
        which a mutation falls back to full recompute). With a journal
        the watch is durable — :meth:`recover` rebuilds the registry on
        restart, re-pinned to the watch's last journaled graph head (the
        Phase-1 cache is process memory, so the first post-restart
        emission is a cold capture). Returns the watch summary row.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._draining:
            raise EngineDrainingError()
        self.catalog.pin(graph_key)  # KeyError on an unknown key
        config = config if config is not None else RunConfig()
        watch_id = f"watch-{next(self._watch_ids):06d}"
        record = {
            "id": watch_id,
            "graph_key": graph_key,
            "base_key": graph_key,
            "scenario": scenario,
            "config": config,
            "name": name,
            "priority": int(priority),
            "session": RepairSession(threshold=threshold),
            "threshold": float(threshold),
            "mutations": 0,
            "emitted": [],
            "last_job_id": None,
            "created_at": time.time(),
            "recovered": False,
        }
        with self._watch_lock:
            self._watches[watch_id] = record
        if self.journal is not None:
            from .journal import config_to_dict

            try:
                # Like submissions: never acknowledge a watch the journal
                # couldn't record.
                self.journal.append(
                    "watch_created", watch_id,
                    graph_key=graph_key, scenario=scenario,
                    config=config_to_dict(config), name=name,
                    threshold=float(threshold), priority=int(priority),
                )
            except BaseException:
                with self._watch_lock:
                    self._watches.pop(watch_id, None)
                self.catalog.unpin(graph_key)
                raise
        return self.watch_summary(watch_id)

    def watch_summary(self, watch_id: str) -> dict:
        """One watch's status row (raises ``KeyError`` on unknown ids)."""
        with self._watch_lock:
            w = self._watches.get(watch_id)
            if w is None:
                raise KeyError(f"unknown watch {watch_id!r}")
            return {
                "id": w["id"],
                "graph_key": w["graph_key"],
                "base_key": w["base_key"],
                "scenario": w["scenario"],
                "name": w["name"],
                "threshold": w["threshold"],
                "mutations": w["mutations"],
                "emitted_jobs": len(w["emitted"]),
                "last_job_id": w["last_job_id"],
                "last_repair": dict(w["session"].last_report),
                "created_at": w["created_at"],
                "recovered": w["recovered"],
            }

    def watches(self) -> list[dict]:
        """Status rows for every live watch, in id order."""
        with self._watch_lock:
            ids = sorted(self._watches)
        return [self.watch_summary(i) for i in ids]

    def delete_watch(self, watch_id: str) -> bool:
        """Tear a watch down (unpins its graph head); ``KeyError`` when
        unknown."""
        with self._watch_lock:
            w = self._watches.pop(watch_id, None)
        if w is None:
            raise KeyError(f"unknown watch {watch_id!r}")
        self.catalog.unpin(w["graph_key"])
        self._journal_event("watch_deleted", _Ref(watch_id))
        return True

    # -- journal ------------------------------------------------------------

    def _journal_submit(self, job: Job) -> None:
        """Durably record an accepted submission (raises on failure)."""
        if self.journal is None:
            return
        from .journal import config_to_dict

        self.journal.append(
            "submitted", job.id,
            scenario=job.scenario,
            graph_key=job.graph_key,
            config=config_to_dict(job.config),
            priority=job.priority,
            name=job.graph_name,
            timeout_seconds=job.timeout_seconds,
            max_retries=job.max_retries,
            idempotency_key=job.idempotency_key,
        )

    def _journal_event(self, event: str, job: Job, **fields) -> None:
        """Record a transition; never lets journal trouble kill a dispatcher."""
        if self.journal is None:
            return
        try:
            self.journal.append(event, job.id, **fields)
        except Exception:
            pass

    def recover(self) -> dict:
        """Replay the journal + artifacts; re-enqueue interrupted jobs.

        Runs during construction (before any dispatcher thread), so by the
        time the engine serves traffic every job a crash interrupted is
        either back in the queue (original id — clients keep polling the
        id they were acknowledged with) or journaled terminal:

        * jobs QUEUED at the crash re-enqueue as-is;
        * jobs RUNNING at the crash consume one attempt (the run died with
          the process) and re-enqueue while ``attempt <= max_retries``,
          else fail terminally;
        * jobs whose terminal record was lost but whose durable artifact
          landed (the artifact is written *before* the terminal journal
          record) are reconciled from the artifact;
        * jobs missing their ``submitted`` spec fail as unrecoverable.

        Idempotency keys from every replayed spec re-seed the dedup map.
        Returns (and stores as ``recovery_stats``) what was done.
        """
        from ..bench.report_io import load_job_summary

        stats = {"replayed": 0, "requeued": 0, "reconciled": 0,
                 "failed": 0, "terminal": 0, "watches": 0}
        if self.journal is None:
            self.recovery_stats = stats
            return stats
        records = self.journal.replay()
        stats["replayed"] = len(records)
        states = reduce_records(records)
        max_id = 0
        for job_id, state in sorted(states.items()):
            m = re.fullmatch(r"job-(\d+)", job_id)
            if m:
                max_id = max(max_id, int(m.group(1)))
            spec = state["spec"] or {}
            key = spec.get("idempotency_key")
            if key:
                self._idem[key] = job_id
            if state["event"] in TERMINAL_EVENTS:
                stats["terminal"] += 1
                if (load_job_summary(self.artifact_dir, job_id) is None
                        and job_id not in self._journal_fallback):
                    self._journal_fallback[job_id] = self._fallback_summary(
                        job_id, state["event"].upper(), spec, state["error"]
                    )
                continue
            # Interrupted (QUEUED/RUNNING at crash). The durable artifact
            # is written before the terminal journal record, so an
            # artifact in a terminal state wins: the job finished; only
            # its journal record was lost.
            summary = load_job_summary(self.artifact_dir, job_id)
            if summary is not None and summary.get("state") in TERMINAL_STATES:
                self._journal_event(
                    summary["state"].lower(), _Ref(job_id), reconciled=True
                )
                stats["reconciled"] += 1
                continue
            if state["spec"] is None:
                self._recover_failed(
                    job_id, spec, stats,
                    "unrecoverable: submitted record lost",
                )
                continue
            was_running = state["event"] == "started"
            attempt = state["attempt"] + (1 if was_running else 0)
            max_retries = int(spec.get("max_retries") or 0)
            if was_running and attempt > max_retries:
                self._recover_failed(
                    job_id, spec, stats,
                    "lost at crash; retry budget exhausted",
                )
                continue
            try:
                config = config_from_dict(spec.get("config") or {})
                self.catalog.pin(spec["graph_key"])
            except (KeyError, ValueError) as exc:
                self._recover_failed(
                    job_id, spec, stats, f"unrecoverable: {exc}"
                )
                continue
            try:
                meta = self.catalog.meta(spec["graph_key"])
                timeout = spec.get("timeout_seconds")
                job = Job(
                    id=job_id,
                    scenario=spec.get("scenario", ""),
                    graph_key=spec["graph_key"],
                    config=config,
                    priority=int(spec.get("priority") or 0),
                    graph_name=spec.get("name", ""),
                    n_vertices=int(meta["n_vertices"]),
                    n_edges=int(meta["n_edges"]),
                    timeout_seconds=timeout,
                    cancel_token=CancelToken(timeout),
                    max_retries=max_retries,
                    attempt=attempt,
                    idempotency_key=key,
                )
                job.record_pass(
                    "recovered", 0.0,
                    was=("RUNNING" if was_running else "QUEUED"),
                    attempt=attempt,
                )
                if was_running:
                    self._journal_event(
                        "retry", job, attempt=attempt,
                        error="recovered: running at crash",
                    )
                self.queue.submit(job, force=True)
                stats["requeued"] += 1
            except BaseException:
                self.catalog.unpin(spec["graph_key"])
                raise
        if max_id:
            self._ids = itertools.count(max_id + 1)
        self._recover_watches(records, stats)
        self.recovery_stats = stats
        return stats

    def _recover_watches(self, records: list[dict], stats: dict) -> None:
        """Rebuild the watch registry from journaled watch events.

        A recovered watch re-pins its last journaled graph head and gets
        a *fresh* repair session — the Phase-1 cache died with the old
        process, so its first post-restart emission is a cold capture and
        subsequent mutations repair incrementally again. Watches whose
        head graph is no longer cataloged (evicted while down) are
        dropped rather than resurrected broken.
        """
        watch_states = reduce_watches(records)
        max_watch = 0
        for watch_id, wstate in sorted(watch_states.items()):
            m = re.fullmatch(r"watch-(\d+)", watch_id)
            if m:
                max_watch = max(max_watch, int(m.group(1)))
            if wstate["deleted"] or wstate["spec"] is None:
                continue
            spec = wstate["spec"]
            head = wstate["graph_key"] or spec.get("graph_key")
            try:
                config = config_from_dict(spec.get("config") or {})
                self.catalog.pin(head)
            except (KeyError, ValueError):
                continue
            threshold = float(spec.get("threshold") or 0.5)
            self._watches[watch_id] = {
                "id": watch_id,
                "graph_key": head,
                "base_key": spec.get("graph_key", head),
                "scenario": spec.get("scenario", "circuit"),
                "config": config,
                "name": spec.get("name", ""),
                "priority": int(spec.get("priority") or 0),
                "session": RepairSession(threshold=threshold),
                "threshold": threshold,
                "mutations": int(wstate["mutations"]),
                "emitted": [],
                "last_job_id": wstate["last_job_id"],
                "created_at": spec.get("ts"),
                "recovered": True,
            }
            stats["watches"] += 1
        if max_watch:
            self._watch_ids = itertools.count(max_watch + 1)

    def _recover_failed(self, job_id: str, spec: dict, stats: dict,
                        error: str) -> None:
        """Journal a terminal failure for a job recovery cannot re-run."""
        self._journal_event("failed", _Ref(job_id), error=error)
        self._journal_fallback[job_id] = self._fallback_summary(
            job_id, FAILED, spec, error
        )
        stats["failed"] += 1

    @staticmethod
    def _fallback_summary(job_id: str, state: str, spec: dict,
                          error: str | None) -> dict:
        """A minimal :meth:`Job.summary`-shaped row from journal data."""
        return {
            "id": job_id,
            "scenario": spec.get("scenario", ""),
            "graph_key": spec.get("graph_key", ""),
            "graph_name": spec.get("name", ""),
            "n_vertices": 0,
            "n_edges": 0,
            "priority": int(spec.get("priority") or 0),
            "state": state,
            "executor": "",
            "submitted_at": spec.get("ts"),
            "started_at": None,
            "finished_at": None,
            "queue_latency_seconds": None,
            "run_seconds": None,
            "error": error,
            "artifact_path": None,
            "timeout_seconds": spec.get("timeout_seconds"),
            "max_retries": int(spec.get("max_retries") or 0),
            "attempt": 0,
            "idempotency_key": spec.get("idempotency_key"),
            "recovered": True,
        }

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self, slot: int) -> None:
        while True:
            if self._stop_dispatch:
                return
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._closed or self._stop_dispatch:
                    return
                continue
            self._journal_event("started", job, attempt=job.attempt)
            if self._forked is not None and self._forked.circuit_open():
                # Graceful degradation: the worker pool is crash-looping;
                # run in-process (slower, shared GIL) rather than feeding
                # jobs to workers that keep dying.
                self._degraded_jobs += 1
                self.metrics.counter("repro_degraded_dispatch_total").inc()
                job.record_pass("degraded_dispatch", 0.0,
                                reason="worker circuit breaker open")
                self._run_job(job)
            elif self._forked is not None:
                self._run_job_forked(job, slot)
            elif self._remote is not None and self._remote.circuit_open():
                # Every registered host is down/cooling: run on the
                # coordinator itself rather than queueing into the void.
                self._degraded_jobs += 1
                self.metrics.counter("repro_degraded_dispatch_total").inc()
                job.record_pass("degraded_dispatch", 0.0,
                                reason="remote host circuit open")
                self._run_job(job)
            elif self._remote is not None:
                self._run_job_remote(job)
            else:
                self._run_job(job)

    def _run_job(self, job: Job) -> None:
        retried = False
        try:
            retried = self._run_job_inner(job)
        finally:
            if not retried:
                self.catalog.unpin(job.graph_key)
                self._trim_resident(job)

    def _trim_resident(self, job: Job) -> None:
        """Bound the in-memory results a long-lived engine retains."""
        if self.keep_results is None:
            return
        with self._resident_lock:
            self._resident.append(job)
            while len(self._resident) > self.keep_results:
                self._resident.popleft().result = None

    def _armed_faults(self, job: Job):
        """The job's fault plan, armed for its current attempt.

        A plan rides either the job's own config or the process-wide
        ``REPRO_FAULTS`` variable; the attempt arming is what makes retried
        runs execute clean (see :meth:`~repro.faults.FaultPlan.for_attempt`).
        """
        plan = job.config.faults
        if plan is None:
            plan = FaultPlan.from_env()
        if plan is None:
            return None
        return plan.for_attempt(job.attempt)

    def _run_job_inner(self, job: Job) -> bool:
        """Run one job in-process; returns True when a retry was scheduled."""
        started = time.perf_counter()
        try:
            token = job.cancel_token
            if token is not None:
                # The deadline budgets *run* time: restart the clock now
                # that the job left the queue (queue latency is unbounded
                # under load and not the job's fault).
                token.arm()
            t0 = time.perf_counter()
            graph = self.catalog.get(job.graph_key)
            job.record_pass("load_graph", time.perf_counter() - t0,
                            graph_key=job.graph_key)

            t0 = time.perf_counter()
            derived = self.catalog.derived_for(job.graph_key, job.config, job.scenario)
            job.record_pass("derived_artifacts", time.perf_counter() - t0,
                            artifacts=sorted(derived))

            config = job.config
            if self.pool is not None and config.pool is None:
                config = replace(config, pool=self.pool)
            config = replace(config, derived=derived, cancel=token,
                             faults=self._armed_faults(job))
            # The backend the job actually runs on (post pool injection) —
            # what status rows and the batch report must attribute to.
            job.executor = config.executor_name

            t0 = time.perf_counter()
            # Ambient registry + trace installed for the run: deep call
            # sites (walk cache, shm attach) charge this engine's
            # registry, and stage spans recorded anywhere in the pipeline
            # land both in repro_stage_seconds and — via the recorder —
            # in the job's durable pass history as ``stage:<name>`` rows.
            recorder = SpanRecorder()
            with use_registry(self.metrics), use_trace(job.trace_id), recorder:
                result = run_scenario(graph, job.scenario, config)
            job.record_pass(
                "run_scenario", time.perf_counter() - t0,
                executor=config.executor_name,
                n_sub_runs=len(result.sub_runs),
                walk_edges=int(sum(c.n_edges for c in result.circuits)),
            )
            for span in recorder.spans:
                extra = {k: v for k, v in span.items()
                         if k not in ("stage", "wall")}
                job.record_pass("stage:" + span["stage"], span["wall"],
                                **extra)
            if config.repair is not None:
                # The decision plus live hit/miss counters — how much of
                # this run was replayed vs recomputed.
                job.record_pass("repair", 0.0, **config.repair.report())
            job.result = result

            # Pre-stamp the terminal state so the durable artifact records
            # the finished job; finish() below only notifies the handle.
            job.state = DONE
            job.finished_at = time.time()
            self._write_artifact(job)
            self._journal_event("done", job)
            self.queue.finish(job, DONE)
            return False
        except RunCancelledError as exc:
            # Cooperative stop at a safe point. The passes recorded so far
            # ARE the partial pass history — persisted with the terminal
            # state so the artifact audits how far the job got.
            job.record_pass("cancelled", time.perf_counter() - started,
                            reason=exc.reason, where=exc.where)
            if exc.reason == "timeout":
                state, error = FAILED, str(exc)
            else:
                state, error = CANCELLED, None
            job.state = state
            job.error = error
            job.finished_at = time.time()
            self._write_artifact(job, swallow_errors=True)
            self._journal_event(state.lower(), job, error=error)
            self.queue.finish(job, state, error=error)
            return False
        except Exception as exc:  # a failed job must never kill its dispatcher
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.record_pass("error", 0.0, error=detail)
            if _is_transient(exc) and self._schedule_retry(job, detail):
                return True
            self._finish_failed(job, detail)
            return False

    # -- retry/backoff ------------------------------------------------------

    def _schedule_retry(self, job: Job, error: str) -> bool:
        """Arrange a backoff'd re-dispatch; False when out of budget."""
        if job.attempt >= job.max_retries or self._closed:
            return False
        next_attempt = job.attempt + 1
        base = min(self.retry_backoff_max,
                   self.retry_backoff * (2 ** job.attempt))
        # Deterministic jitter: reproducible schedules (the chaos tests
        # replay exactly), yet distinct jobs never thundering-herd.
        jitter = random.Random(f"{job.id}:{next_attempt}").random()
        backoff = base * (1.0 + jitter)
        job.record_pass("retry", backoff, attempt=next_attempt,
                        error=error, backoff_seconds=backoff)
        job.attempt = next_attempt
        job.error = None
        self._journal_event("retry", job, attempt=next_attempt,
                            error=error, backoff=backoff)
        timer = threading.Timer(backoff, self._requeue_after_backoff, args=())
        # The timer must know itself to claim its registry slot (the
        # close() race: exactly one of timer-fire / close resolves a job).
        timer.args = (timer, job)
        timer.daemon = True
        with self._timers_lock:
            self._retry_timers[timer] = job
        self._retries_scheduled += 1
        self.metrics.counter("repro_retries_scheduled_total").inc()
        timer.start()
        return True

    def _requeue_after_backoff(self, timer: threading.Timer, job: Job) -> None:
        with self._timers_lock:
            if self._retry_timers.pop(timer, None) is None:
                return  # close() claimed (and resolved) this job already
        token = job.cancel_token
        if token is not None and token.cancelled:
            # Cancelled while waiting out the backoff.
            job.record_pass("cancelled", 0.0, reason="cancel",
                            where="retry backoff")
            job.state = CANCELLED
            job.finished_at = time.time()
            self._write_artifact(job, swallow_errors=True)
            self._journal_event("cancelled", job)
            self.queue.finish(job, CANCELLED)
        elif not self.queue.requeue(job):
            self._finish_failed(job, "engine closed during retry backoff")
        else:
            return  # back in the queue; the pin stays held
        self.catalog.unpin(job.graph_key)
        self._trim_resident(job)

    # -- pre-forked dispatch (process mode) ---------------------------------

    def _run_job_forked(self, job: Job, slot: int) -> None:
        retried = False
        try:
            retried = self._run_job_forked_inner(job, slot)
        finally:
            with self._slots_lock:
                self._job_slots.pop(job.id, None)
            self._forked.clear(slot)
            if not retried:
                self.catalog.unpin(job.graph_key)
                self._trim_resident(job)

    def _run_job_forked_inner(self, job: Job, slot: int) -> bool:
        started = time.perf_counter()
        try:
            self._forked.clear(slot)
            with self._slots_lock:
                self._job_slots[job.id] = slot
            token = job.cancel_token
            if token is not None and token.cancelled:
                # A cancel that landed between pop() and slot registration
                # found no slot to flag; raise it now so the worker stops
                # at its first checkpoint.
                self._forked.cancel(slot)

            t0 = time.perf_counter()
            # Compute (and persist) the derived artifacts parent-side; the
            # worker re-reads them as a disk-cache hit instead of receiving
            # the arrays through the pipe.
            self.catalog.derived_for(job.graph_key, job.config, job.scenario)
            job.record_pass("persist_derived", time.perf_counter() - t0)

            out = self._forked.run(slot, self._job_spec(job))
            return self._apply_spec_out(job, out)
        except TransientJobError as exc:
            # Worker death or hang: the pool already respawned the slot;
            # the job retries (budget permitting) on the fresh worker.
            detail = str(exc)
            job.record_pass("worker_failure", time.perf_counter() - started,
                            error=detail)
            if self._schedule_retry(job, detail):
                return True
            self._finish_failed(job, detail)
            return False
        except Exception as exc:  # parent-side failure must not kill the loop
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.record_pass("error", time.perf_counter() - started,
                            error=detail)
            self._finish_failed(job, detail)
            return False

    def _job_spec(self, job: Job) -> dict:
        """The wire spec shipped to a forked worker or a remote host."""
        t0 = time.perf_counter()
        descriptor = self.catalog.share(job.graph_key)
        job.record_pass("share_graph", time.perf_counter() - t0,
                        graph_key=job.graph_key,
                        shared=descriptor is not None)
        return {
            "job_id": job.id,
            "scenario": job.scenario,
            "graph_key": job.graph_key,
            "config": replace(job.config, pool=None, cancel=None,
                              derived=None, repair=None,
                              faults=self._armed_faults(job)),
            "graph_descriptor": descriptor,
            "timeout_seconds": job.timeout_seconds,
            "trace_id": job.trace_id,
        }

    def _apply_spec_out(self, job: Job, out: dict) -> bool:
        """Land a worker/host result dict; True when a retry was scheduled."""
        for name, seconds, extra in out.get("passes", []):
            job.record_pass(name, seconds, **extra)
        # Worker-side counter/histogram increments (walk-cache hits, stage
        # latencies) fold into the coordinator's registry, so one scrape
        # covers the whole dispatch tree regardless of where jobs ran.
        self.metrics.merge_state(out.get("metrics_delta") or {})
        job.executor = out.get("executor", "") or job.executor
        state = out["state"]
        if state == DONE:
            job.result = out["result"]
            job.state = DONE
            job.finished_at = time.time()
            self._write_artifact(job)
            self._journal_event("done", job)
            self.queue.finish(job, DONE)
        elif state == CANCELLED:
            job.state = CANCELLED
            job.finished_at = time.time()
            self._write_artifact(job, swallow_errors=True)
            self._journal_event("cancelled", job)
            self.queue.finish(job, CANCELLED)
        else:
            error = out.get("error") or "job failed"
            if out.get("transient") and self._schedule_retry(job, error):
                return True
            self._finish_failed(job, error)
        return False

    # -- remote dispatch (coordinator mode) ----------------------------------

    def _run_job_remote(self, job: Job) -> None:
        retried = False
        try:
            retried = self._run_job_remote_inner(job)
        finally:
            if not retried:
                self.catalog.unpin(job.graph_key)
                self._trim_resident(job)

    def _run_job_remote_inner(self, job: Job) -> bool:
        started = time.perf_counter()
        try:
            spec = self._job_spec(job)
            out = self._remote.run(spec)
            return self._apply_spec_out(job, out)
        except TransientJobError as exc:
            # Host death, hang, or total unreachability: the pool marked
            # the host down; the retry re-dispatches to a surviving one.
            detail = str(exc)
            job.record_pass("host_failure", time.perf_counter() - started,
                            error=detail)
            if self._schedule_retry(job, detail):
                return True
            self._finish_failed(job, detail)
            return False
        except Exception as exc:  # coordinator-side failure: contain it
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.record_pass("error", time.perf_counter() - started,
                            error=detail)
            self._finish_failed(job, detail)
            return False

    def _finish_failed(self, job: Job, error: str) -> None:
        job.state = FAILED
        job.error = error
        job.finished_at = time.time()
        self._write_artifact(job, swallow_errors=True)
        self._journal_event("failed", job, error=error)
        self.queue.finish(job, FAILED, error=error)

    def _write_artifact(self, job: Job, swallow_errors: bool = False) -> None:
        if self.artifact_dir is None:
            return
        from ..bench.report_io import save_job

        try:
            t0 = time.perf_counter()
            # Stamped before serialization so the artifact's own status row
            # names its path — what evicted-job lookups serve verbatim.
            path = self.artifact_dir / f"{job.id}.json"
            job.artifact_path = str(path)
            save_job(job, path)
            job.record_pass("write_artifact", time.perf_counter() - t0,
                            path=str(path))
        except Exception:
            job.artifact_path = None  # never point at a file that isn't there
            if not swallow_errors:
                raise

    # -- lifecycle ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 30.0, grace: float = 5.0) -> dict:
        """Graceful shutdown, phase one: stop intake, let work land.

        New submissions raise :class:`~repro.errors.EngineDrainingError`
        (HTTP 503 with ``Retry-After`` at the front ends) while queued and
        running jobs keep executing. Past ``timeout`` seconds, dispatch
        stops, still-RUNNING jobs are asked to cancel at their next safe
        point (waited on for ``grace`` seconds), and the journal is
        checkpointed — **still-QUEUED jobs stay journaled** and will be
        re-enqueued by the next process's :meth:`recover`, so even an
        impatient drain loses nothing that was acknowledged.

        Follow with ``close(cancel_queued=False)``: cancelling the
        leftovers would journal them terminal and forfeit that recovery.
        """
        self._draining = True
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            counts = self.queue.counts()
            if counts[QUEUED] + counts[RUNNING] == 0:
                break
            time.sleep(0.05)
        # Past the deadline (or drained): stop dispatch so leftovers stay
        # QUEUED, then push RUNNING jobs to their next safe point.
        self._stop_dispatch = True
        for job in self.queue.jobs():
            if job.state == RUNNING and job.cancel_token is not None:
                self.cancel(job.id)
        grace_deadline = time.monotonic() + max(0.0, grace)
        while time.monotonic() < grace_deadline:
            if self.queue.counts()[RUNNING] == 0:
                break
            time.sleep(0.05)
        counts = self.queue.counts()
        kept = self.journal.checkpoint() if self.journal is not None else 0
        return {
            "drained": counts[QUEUED] + counts[RUNNING] == 0,
            "remaining_queued": counts[QUEUED],
            "remaining_running": counts[RUNNING],
            "journal_records_kept": kept,
            "timeout": timeout,
        }

    def close(self, cancel_queued: bool = True) -> None:
        """Drain dispatchers and release the pool (idempotent).

        Queued jobs are cancelled by default so close cannot hang behind a
        deep queue; pass ``cancel_queued=False`` to let the queue drain
        (or, after :meth:`drain`, to leave journaled leftovers for the
        next process to recover). Running jobs always finish — their
        shared pool stays up until the dispatchers exit.
        """
        if self._closed:
            return
        # Resolve pending backoff timers first: each job is either claimed
        # here (failed terminally so its handle unblocks) or by its timer
        # firing — never both (the registry pop below arbitrates).
        with self._timers_lock:
            pending = dict(self._retry_timers)
            self._retry_timers.clear()
        for timer, job in pending.items():
            timer.cancel()
            self._finish_failed(job, "engine closed during retry backoff")
            self.catalog.unpin(job.graph_key)
            self._trim_resident(job)
        if cancel_queued:
            for job in self.queue.jobs():
                if job.state == QUEUED:
                    self.cancel(job.id)  # also unpins the graph
        # Watch pins are in-process state; release them (the journal, not
        # the pin table, is what makes watches survive the restart).
        with self._watch_lock:
            heads = [w["graph_key"] for w in self._watches.values()]
            self._watches.clear()
        for key in heads:
            self.catalog.unpin(key)
        self._closed = True
        self.queue.close()
        for t in self._threads:
            t.join()
        if self._forked is not None:
            self._forked.close()
        if self._remote is not None:
            self._remote.close()
        if self.pool is not None and self._owns_pool:
            self.pool.close()
        if self.journal is not None:
            self.journal.close()
        self.catalog.close_shared()

    def segment_stats(self) -> dict:
        """Combined shared-segment stats (catalog + pool program store)."""
        stats = self.catalog.segment_stats()
        if self.pool is not None and hasattr(self.pool, "segment_stats"):
            for k, v in self.pool.segment_stats().items():
                stats[k] = stats.get(k, 0) + v
        return stats

    def supervisor_stats(self) -> dict:
        """Fault-tolerance counters for ``/healthz`` (shared assembly)."""
        return supervise.engine_supervisor_stats(self)

    # -- observability ------------------------------------------------------

    def _init_metrics(self) -> None:
        """Pre-create every required family so a fresh ``/metrics`` page
        renders the full schema (zero-valued, but present and typed)."""
        m = self.metrics
        m.gauge("repro_queue_depth", "Jobs currently QUEUED")
        m.gauge("repro_queue_jobs", "Jobs per state (terminal = lifetime)",
                labelnames=("state",))
        m.histogram("repro_queue_delay_seconds",
                    "Seconds between job submit and dispatch")
        m.counter("repro_jobs_total",
                  "Job state transitions (entries into each state)",
                  labelnames=("state",))
        m.counter("repro_http_responses_total", "HTTP responses by status",
                  labelnames=("method", "status"))
        m.histogram("repro_stage_seconds", "Wall seconds per pipeline stage",
                    labelnames=("stage",))
        m.counter("repro_catalog_events_total",
                  "Catalog cache hits/misses, evictions and rebuilds by kind",
                  labelnames=("kind",))
        m.gauge("repro_shm_segments", "Live shared-memory segments")
        m.gauge("repro_shm_bytes", "Bytes resident in shared-memory segments")
        m.counter("repro_wire_messages_total", "Frames sent",
                  labelnames=("scope",))
        m.counter("repro_wire_bytes_total",
                  "Frame bytes sent (header+meta+buffers)",
                  labelnames=("scope",))
        m.counter("repro_walk_cache_events_total",
                  "Phase-1 walk-table cache lookups by result",
                  labelnames=("result",))
        m.counter("repro_dispatcher_respawns_total",
                  "Worker respawns / host failures charged to the breaker",
                  labelnames=("pool",))
        m.gauge("repro_breaker_open",
                "1 while a dispatcher pool's circuit breaker is open",
                labelnames=("pool",))
        m.counter("repro_degraded_dispatch_total",
                  "Jobs degraded to in-process execution (breaker open)")
        m.counter("repro_retries_scheduled_total",
                  "Transient-failure retries scheduled")
        m.counter("repro_journal_appends_total",
                  "Durable journal records appended")
        m.counter("repro_shm_attaches_total",
                  "Shared-segment descriptor handouts")

    def render_metrics(self) -> str:
        """``GET /metrics``: bridge the dict-view surfaces into gauges,
        then render the whole registry as Prometheus text.

        Native counters/histograms (queue transitions, queue delay, wire
        bytes, stage latency, walk cache, respawns) accumulate in the
        registry on their hot paths; the surfaces that stayed dict-first
        (segment stats, catalog stats, breaker state, journal) are read
        here, at scrape time, so the page is consistent without making
        every dict write pay for a second bookkeeping scheme.
        """
        m = self.metrics
        counts = self.queue.counts()
        m.gauge("repro_queue_depth").set(counts[QUEUED])
        jobs_g = m.gauge("repro_queue_jobs", labelnames=("state",))
        for state, n in counts.items():
            jobs_g.labels(state=state).set(n)
        seg = self.segment_stats()
        m.gauge("repro_shm_segments").set(seg.get("segments", 0))
        m.gauge("repro_shm_bytes").set(seg.get("bytes", 0))
        cat_family = m.counter("repro_catalog_events_total",
                               labelnames=("kind",))
        for kind, n in self.catalog.stats.items():
            cat_family.labels(kind=kind).set_total(n)
        breaker_g = m.gauge("repro_breaker_open", labelnames=("pool",))
        if self._forked is not None:
            breaker_g.labels(pool="forked").set(
                1 if self._forked.circuit_open() else 0)
        if self._remote is not None:
            breaker_g.labels(pool="remote").set(
                1 if self._remote.circuit_open() else 0)
        m.counter("repro_retries_scheduled_total").labels().set_total(
            self._retries_scheduled)
        m.counter("repro_degraded_dispatch_total").labels().set_total(
            self._degraded_jobs)
        if self.journal is not None:
            m.counter("repro_journal_appends_total").labels().set_total(
                self.journal.appended)
        # Frames sent by code that named no scoped accumulator (the shared
        # process-wide WIRE) still belong on this engine's page when the
        # engine owns the process default registry; scoped senders already
        # wrote themselves in at add() time.
        if self.metrics is get_registry():
            frame.WIRE.snapshot()  # touch: materialize the lazy accumulator
        return m.render()

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Ref:
    """A job-id stand-in for journal calls with no live :class:`Job`."""

    __slots__ = ("id",)

    def __init__(self, job_id: str):
        self.id = job_id
