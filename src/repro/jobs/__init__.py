"""Job orchestration: graph catalog, shared-pool scheduler, serving front end.

Everything below this package existed to run **one** request well; this
package turns the library into a long-lived, multi-request system:

* :mod:`~repro.jobs.catalog` — content-addressed graph store with
  memory-mapped loads and cached derived artifacts (partition maps,
  eulerization plans), so repeat requests skip Setup's expensive work;
* :mod:`~repro.jobs.queue` / :mod:`~repro.jobs.engine` — a priority job
  queue and thread-based dispatchers multiplexing scenario runs over one
  persistent :class:`~repro.bsp.executors.SharedPool`, with per-job
  durable schema-v5 artifacts and future-style handles — hardened for
  sustained load: a bounded terminal-job registry with an artifact-index
  status fallback, ``max_queued`` backpressure
  (:class:`~repro.errors.QueueFullError` → HTTP 429), and cooperative
  cancellation/deadlines that stop even RUNNING jobs at their next
  superstep or sub-run boundary;
* :mod:`~repro.jobs.server` / :mod:`~repro.jobs.client` — a stdlib JSON
  HTTP API (``repro-euler serve``) and its client
  (``repro-euler submit|status|jobs``);
* :mod:`~repro.jobs.remote` — multi-host execution: ``repro-euler
  worker`` host processes serving a length-prefixed binary protocol, and
  the coordinator-side :class:`~repro.jobs.remote.RemoteHostPool` that
  ``JobEngine(dispatcher="remote", hosts=...)`` schedules over with
  content-hash shard placement and dead-host re-dispatch;
* :mod:`~repro.jobs.batch` — offline JSONL batches with a
  ``run_table.csv``-style one-row-per-job report.

Dynamic graphs ride the same surfaces: the catalog stores
:class:`~repro.deltas.GraphDelta` chains between content hashes
(``mutate`` / ``export_delta_bytes``), the engine advances **watch jobs**
(:meth:`~repro.jobs.engine.JobEngine.add_watch` /
:meth:`~repro.jobs.engine.JobEngine.mutate_graph`) that re-emit
incrementally repaired results per mutation, and the coordinator ships
deltas instead of full NPZs to worker hosts that hold the parent hash.

Quickstart::

    from repro.jobs import GraphCatalog, JobEngine

    with JobEngine(GraphCatalog(".graph_catalog"), dispatchers=4) as engine:
        handles = [engine.submit("circuit", graph=g) for _ in range(100)]
        walks = [h.result().circuit for h in handles]   # one warm setup
"""

from .batch import load_job_specs, run_batch, write_report_csv
from .catalog import GraphCatalog, graph_key, shard_of
from .engine import JobEngine
from .remote import RemoteHostPool, WorkerHost, worker_serve
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobResult,
)

__all__ = [
    "GraphCatalog",
    "graph_key",
    "shard_of",
    "JobEngine",
    "WorkerHost",
    "RemoteHostPool",
    "worker_serve",
    "Job",
    "JobQueue",
    "JobResult",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "load_job_specs",
    "run_batch",
    "write_report_csv",
]
