"""Crash-safe job journal: an append-only, fsync'd WAL of job transitions.

The durable per-job artifacts (schema v5) record jobs that *finished*;
nothing before this module recorded jobs that were merely *accepted*. A
``kill -9`` of the server therefore lost every queued job — the client
held a job id that the restarted server had never heard of. The journal
closes that hole: :meth:`~repro.jobs.engine.JobEngine.submit` appends (and
fsyncs) a ``submitted`` record **before acknowledging the submission**, so
an acknowledged job is always recoverable, and every later transition
(``started``, ``retry``, terminal) is appended as it happens.

Record format
-------------
One JSON object per line, self-checksummed::

    {"seq": 12, "ts": 1700000000.0, "event": "submitted",
     "job_id": "job-000003", ..., "crc": 2864250838}

``crc`` is the CRC-32 of the canonical JSON of every other field. Each
append is a single ``write()`` on an ``O_APPEND`` descriptor followed by
``fsync``, so records are atomic with respect to a crash: the only
possible damage is a torn *final* line, which :func:`replay` detects (bad
JSON or bad CRC) and discards. Replay of any prefix of a journal is
therefore always well-defined — the property the recovery tests pin.

Events
------
``submitted``
    Full respawn spec: scenario, graph key, wire config, priority, name,
    timeout, retry policy, and the client's optional idempotency key.
``started``
    The job left the queue (carries the attempt index).
``retry``
    A transient failure was re-enqueued (attempt index, error, backoff).
``done`` / ``failed`` / ``cancelled``
    Terminal states.
``watch_created`` / ``watch_advanced`` / ``watch_deleted``
    Watch-job lifecycle (the ``job_id`` field carries the watch id).
    Invisible to :func:`reduce_records` — a watch is not a job — but
    folded by :func:`reduce_watches` so a restarted engine rebuilds its
    watch registry: the ``watch_created`` spec plus the *latest*
    ``watch_advanced`` record pin the watch's current graph head.

:func:`reduce_records` folds a replayed record list into per-job state;
:meth:`JobJournal.checkpoint` atomically rewrites the file keeping only
live (non-terminal) jobs — plus, for each live watch, its creation spec
and latest advance — the graceful-drain compaction.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from pathlib import Path

from ..obs import MetricsRegistry
from ..pipeline.context import RunConfig

__all__ = [
    "JobJournal",
    "reduce_records",
    "reduce_watches",
    "config_to_dict",
    "config_from_dict",
    "WIRE_CONFIG_FIELDS",
    "WATCH_EVENTS",
]

#: RunConfig fields that cross the wire and the journal (pool/derived/
#: spill/cancel are deliberately process-local; ``faults`` is re-armed by
#: the engine per attempt, never persisted).
WIRE_CONFIG_FIELDS = {
    "n_parts": int,
    "partitioner": str,
    "strategy": str,
    "matching": str,
    "seed": int,
    "executor": str,
    "workers": int,
    "transport": str,
    "validate": bool,
    "verify": bool,
}

#: Journal events that end a job's lifecycle.
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})

#: Watch-lifecycle events (``job_id`` carries the watch id, not a job's).
WATCH_EVENTS = frozenset({"watch_created", "watch_advanced", "watch_deleted"})

#: Journal event → registry state name.
EVENT_STATE = {
    "submitted": "QUEUED",
    "retry": "QUEUED",
    "started": "RUNNING",
    "done": "DONE",
    "failed": "FAILED",
    "cancelled": "CANCELLED",
}


def config_from_dict(payload: dict) -> RunConfig:
    """Build a :class:`RunConfig` from a wire/journal ``config`` object."""
    kwargs = {}
    for key, value in (payload or {}).items():
        caster = WIRE_CONFIG_FIELDS.get(key)
        if caster is None:
            raise ValueError(f"unknown config field {key!r}")
        if caster is bool:
            # bool("false") is True — reject anything but a JSON boolean
            # rather than silently flipping the request's meaning.
            if not isinstance(value, bool):
                raise ValueError(
                    f"config field {key!r} must be a JSON boolean, "
                    f"got {value!r}"
                )
            kwargs[key] = value
        else:
            kwargs[key] = caster(value)
    return RunConfig(**kwargs)


def config_to_dict(config: RunConfig) -> dict:
    """The wire-field view of a config (the journal's respawn spec).

    Only :data:`WIRE_CONFIG_FIELDS` survive — process-local fields (pool,
    cancel token, derived artifacts, fault plan, spill dir) are exactly
    the ones a recovered job must *re-acquire*, not replay. ``None``
    values are dropped so the round-trip through
    :func:`config_from_dict` reproduces the defaults.
    """
    out = {}
    for key in WIRE_CONFIG_FIELDS:
        value = getattr(config, key)
        if value is not None:
            out[key] = value
    return out


def _canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=float).encode()


def _crc(record: dict) -> int:
    return zlib.crc32(_canonical(record))


class JobJournal:
    """Append-only fsync'd journal of job transitions for one engine.

    Parameters
    ----------
    path:
        Journal file (created, with parents, on first append). A
        directory is also accepted — the conventional ``journal.wal``
        name is used inside it.
    fsync:
        ``True`` (default) makes every append durable before it returns —
        the acknowledgment guarantee. ``False`` trades crash safety for
        speed (tests, ephemeral engines).
    """

    FILENAME = "journal.wal"

    def __init__(self, path: str | Path, fsync: bool = True,
                 metrics: MetricsRegistry | None = None):
        path = Path(path)
        if path.suffix == "" and (path.is_dir() or not path.name.count(".")):
            path = path / self.FILENAME
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        self._fd: int | None = None
        self._seq = 0
        self.appended = 0
        # Private registry by default: a throwaway journal in a test must
        # not leak appends into the process-wide /metrics page. The engine
        # passes its own registry in.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_appends = self.metrics.counter(
            "repro_journal_appends_total",
            "Durable journal records appended",
        )

    # -- writing ------------------------------------------------------------

    def _ensure_open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def append(self, event: str, job_id: str, **fields) -> dict:
        """Durably append one transition record; returns the record."""
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "ts": time.time(),
                      "event": event, "job_id": job_id, **fields}
            record["crc"] = _crc(record)
            fd = self._ensure_open()
            os.write(fd, json.dumps(record, default=float).encode() + b"\n")
            if self.fsync:
                os.fsync(fd)
            self.appended += 1
            self._m_appends.inc()
            return record

    # -- reading ------------------------------------------------------------

    def replay(self) -> list[dict]:
        """Every intact record, in order; torn/corrupt tails are dropped.

        Pure and idempotent: replaying the same file (or any byte prefix
        of it) any number of times yields the same records. A record that
        fails JSON parsing or its CRC ends the replay — nothing after a
        damaged line is trusted.
        """
        try:
            data = self.path.read_bytes()
        except OSError:
            return []
        records: list[dict] = []
        for line in data.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            crc = record.pop("crc", None)
            if crc != _crc(record):
                break
            records.append(record)
        if records:
            # Appends after a replay continue the sequence.
            with self._lock:
                self._seq = max(self._seq, max(r["seq"] for r in records))
        return records

    # -- compaction ---------------------------------------------------------

    def checkpoint(self, keep_job_ids=None) -> int:
        """Atomically rewrite the journal keeping only live jobs' records.

        ``keep_job_ids``: the jobs to preserve; ``None`` derives the live
        (non-terminal) set from the journal itself. Returns the number of
        records kept. The rewrite is temp-file + ``os.replace`` + fsync,
        so a crash mid-checkpoint leaves either the old or the new
        journal, never a mix.
        """
        with self._lock:
            records = []
            try:
                data = self.path.read_bytes()
            except OSError:
                data = b""
            for line in data.split(b"\n"):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    break
                crc = record.pop("crc", None) if isinstance(record, dict) else None
                if not isinstance(record, dict) or crc != _crc(record):
                    break
                records.append(record)
            if keep_job_ids is None:
                keep_job_ids = {
                    job_id for job_id, state in reduce_records(records).items()
                    if state["event"] not in TERMINAL_EVENTS
                }
            keep_job_ids = set(keep_job_ids)
            # Live watches survive compaction as their creation spec plus
            # the *latest* advance (all recover() needs to rebuild the
            # registry) — never as every mutation ever journaled, and
            # never dropped just because reduce_records cannot see them.
            watch_states = reduce_watches(records)
            live_watches = {
                wid for wid, state in watch_states.items()
                if not state["deleted"] and state["spec"] is not None
            }
            last_advance: dict[str, int] = {}
            for r in records:
                if (r.get("event") == "watch_advanced"
                        and r["job_id"] in live_watches):
                    last_advance[r["job_id"]] = r["seq"]
            kept = []
            for r in records:
                event = r.get("event")
                if event in WATCH_EVENTS:
                    if r["job_id"] not in live_watches:
                        continue
                    if (event == "watch_advanced"
                            and r["seq"] != last_advance.get(r["job_id"])):
                        continue
                    kept.append(r)
                elif r["job_id"] in keep_job_ids:
                    kept.append(r)
            tmp = self.path.with_suffix(".tmp")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                for record in kept:
                    record = dict(record)
                    record["crc"] = _crc(record)
                    fh.write(json.dumps(record, default=float).encode() + b"\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            if self._fd is not None:
                # The old inode is gone; reopen on next append.
                os.close(self._fd)
                self._fd = None
            return len(kept)

    # -- lifecycle ----------------------------------------------------------

    def stats(self) -> dict:
        """Journal path, appended-record count, and on-disk size."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {"path": str(self.path), "appended": self.appended,
                "bytes": size, "fsync": self.fsync}

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def reduce_records(records: list[dict]) -> dict[str, dict]:
    """Fold replayed records into per-job recovery state.

    Returns ``job_id → state`` where each state dict carries:

    * ``event`` — the job's last journaled event (its state at crash);
    * ``spec`` — the ``submitted`` record (the respawn spec), when seen;
    * ``attempt`` — the highest attempt index journaled (0-based);
    * ``error`` — the last recorded error, if any.

    Records for a job whose ``submitted`` record was compacted away (or
    lost to a torn head) still reduce — they just carry no spec, and the
    engine treats them as unrecoverable.
    """
    jobs: dict[str, dict] = {}
    for record in records:
        job_id = record.get("job_id")
        event = record.get("event")
        if not job_id or event not in EVENT_STATE:
            continue
        state = jobs.setdefault(
            job_id, {"event": None, "spec": None, "attempt": 0, "error": None}
        )
        state["event"] = event
        if event == "submitted":
            state["spec"] = record
        if "attempt" in record:
            state["attempt"] = max(state["attempt"], int(record["attempt"]))
        if record.get("error"):
            state["error"] = record["error"]
    return jobs


def reduce_watches(records: list[dict]) -> dict[str, dict]:
    """Fold replayed records into per-watch recovery state.

    Returns ``watch_id → state`` where each state dict carries:

    * ``spec`` — the ``watch_created`` record (scenario, config, name,
      threshold), when seen;
    * ``graph_key`` — the watch's current graph head (the latest
      ``watch_advanced`` key, else the created key);
    * ``mutations`` — how many advances were journaled;
    * ``last_job_id`` — the last emission job id, if any;
    * ``deleted`` — whether a ``watch_deleted`` record closed the watch.
    """
    watches: dict[str, dict] = {}
    for record in records:
        wid = record.get("job_id")
        event = record.get("event")
        if not wid or event not in WATCH_EVENTS:
            continue
        state = watches.setdefault(
            wid, {"spec": None, "graph_key": None, "mutations": 0,
                  "last_job_id": None, "deleted": False},
        )
        if event == "watch_created":
            state["spec"] = record
            state["graph_key"] = record.get("graph_key")
            state["deleted"] = False
        elif event == "watch_advanced":
            state["graph_key"] = record.get("graph_key") or state["graph_key"]
            state["mutations"] += 1
            if record.get("emitted"):
                state["last_job_id"] = record["emitted"]
        elif event == "watch_deleted":
            state["deleted"] = True
    return watches
