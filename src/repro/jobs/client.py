"""Thin stdlib HTTP client for the serve API (used by the CLI and tests).

``urllib.request`` only — the client mirrors the server's no-dependency
stance. Every method returns the decoded JSON payload; HTTP error statuses
raise :class:`JobClientError` carrying the server's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..errors import ReproError

__all__ = ["JobClient", "JobClientError"]


class JobClientError(ReproError):
    """An HTTP error from the serve API (carries status and server message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class JobClient:
    """Talk to a ``repro-euler serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise JobClientError(exc.code, message) from None

    # -- API wrappers ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def catalog(self) -> dict:
        return self._request("GET", "/catalog")

    def put_graph(self, *, path: str | None = None, edges=None,
                  n_vertices: int | None = None, name: str = "") -> dict:
        body: dict = {"name": name}
        if path is not None:
            body["path"] = str(path)
        if edges is not None:
            body["graph"] = {"edges": [[int(u), int(v)] for u, v in edges]}
            if n_vertices is not None:
                body["graph"]["n_vertices"] = int(n_vertices)
        return self._request("POST", "/graphs", body)

    def submit(self, scenario: str, *, graph_key: str | None = None,
               path: str | None = None, config: dict | None = None,
               priority: int = 0, name: str = "",
               timeout_seconds: float | None = None) -> dict:
        body: dict = {"scenario": scenario, "priority": priority, "name": name,
                      "config": config or {}}
        if timeout_seconds is not None:
            body["timeout_seconds"] = float(timeout_seconds)
        if graph_key is not None:
            body["graph_key"] = graph_key
        elif path is not None:
            body["path"] = str(path)
        else:
            raise ValueError("submit needs graph_key or path")
        return self._request("POST", "/jobs", body)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_seconds: float = 0.1) -> dict:
        """Poll until the job is terminal; returns the final status summary."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("DONE", "FAILED", "CANCELLED"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
