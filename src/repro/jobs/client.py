"""Thin stdlib HTTP client for the serve API (used by the CLI and tests).

``http.client`` only — the client mirrors the server's no-dependency
stance. Every method returns the decoded JSON payload; HTTP error statuses
raise :class:`JobClientError` carrying the server's ``error`` message.

Connections are **persistent per thread**: both front ends speak HTTP/1.1
keep-alive, and a poll loop (``wait``) reusing one TCP connection skips a
connect/teardown per request — the difference between ~126 and several
hundred status round-trips per second against a warm server. A stale
connection (server restarted, idle timeout) is retried once on a fresh
one, so callers never see the reconnect.

Resilience is opt-in through ``retry_seconds``: with a budget set, the
client rides out connection failures (server restarting after a crash)
and 429/503 rejections — honoring the server's ``Retry-After`` header —
with capped exponential backoff, until the wall-clock budget is spent,
then raises a typed :class:`~repro.errors.RetriesExhaustedError`. Pair
retried ``submit`` calls with an ``idempotency_key``: a retry whose
original request *did* land then returns the original job instead of
queueing a duplicate.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from urllib.parse import urlsplit

from ..errors import ReproError, RetriesExhaustedError

__all__ = ["JobClient", "JobClientError"]


class JobClientError(ReproError):
    """An HTTP error from the serve API (carries status and server message)."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        #: The server's ``Retry-After`` hint in seconds, when present
        #: (429 backpressure and 503 draining responses carry one).
        self.retry_after = retry_after


class JobClient:
    """Talk to a ``repro-euler serve`` instance at ``base_url``.

    Parameters
    ----------
    timeout:
        Per-request socket timeout in seconds.
    retry_seconds:
        ``None`` (default) keeps the historical behavior: one transparent
        reconnect for a stale keep-alive socket, everything else raises
        immediately. A number arms budgeted retrying: connection errors
        and 429/503 responses back off (honoring ``Retry-After``) and
        retry until the budget is exhausted, then raise
        :class:`~repro.errors.RetriesExhaustedError`.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retry_seconds: float | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry_seconds = retry_seconds
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            conn.connect()
            # Nagle + delayed ACK costs ~40ms per request on a reused
            # connection (request headers and body leave in separate
            # writes); a poll loop cannot live with that.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Drop this thread's persistent connection (others unaffected)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request_once(self, method: str, path: str,
                      payload: dict | None = None,
                      raw: bool = False) -> dict | str:
        """One request (with the single stale-socket reconnect)."""
        data = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, self._prefix + path, body=data,
                             headers=headers)
                resp = conn.getresponse()
                body = resp.read()  # always drain: keeps the socket reusable
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive socket (server restart, idle close):
                # retry exactly once on a fresh connection.
                self.close()
                if attempt:
                    raise
        if resp.status >= 400:
            try:
                message = json.loads(body).get("error", resp.reason)
            except ValueError:
                message = resp.reason
            retry_after = resp.getheader("Retry-After")
            try:
                retry_after = float(retry_after) if retry_after else None
            except ValueError:
                retry_after = None
            raise JobClientError(resp.status, message, retry_after=retry_after)
        return body.decode() if raw else json.loads(body)

    def _request(self, method: str, path: str,
                 payload: dict | None = None,
                 raw: bool = False) -> dict | str:
        if self.retry_seconds is None:
            return self._request_once(method, path, payload, raw=raw)
        deadline = time.monotonic() + self.retry_seconds
        delay = 0.05
        last: Exception | None = None
        while True:
            try:
                return self._request_once(method, path, payload, raw=raw)
            except JobClientError as exc:
                if exc.status not in (429, 503):
                    raise  # a real answer, not a transient rejection
                last = exc
                wait = exc.retry_after if exc.retry_after is not None else delay
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # Server down/restarting: keep knocking within the budget.
                last = exc
                wait = delay
            if time.monotonic() + wait > deadline:
                raise RetriesExhaustedError(self.retry_seconds, last)
            time.sleep(wait)
            delay = min(delay * 2, 2.0)

    # -- API wrappers ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition page, verbatim."""
        return self._request("GET", "/metrics", raw=True)

    def catalog(self) -> dict:
        return self._request("GET", "/catalog")

    def put_graph(self, *, path: str | None = None, edges=None,
                  n_vertices: int | None = None, name: str = "") -> dict:
        body: dict = {"name": name}
        if path is not None:
            body["path"] = str(path)
        if edges is not None:
            body["graph"] = {"edges": [[int(u), int(v)] for u, v in edges]}
            if n_vertices is not None:
                body["graph"]["n_vertices"] = int(n_vertices)
        return self._request("POST", "/graphs", body)

    def submit(self, scenario: str, *, graph_key: str | None = None,
               path: str | None = None, config: dict | None = None,
               priority: int = 0, name: str = "",
               timeout_seconds: float | None = None,
               max_retries: int | None = None,
               idempotency_key: str | None = None) -> dict:
        body: dict = {"scenario": scenario, "priority": priority, "name": name,
                      "config": config or {}}
        if timeout_seconds is not None:
            body["timeout_seconds"] = float(timeout_seconds)
        if max_retries is not None:
            body["max_retries"] = int(max_retries)
        if idempotency_key is not None:
            body["idempotency_key"] = str(idempotency_key)
        if graph_key is not None:
            body["graph_key"] = graph_key
        elif path is not None:
            body["path"] = str(path)
        else:
            raise ValueError("submit needs graph_key or path")
        return self._request("POST", "/jobs", body)

    def mutate(self, graph_key: str, *, insert=None, delete_eids=None,
               name: str = "") -> dict:
        """Apply an edge delta to a cataloged graph (``PATCH /graphs/<key>``).

        ``insert``: iterable of ``(u, v)`` pairs (endpoints beyond the
        base vertex count grow the graph); ``delete_eids``: edge ids in
        the base graph's edge list. Returns the child graph's content key
        plus one emission-job entry per watch on the base graph.
        """
        body: dict = {"name": name}
        if insert is not None:
            body["insert"] = [[int(u), int(v)] for u, v in insert]
        if delete_eids is not None:
            body["delete_eids"] = [int(e) for e in delete_eids]
        return self._request("PATCH", f"/graphs/{graph_key}", body)

    def create_watch(self, graph_key: str, scenario: str = "circuit", *,
                     config: dict | None = None, name: str = "",
                     threshold: float | None = None,
                     priority: int = 0) -> dict:
        body: dict = {"graph_key": graph_key, "scenario": scenario,
                      "config": config or {}, "name": name,
                      "priority": int(priority)}
        if threshold is not None:
            body["threshold"] = float(threshold)
        return self._request("POST", "/watches", body)

    def watches(self) -> list[dict]:
        return self._request("GET", "/watches")["watches"]

    def watch(self, watch_id: str) -> dict:
        return self._request("GET", f"/watches/{watch_id}")

    def delete_watch(self, watch_id: str) -> dict:
        return self._request("DELETE", f"/watches/{watch_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_seconds: float = 0.1) -> dict:
        """Poll until the job is terminal; returns the final status summary."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("DONE", "FAILED", "CANCELLED"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
