"""Thin stdlib HTTP client for the serve API (used by the CLI and tests).

``http.client`` only — the client mirrors the server's no-dependency
stance. Every method returns the decoded JSON payload; HTTP error statuses
raise :class:`JobClientError` carrying the server's ``error`` message.

Connections are **persistent per thread**: both front ends speak HTTP/1.1
keep-alive, and a poll loop (``wait``) reusing one TCP connection skips a
connect/teardown per request — the difference between ~126 and several
hundred status round-trips per second against a warm server. A stale
connection (server restarted, idle timeout) is retried once on a fresh
one, so callers never see the reconnect.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from urllib.parse import urlsplit

from ..errors import ReproError

__all__ = ["JobClient", "JobClientError"]


class JobClientError(ReproError):
    """An HTTP error from the serve API (carries status and server message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class JobClient:
    """Talk to a ``repro-euler serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            conn.connect()
            # Nagle + delayed ACK costs ~40ms per request on a reused
            # connection (request headers and body leave in separate
            # writes); a poll loop cannot live with that.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Drop this thread's persistent connection (others unaffected)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, self._prefix + path, body=data,
                             headers=headers)
                resp = conn.getresponse()
                body = resp.read()  # always drain: keeps the socket reusable
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive socket (server restart, idle close):
                # retry exactly once on a fresh connection.
                self.close()
                if attempt:
                    raise
        if resp.status >= 400:
            try:
                message = json.loads(body).get("error", resp.reason)
            except ValueError:
                message = resp.reason
            raise JobClientError(resp.status, message)
        return json.loads(body)

    # -- API wrappers ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def catalog(self) -> dict:
        return self._request("GET", "/catalog")

    def put_graph(self, *, path: str | None = None, edges=None,
                  n_vertices: int | None = None, name: str = "") -> dict:
        body: dict = {"name": name}
        if path is not None:
            body["path"] = str(path)
        if edges is not None:
            body["graph"] = {"edges": [[int(u), int(v)] for u, v in edges]}
            if n_vertices is not None:
                body["graph"]["n_vertices"] = int(n_vertices)
        return self._request("POST", "/graphs", body)

    def submit(self, scenario: str, *, graph_key: str | None = None,
               path: str | None = None, config: dict | None = None,
               priority: int = 0, name: str = "",
               timeout_seconds: float | None = None) -> dict:
        body: dict = {"scenario": scenario, "priority": priority, "name": name,
                      "config": config or {}}
        if timeout_seconds is not None:
            body["timeout_seconds"] = float(timeout_seconds)
        if graph_key is not None:
            body["graph_key"] = graph_key
        elif path is not None:
            body["path"] = str(path)
        else:
            raise ValueError("submit needs graph_key or path")
        return self._request("POST", "/jobs", body)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_seconds: float = 0.1) -> dict:
        """Poll until the job is terminal; returns the final status summary."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("DONE", "FAILED", "CANCELLED"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
