"""Serving front end: a stdlib JSON-over-HTTP API around the job engine.

No framework, no new dependencies. All route logic lives in
:class:`JobApi` — a transport-independent ``(method, path, body) →
(status, payload)`` mapping — shared by two front ends:

* the **threaded** front end here (``http.server.ThreadingHTTPServer``,
  one thread per connection), the portable default;
* the **async** front end (:mod:`repro.jobs.aserver`,
  ``asyncio.start_server`` with keep-alive), where cheap submit / status /
  healthz / cancel traffic is multiplexed on one event loop instead of
  competing for threads with result serialization.

The API surface:

==========  =======================  ===========================================
Method      Path                     Meaning
==========  =======================  ===========================================
``GET``     ``/healthz``             liveness + job counts per state + limits
                                     + dispatcher mode + segment-store stats
``GET``     ``/catalog``             catalog entries + hit/miss/eviction stats
``POST``    ``/jobs``                submit a job → ``{"job_id": ...}``; **429**
                                     once the queue's ``max_queued`` bound is hit
``POST``    ``/graphs``              catalog a graph (inline edges or npz path)
``GET``     ``/jobs``                retained job summaries
``GET``     ``/jobs/<id>``           status summary (artifact fallback for jobs
                                     evicted from the bounded registry)
``GET``     ``/jobs/<id>/result``    full schema-v5 job artifact (404 until
                                     terminal; **410** when the result was
                                     evicted with no durable artifact)
``DELETE``  ``/jobs/<id>``           cancel: queued jobs on the spot, RUNNING
                                     jobs cooperatively (next safe point)
``PATCH``   ``/graphs/<key>``        apply an edge delta (``insert`` /
                                     ``delete_eids``) → the child graph's
                                     content key; watches on the base graph
                                     each re-emit a repaired result
``POST``    ``/watches``             pin a (graph, scenario) pair: every
                                     mutation re-emits an incrementally
                                     repaired result job
``GET``     ``/watches[/<id>]``      watch registry / one watch's status
``DELETE``  ``/watches/<id>``        tear a watch down
==========  =======================  ===========================================

Submission bodies name the graph one of three ways: ``graph_key`` (already
cataloged), ``graph`` (inline ``{"n_vertices", "edges": [[u, v], ...]}``),
or ``path`` (a server-local edge-list/NPZ file). Config fields mirror
:class:`~repro.pipeline.context.RunConfig`; job-level fields are
``priority`` (clamped to ±``MAX_WIRE_PRIORITY`` — one client cannot starve
the queue with an absurd value) and ``timeout_seconds`` (run deadline).
"""

from __future__ import annotations

import json
import signal
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from ..deltas import GraphDelta
from ..errors import (
    EngineDrainingError,
    FaultInjectedError,
    JobError,
    QueueFullError,
    ReproError,
)
from ..faults import FaultPlan
from ..graph.graph import Graph
from ..graph.io import load_edge_list, load_npz
from ..scenarios.base import scenario_names
from .engine import JobEngine
# Wire-config parsing lives with the journal now (the same respawn spec
# crosses both the HTTP wire and the WAL); re-exported here for the
# established import path.
from .journal import WIRE_CONFIG_FIELDS as _CONFIG_FIELDS  # noqa: F401
from .journal import config_from_dict
from .queue import DONE, TERMINAL_STATES

__all__ = ["JobApi", "TextResponse", "make_server", "serve_forever",
           "config_from_dict", "MAX_WIRE_PRIORITY"]

#: Wire-level priority clamp: submissions outside ±this are clamped, so a
#: single client cannot monopolize (or bury) the priority queue.
MAX_WIRE_PRIORITY = 100


class TextResponse(str):
    """A plain-text route payload (e.g. ``GET /metrics``).

    Routes normally return JSON dicts; a ``TextResponse`` tells both front
    ends to ship the string verbatim with ``content_type`` instead of
    JSON-encoding it.
    """

    content_type = "text/plain; version=0.0.4; charset=utf-8"


def _graph_from_body(body: dict, engine: JobEngine) -> tuple[Graph | None, str | None, str]:
    """Resolve a request body to ``(graph, graph_key, name)``.

    Exactly one of ``graph``/``graph_key`` is non-None. The graph is *not*
    cataloged here — the job-submission route hands the object straight to
    :meth:`JobEngine.submit`, whose ``put(..., pin=True)`` catalogs and
    pins in one lock hold (no catalog-then-pin TOCTOU window for a
    concurrent budget eviction to exploit); ``POST /graphs`` catalogs it
    itself.
    """
    name = str(body.get("name", ""))
    if "graph_key" in body:
        key = str(body["graph_key"])
        if key not in engine.catalog:
            raise KeyError(f"unknown graph key {key!r}")
        return None, key, name
    if "graph" in body:
        spec = body["graph"]
        edges = np.asarray(spec.get("edges", []), dtype=np.int64).reshape(-1, 2)
        n_vertices = int(
            spec.get(
                "n_vertices", int(edges.max()) + 1 if edges.size else 0
            )
        )
        return Graph(n_vertices, edges[:, 0], edges[:, 1]), None, name
    if "path" in body:
        path = Path(str(body["path"]))
        if path.suffix == ".npz":
            g, _ = load_npz(path)
        else:
            g = load_edge_list(path)
        return g, None, name or path.name
    raise ValueError("request must name a graph: graph_key, graph, or path")


class JobApi:
    """Transport-independent routing: ``(method, path, body) → (status, payload)``.

    Both front ends delegate here, so route behavior — including the
    exception → status mapping — is defined exactly once. ``handle`` never
    raises: every failure maps to a JSON error payload (429 for
    backpressure, 404 for unknown resources, 400 for bad requests, 500 as
    the defensive catch-all).
    """

    def __init__(self, engine: JobEngine):
        self.engine = engine
        # One counter family per API instance: both front ends report into
        # the engine's registry, so /metrics sees combined HTTP traffic.
        self._responses = engine.metrics.counter(
            "repro_http_responses_total",
            "HTTP responses by method and status",
            labelnames=("method", "status"),
        )

    def handle(self, method: str, path: str, body: bytes = b"") -> tuple[int, dict]:
        status, payload = self._handle_inner(method, path, body)
        self._responses.labels(method=method, status=str(status)).inc()
        return status, payload

    def _handle_inner(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, dict]:
        try:
            payload = json.loads(body) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            parts = [p for p in path.split("?", 1)[0].split("/") if p]
            name = "_" + method + "_" + "_".join(parts[:1] or ["root"])
            handler = getattr(self, name, None)
            if handler is None:
                return 404, {"error": f"no route {method} {path}"}
            return handler(parts, payload, path)
        except QueueFullError as exc:
            # Backpressure: overload degrades into fast typed rejections.
            return 429, {"error": str(exc), "max_queued": exc.max_queued}
        except EngineDrainingError as exc:
            # Graceful shutdown in progress: tell clients to come back
            # after the restart instead of failing them permanently.
            return 503, {"error": str(exc), "draining": True}
        except FaultInjectedError as exc:
            # An armed chaos fault (e.g. delta_apply on a PATCH) is a
            # server-side failure, not a client error — and must not hide
            # behind the JobError → 404 mapping below.
            return 500, {"error": str(exc), "fault": True}
        except (KeyError, JobError) as exc:
            return 404, {"error": str(exc)}
        except (ValueError, ReproError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": repr(exc)}

    # -- routes ------------------------------------------------------------

    def _GET_healthz(self, parts, body, path):  # noqa: N802
        engine = self.engine
        queue = engine.queue
        return 200, {
            "status": "ok",
            "jobs": queue.counts(),  # O(1): lifetime totals per state
            "retained_jobs": len(queue.jobs()),
            "dispatch": {
                "mode": engine.dispatcher,
                "dispatchers": engine.dispatchers,
                "pool": engine.pool.name if engine.pool is not None else None,
            },
            "segments": engine.segment_stats(),
            "limits": {
                "retention": queue.retention,
                "max_queued": queue.max_queued,
                "keep_results": engine.keep_results,
                "default_timeout": engine.default_timeout,
                "default_max_retries": engine.default_max_retries,
            },
            # Fault-tolerance telemetry: draining flag, retry/degradation
            # counters, worker supervision, journal stats, recovery
            # outcome, and the startup janitor's swept stale segments.
            "fault_tolerance": engine.supervisor_stats(),
        }

    def _GET_metrics(self, parts, body, path):  # noqa: N802
        # Prometheus text exposition (0.0.4). The engine bridges dict-view
        # stats (queue counts, segments, catalog, breakers) into gauges at
        # scrape time, then renders the whole registry.
        return 200, TextResponse(self.engine.render_metrics())

    def _GET_catalog(self, parts, body, path):  # noqa: N802
        return 200, {
            "entries": self.engine.catalog.entries(),
            "stats": dict(self.engine.catalog.stats),
            "disk_bytes": self.engine.catalog.disk_bytes(),
        }

    def _POST_graphs(self, parts, body, path):  # noqa: N802
        graph, key, name = _graph_from_body(body, self.engine)
        if graph is not None:
            key = self.engine.catalog.put(graph, name=name)
        return 200, {"graph_key": key, "name": name}

    def _POST_jobs(self, parts, body, path):  # noqa: N802
        scenario = str(body.get("scenario", "circuit"))
        if scenario not in scenario_names():
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {scenario_names()}"
            )
        priority = max(-MAX_WIRE_PRIORITY,
                       min(MAX_WIRE_PRIORITY, int(body.get("priority", 0))))
        timeout = body.get("timeout_seconds")
        max_retries = body.get("max_retries")
        trace_id = body.get("trace_id")
        trace_id = str(trace_id) if trace_id else None
        idem_key = body.get("idempotency_key")
        idem_key = str(idem_key) if idem_key else None
        if idem_key:
            existing = self.engine.idempotent_job_id(idem_key)
            if existing is not None:
                # Client retry of an already-accepted submission: answer
                # with the original job (registry, artifact, or journal —
                # whichever still knows it) instead of running it twice.
                try:
                    summary = self.engine.job_summary(existing)
                    return 200, {"job_id": existing,
                                 "state": summary["state"],
                                 "graph_key": summary["graph_key"],
                                 "deduplicated": True}
                except JobError:
                    pass  # aged out everywhere; accept as a fresh job
        config_payload = dict(body.get("config", {}) or {})
        faults_text = config_payload.pop("faults", None)
        config = config_from_dict(config_payload)
        if faults_text:
            # The fault-injection harness rides the same wire config the
            # chaos benchmarks use (grammar: "kind@at=2,attempts=1;...").
            config = replace(config, faults=FaultPlan.parse(str(faults_text)))
        graph, key, name = _graph_from_body(body, self.engine)
        handle = self.engine.submit(
            scenario,
            graph=graph,
            graph_key=key,
            config=config,
            priority=priority,
            name=name,
            timeout_seconds=None if timeout is None else float(timeout),
            max_retries=None if max_retries is None else int(max_retries),
            idempotency_key=idem_key,
            trace_id=trace_id,
        )
        job = self.engine.job(handle.job_id)
        return 200, {"job_id": handle.job_id,
                     "state": handle.state, "graph_key": job.graph_key,
                     "trace_id": job.trace_id}

    def _GET_jobs(self, parts, body, path):  # noqa: N802
        if len(parts) == 1:
            return 200, {"jobs": [j.summary() for j in self.engine.jobs()]}
        job_id = parts[1]
        if len(parts) == 2:
            # Registry first, durable artifact index for evicted jobs —
            # GET /jobs/<id> answers for any job ever run.
            return 200, self.engine.job_summary(job_id)
        if parts[2] == "result":
            try:
                job = self.engine.job(job_id)
            except JobError:
                doc = self.engine.artifact_doc(job_id)
                if doc is None:
                    raise
                return 200, doc  # evicted from the registry => terminal
            if job.state not in TERMINAL_STATES:
                return 404, {"error": f"job {job.id} is {job.state}; "
                                      "no result yet", "state": job.state}
            from ..bench.report_io import job_to_dict

            doc = job_to_dict(job)
            if doc["scenario_result"] is None and job.state == DONE:
                # The in-memory result was trimmed (keep_results bound);
                # the durable artifact has the full document.
                full = (self.engine.artifact_doc(job.id)
                        if job.artifact_path else None)
                if full is None:
                    return 410, {
                        "error": f"job {job.id} finished but its result was "
                                 "evicted from memory (keep_results) and no "
                                 "durable artifact exists; re-run the job or "
                                 "serve with --artifact-dir",
                        "state": job.state,
                    }
                doc = full
            return 200, doc
        return 404, {"error": f"no route GET {path}"}

    def _DELETE_jobs(self, parts, body, path):  # noqa: N802
        if len(parts) != 2:
            raise ValueError("DELETE /jobs/<id>")
        cancelled = self.engine.cancel(parts[1])
        return 200, {"job_id": parts[1], "cancelled": cancelled,
                     "state": self.engine.job_summary(parts[1])["state"]}

    # -- dynamic graphs ----------------------------------------------------

    def _PATCH_graphs(self, parts, body, path):  # noqa: N802
        if len(parts) != 2:
            raise ValueError("PATCH /graphs/<key>")
        base_key = parts[1]
        graph = self.engine.catalog.get(base_key)  # KeyError → 404
        insert = np.asarray(
            body.get("insert", []), dtype=np.int64
        ).reshape(-1, 2)
        delete_eids = np.asarray(body.get("delete_eids", []), dtype=np.int64)
        if insert.size == 0 and delete_eids.size == 0:
            raise ValueError(
                "mutation must insert or delete at least one edge"
            )
        delta = GraphDelta.from_edits(
            graph,
            insert=insert if insert.size else None,
            delete_eids=delete_eids if delete_eids.size else None,
        )
        faults_text = body.get("faults")
        faults = FaultPlan.parse(str(faults_text)) if faults_text else None
        return 200, self.engine.mutate_graph(
            base_key, delta, name=str(body.get("name", "")), faults=faults
        )

    def _POST_watches(self, parts, body, path):  # noqa: N802
        scenario = str(body.get("scenario", "circuit"))
        if scenario not in scenario_names():
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {scenario_names()}"
            )
        if "graph_key" not in body:
            raise ValueError(
                "watch needs graph_key (POST /graphs catalogs one)"
            )
        priority = max(-MAX_WIRE_PRIORITY,
                       min(MAX_WIRE_PRIORITY, int(body.get("priority", 0))))
        return 200, self.engine.add_watch(
            str(body["graph_key"]),
            scenario=scenario,
            config=config_from_dict(dict(body.get("config", {}) or {})),
            name=str(body.get("name", "")),
            threshold=float(body.get("threshold", 0.5)),
            priority=priority,
        )

    def _GET_watches(self, parts, body, path):  # noqa: N802
        if len(parts) == 1:
            return 200, {"watches": self.engine.watches()}
        return 200, self.engine.watch_summary(parts[1])

    def _DELETE_watches(self, parts, body, path):  # noqa: N802
        if len(parts) != 2:
            raise ValueError("DELETE /watches/<id>")
        self.engine.delete_watch(parts[1])
        return 200, {"watch_id": parts[1], "deleted": True}


class _JobRequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: reads the body, delegates to :class:`JobApi`."""

    server_version = "repro-euler-serve/1"
    protocol_version = "HTTP/1.1"  # keep-alive for warm clients
    # Keep-alive makes Nagle toxic: a response written as header+body
    # chunks stalls ~40ms against delayed ACKs, once per request. With
    # TCP_NODELAY the poll loop runs at loopback speed.
    disable_nagle_algorithm = True
    #: Set by :func:`make_server` on the handler subclass.
    api: JobApi = None
    quiet: bool = True

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict) -> None:
        if isinstance(payload, str):
            # TextResponse (e.g. /metrics): ship verbatim, not JSON.
            content_type = getattr(payload, "content_type", "text/plain")
            body = payload.encode()
        else:
            content_type = "application/json"
            body = json.dumps(payload, default=float).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            if status in (429, 503):
                self.send_header("Retry-After", "1")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response. There is nobody to answer —
            # re-entering _send(500, ...) on the dead socket would only
            # spray a stdlib traceback from the handler thread.
            self.close_connection = True

    def _route(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b""
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # disconnected while sending the body
            return
        self._send(*self.api.handle(method, self.path, body))

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self):  # noqa: N802
        self._route("POST")

    def do_DELETE(self):  # noqa: N802
        self._route("DELETE")

    def do_PATCH(self):  # noqa: N802
        self._route("PATCH")


def make_server(
    engine: JobEngine, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> ThreadingHTTPServer:
    """Build (but do not start) the threaded HTTP server on ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (tests and the in-process example do).
    """
    handler = type(
        "BoundJobRequestHandler",
        (_JobRequestHandler,),
        {"api": JobApi(engine), "quiet": quiet},
    )
    return ThreadingHTTPServer((host, port), handler)


def serve_forever(
    engine: JobEngine,
    host: str,
    port: int,
    quiet: bool = False,
    frontend: str = "thread",
    drain_timeout: float = 30.0,
) -> None:
    """Run the API until interrupted, then close the engine cleanly.

    ``frontend="async"`` serves through the asyncio front end
    (:class:`repro.jobs.aserver.AsyncJobServer`); both front ends expose
    the identical :class:`JobApi` surface.

    ``SIGTERM`` triggers a graceful drain: new submissions get 503 (with
    ``Retry-After``), running jobs get up to ``drain_timeout`` seconds to
    finish, the journal is checkpointed, and still-queued jobs stay
    journaled for the next start's recovery. ``SIGINT``/Ctrl-C keeps the
    historical fast path (cancel queued jobs, close).
    """
    if frontend == "async":
        from .aserver import AsyncJobServer

        server = AsyncJobServer(engine, host, port, quiet=quiet)
    elif frontend == "thread":
        server = make_server(engine, host, port, quiet=quiet)
    else:
        raise ValueError(
            f"unknown frontend {frontend!r}; use 'thread' or 'async'"
        )
    drained = threading.Event()

    def _drain_and_stop() -> None:
        stats = engine.drain(timeout=drain_timeout)
        drained.set()
        if not quiet:
            print(f"repro-euler serve: drained "
                  f"(finished={stats['drained']}, "
                  f"queued_left={stats['remaining_queued']}, "
                  f"journal_kept={stats['journal_records_kept']})")
        server.shutdown()

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        if drained.is_set():
            return
        if not quiet:
            print(f"repro-euler serve: SIGTERM — draining "
                  f"(up to {drain_timeout:g}s)...")
        # Drain off the signal handler: engine.drain blocks, and a signal
        # handler must not (the server loop still has requests to 503).
        threading.Thread(target=_drain_and_stop, daemon=True,
                         name="serve-drain").start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (tests drive serve_forever directly)
    addr = server.server_address
    print(f"repro-euler serve: listening on http://{addr[0]}:{addr[1]} "
          f"(frontend={frontend}, dispatcher={engine.dispatcher}"
          f"x{engine.dispatchers}, "
          f"pool={engine.pool.name if engine.pool else 'none'}, "
          f"catalog={engine.catalog.root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        # After a drain, queued leftovers are journaled on purpose —
        # cancelling them here would mark them terminal and forfeit the
        # next start's recovery.
        engine.close(cancel_queued=not drained.is_set())
