"""Pre-forked dispatcher workers: jobs run in long-lived forked processes.

The thread dispatchers in :class:`~repro.jobs.engine.JobEngine` multiplex
jobs over one GIL; under CPU-bound load every concurrent job steals cycles
from every other. This module provides the process-dispatcher mode: N
workers forked **at engine construction** (before any dispatcher thread
exists, so the fork is single-threaded and safe), each owning one end of a
duplex pipe. A dispatcher thread pops a job, sends a compact *spec* down
its worker's pipe, and the worker runs the full scenario in its own
interpreter — true multi-core serving on the paper's
one-machine-per-partition model, lifted to one-process-per-job.

What crosses the pipe stays small:

* **down**: scenario name, graph key, the job's ``RunConfig`` stripped of
  process-hostile fields (pool/cancel/derived), the run-time budget, and
  the catalog's shared-memory *graph descriptor*
  (:meth:`~repro.jobs.catalog.GraphCatalog.share`) — workers attach the
  edge arrays zero-copy and fall back to the catalog NPZ only when the
  segment is gone;
* **up**: the :class:`~repro.scenarios.base.ScenarioResult` (or a typed
  failure), plus the worker-side pass history the parent replays into the
  job record.

Cancellation preserves the PR 5 semantics without sharing a token object:
a :class:`~repro.bsp.shm.CancelFlags` array gives every worker slot one
``int64`` flag. The parent sets slot ``i`` to cancel the job running in
worker ``i``; the worker's :class:`FlagToken` — duck-typed to
:class:`~repro.pipeline.cancel.CancelToken` — polls that flag (and its
deadline) at every superstep and sub-run boundary. An explicit cancel
still wins over a simultaneously-expired deadline.

Supervision (the fault-tolerance layer):

* **death** — a worker that dies mid-job (SIGKILL, OOM, hard crash) is
  detected by the liveness poll in :meth:`ForkedWorkerPool.run`,
  respawned, and the job surfaces as a typed
  :class:`~repro.errors.TransientJobError` the engine may retry;
* **hangs** — workers stamp a shared :class:`~repro.bsp.shm.HeartbeatSlots`
  entry at every cancel-token poll (superstep/sub-run boundaries); with a
  ``hang_timeout`` armed, a stale stamp gets the worker SIGKILL'd and
  respawned — a wedged superstep can no longer pin a dispatcher forever;
* **respawn budget + circuit breaker** — respawns are counted per rolling
  window; past the budget the pool's circuit opens for a cooldown and the
  engine degrades those jobs to in-process execution instead of feeding a
  crash loop.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import replace
from pathlib import Path

from ..bsp import shm
from ..errors import RunCancelledError, TransientJobError
from ..graph.graph import Graph
from ..obs import SpanRecorder, diff_state, get_registry, use_trace
from .supervise import RollingBreaker, SupervisedPool

__all__ = ["FlagToken", "ForkedWorkerPool"]


class FlagToken:
    """Worker-side cancel token over one shared-memory flag slot.

    Duck-typed to :class:`~repro.pipeline.cancel.CancelToken` (``arm`` /
    ``cancelled`` / ``expired`` / ``should_stop`` / ``check``), so the
    pipeline's safe-point checks work unchanged inside a forked worker.
    Every poll also stamps the worker's heartbeat slot — the cancel checks
    run at superstep and sub-run boundaries, which is exactly the "still
    making progress" signal hang detection needs, for free. Pickles to an
    **inert** token (no flags, no heartbeat, no deadline): one rides
    inside every result config shipped back through the pipe, and a
    revived flag reference would be meaningless in another process.
    """

    def __init__(self, flags, slot: int, timeout_seconds: float | None = None,
                 heartbeats=None):
        self._flags = flags
        self._slot = slot
        self._heartbeats = heartbeats
        self.timeout_seconds = timeout_seconds
        self._deadline: float | None = None
        self.arm()

    def arm(self) -> None:
        if self.timeout_seconds is not None:
            self._deadline = time.monotonic() + self.timeout_seconds
        self.beat()

    def beat(self) -> None:
        """Stamp this worker's heartbeat slot (no-op without one)."""
        if self._heartbeats is not None:
            self._heartbeats.beat(self._slot)

    @property
    def cancelled(self) -> bool:
        self.beat()
        return self._flags is not None and self._flags.is_set(self._slot)

    @property
    def expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    @property
    def should_stop(self) -> bool:
        return self.cancelled or self.expired

    def check(self, where: str = "") -> None:
        # Mirror CancelToken: an explicit cancel wins over the deadline.
        if self.cancelled:
            raise RunCancelledError("cancel", where)
        if self.expired:
            raise RunCancelledError("timeout", where, self.timeout_seconds)

    def __getstate__(self):
        return {"timeout_seconds": self.timeout_seconds}

    def __setstate__(self, state):
        self._flags = None
        self._slot = -1
        self._heartbeats = None
        self.timeout_seconds = state.get("timeout_seconds")
        self._deadline = None


def _strip_config(config):
    """A config safe to cross the pipe (and land in durable artifacts)."""
    return replace(config, pool=None, cancel=None, derived=None, faults=None,
                   repair=None)


def _scrub_result(result) -> None:
    """Strip process-local state from a result about to cross the pipe."""
    result.config = _strip_config(result.config)
    for sub in result.sub_runs:
        sub.context.config = _strip_config(sub.context.config)


def _attach_graph(descriptor: dict):
    """Descriptor → zero-copy Graph over the attached segment views."""
    views = shm.attach_arrays(descriptor)
    return Graph.from_arrays(
        descriptor["n_vertices"], views["edge_u"], views["edge_v"], check=False
    )


def _run_spec(spec: dict, flags, slot: int, catalog, graph_cache: dict,
              heartbeats=None) -> dict:
    """Execute one job spec; always returns a terminal-state dict.

    Failure dicts carry ``transient``: ``True`` marks infrastructure
    failures (injected faults, shm trouble) the parent may retry; job
    errors (bad graph, bad config) stay permanent.

    Observability rides the existing result channel: stage spans recorded
    during the run come back as ``("stage:<name>", wall, extra)`` pass
    tuples, and every counter/histogram increment this process made lands
    in ``metrics_delta`` (a :func:`~repro.obs.diff_state` delta) so the
    coordinator can fold worker-side telemetry — walk-cache hits, stage
    latencies — into its own registry.
    """
    registry = get_registry()
    before = registry.state()
    recorder = SpanRecorder()
    with use_trace(spec.get("trace_id") or None), recorder:
        out = _run_spec_inner(spec, flags, slot, catalog, graph_cache,
                              heartbeats=heartbeats)
    for span in recorder.spans:
        extra = {k: v for k, v in span.items()
                 if k not in ("stage", "wall")}
        out["passes"].append(("stage:" + span["stage"], span["wall"], extra))
    delta = diff_state(before, registry.state())
    if delta:
        out["metrics_delta"] = delta
    return out


def _run_spec_inner(spec: dict, flags, slot: int, catalog, graph_cache: dict,
                    heartbeats=None) -> dict:
    from ..scenarios.base import run_scenario

    passes: list[tuple] = []
    started = time.perf_counter()
    try:
        token = FlagToken(flags, slot, spec.get("timeout_seconds"),
                          heartbeats=heartbeats)
        token.check("dispatch")
        key = spec["graph_key"]
        if key not in catalog:
            catalog.refresh()  # cataloged after this worker forked

        config = spec["config"]
        faults = config.faults

        t0 = time.perf_counter()
        graph = graph_cache.get(key)
        source = "cache"
        if graph is None:
            descriptor = spec.get("graph_descriptor")
            if descriptor is not None:
                try:
                    if faults:
                        faults.shm_attach()
                    graph = _attach_graph(descriptor)
                    source = "segment"
                except FileNotFoundError:
                    graph = None
            if graph is None:
                graph = catalog.get(key)
                source = "npz"
            while len(graph_cache) >= 4:
                graph_cache.pop(next(iter(graph_cache)))
            graph_cache[key] = graph
        passes.append(("load_graph", time.perf_counter() - t0,
                       {"graph_key": key, "source": source}))

        t0 = time.perf_counter()
        # The parent persisted the partition map / plan to disk before
        # sending the spec, so this is a disk-cache hit, not a recompute.
        derived = catalog.derived_for(key, config, spec["scenario"])
        passes.append(("derived_artifacts", time.perf_counter() - t0,
                       {"artifacts": sorted(derived)}))

        config = replace(config, derived=derived, cancel=token)
        t0 = time.perf_counter()
        result = run_scenario(graph, spec["scenario"], config)
        passes.append((
            "run_scenario", time.perf_counter() - t0,
            {"executor": config.executor_name,
             "n_sub_runs": len(result.sub_runs),
             "walk_edges": int(sum(c.n_edges for c in result.circuits))},
        ))
        _scrub_result(result)
        return {"state": "DONE", "result": result, "passes": passes,
                "executor": config.executor_name}
    except RunCancelledError as exc:
        passes.append(("cancelled", time.perf_counter() - started,
                       {"reason": exc.reason, "where": exc.where}))
        if exc.reason == "timeout":
            return {"state": "FAILED", "error": str(exc), "passes": passes,
                    "transient": False}
        return {"state": "CANCELLED", "error": None, "passes": passes}
    except Exception as exc:  # the worker loop must survive any job failure
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        passes.append(("error", 0.0, {"error": detail}))
        return {"state": "FAILED", "error": detail, "passes": passes,
                "transient": isinstance(exc, TransientJobError)}


def _worker_main(conn, slot: int, catalog_root: str, flags_descriptor: dict,
                 heartbeat_descriptor: dict | None = None):
    """Forked worker loop: recv spec → run → send result, until sentinel."""
    from .catalog import GraphCatalog

    # Mark this process as a dispatcher worker so an injected
    # ``worker_kill`` fault dies for real (SIGKILL) instead of raising —
    # the whole point is exercising unclean worker death.
    os.environ["REPRO_FAULT_WORKER"] = str(os.getpid())
    flags = shm.CancelFlags.attach(flags_descriptor)
    heartbeats = (shm.HeartbeatSlots.attach(heartbeat_descriptor)
                  if heartbeat_descriptor is not None else None)
    catalog = GraphCatalog(catalog_root)
    graph_cache: dict = {}
    # The fork copies the parent's stack, so this process holds write ends
    # of its own (and earlier siblings') pipes — recv() would never EOF
    # after a parent kill -9. Poll the ppid instead: re-parented means the
    # engine is gone and this worker must not outlive it.
    parent = os.getppid()
    try:
        while True:
            if not conn.poll(1.0):
                if os.getppid() != parent:
                    return
                continue
            try:
                spec = conn.recv()
            except EOFError:
                return
            if spec is None:
                return
            conn.send(_run_spec(spec, flags, slot, catalog, graph_cache,
                                heartbeats=heartbeats))
    finally:
        flags.close()
        if heartbeats is not None:
            heartbeats.close()
        conn.close()


class ForkedWorkerPool(SupervisedPool):
    """N pre-forked job workers, one pipe, cancel flag and heartbeat each.

    Created before the engine's dispatcher threads so the initial fork is
    single-threaded. A worker that dies or hangs mid-job is killed (if
    needed), respawned, and reported as a :class:`TransientJobError` — the
    pool survives; only the job on that slot is interrupted. Respawns are
    budgeted per rolling window: past ``respawn_budget`` respawns in
    ``respawn_window`` seconds, :meth:`circuit_open` turns true for
    ``breaker_cooldown`` seconds and the engine degrades to in-process
    execution instead of feeding a crash loop.

    Parameters
    ----------
    hang_timeout:
        Seconds of heartbeat silence (no superstep/sub-run boundary
        reached) after which a worker is declared hung and SIGKILL'd.
        ``None`` (default) disables hang detection — a legitimate
        superstep may take arbitrarily long.
    """

    def __init__(self, n: int, catalog_root: str | Path,
                 hang_timeout: float | None = None,
                 respawn_budget: int = 5,
                 respawn_window: float = 60.0,
                 breaker_cooldown: float = 30.0,
                 metrics=None):
        if n < 1:
            raise ValueError("worker count must be >= 1")
        if not shm.shm_available():
            raise RuntimeError(
                "process dispatchers need POSIX shared memory for cancel flags"
            )
        self.n = n
        self._catalog_root = str(catalog_root)
        self._ctx = multiprocessing.get_context("fork")
        self.flags = shm.CancelFlags.create(n)
        self.heartbeats = shm.HeartbeatSlots.create(n)
        self.respawn_budget = respawn_budget
        self.respawn_window = respawn_window
        self.breaker_cooldown = breaker_cooldown
        self._breaker = RollingBreaker(respawn_budget, respawn_window,
                                       breaker_cooldown)
        self._init_supervision("forked", hang_timeout=hang_timeout,
                               metrics=metrics)
        self._workers: list = [None] * n
        self._closed = False
        for slot in range(n):
            self._spawn(slot)

    @property
    def total_respawns(self) -> int:
        return self._breaker.count

    @property
    def _broken_until(self) -> float:
        return self._breaker._broken_until

    @_broken_until.setter
    def _broken_until(self, value: float) -> None:
        self._breaker._broken_until = value

    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, slot, self._catalog_root, self.flags.descriptor,
                  self.heartbeats.descriptor),
            name=f"job-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._workers[slot] = (proc, parent_conn)

    def _respawn_after_failure(self, slot: int) -> None:
        """Respawn a failed slot and charge it against the breaker budget."""
        self._breaker.record()
        self._m_respawns.inc()
        self._spawn(slot)

    def circuit_open(self) -> bool:
        """Whether the respawn circuit breaker is currently open."""
        return self._breaker.open()

    def circuit_reset_seconds(self) -> float:
        return self._breaker.reset_seconds()

    def supervisor_stats(self) -> dict:
        """Respawn/breaker counters for ``/healthz``."""
        stats = self._breaker.stats()
        stats["workers"] = self.n
        stats.update(self.supervisor_base())
        return stats

    def run(self, slot: int, spec: dict) -> dict:
        """Run one spec on ``slot``; raises :class:`TransientJobError` on
        worker death or hang (the slot is respawned first).

        Blocks the calling dispatcher thread (each thread owns its slot, so
        there is no cross-thread contention on the pipe).
        """
        if self._closed:
            raise RuntimeError("ForkedWorkerPool is closed")
        proc, conn = self._workers[slot]
        # Baseline the heartbeat at dispatch: hang age counts from *now*
        # even if the worker never reaches its first token poll.
        self.heartbeats.beat(slot)
        try:
            conn.send(spec)
            while not conn.poll(0.2):
                if not proc.is_alive() and not conn.poll(0):
                    raise EOFError
                if self.hang_timeout is not None:
                    age = self.heartbeats.age_seconds(slot)
                    if age is not None and age > self.hang_timeout:
                        self.record_hung_kill()
                        proc.kill()
                        proc.join(timeout=2.0)
                        conn.close()
                        self._respawn_after_failure(slot)
                        raise TransientJobError(
                            f"dispatcher worker {slot} hung (no heartbeat "
                            f"for {age:.1f}s > {self.hang_timeout:g}s); "
                            "killed and respawned"
                        )
            return conn.recv()
        except TransientJobError:
            raise
        except (EOFError, BrokenPipeError, OSError):
            conn.close()
            proc.join(timeout=1.0)
            self._respawn_after_failure(slot)
            raise TransientJobError(
                f"dispatcher worker {slot} died mid-job; respawned"
            ) from None

    def cancel(self, slot: int) -> None:
        """Signal the job running on ``slot`` (polled at safe points)."""
        self.flags.set(slot)

    def clear(self, slot: int) -> None:
        self.flags.clear(slot)

    def close(self) -> None:
        """Stop every worker (sentinel, then terminate) and free the flags."""
        if self._closed:
            return
        self._closed = True
        for entry in self._workers:
            if entry is None:
                continue
            proc, conn = entry
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for entry in self._workers:
            if entry is None:
                continue
            proc, conn = entry
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            conn.close()
        self._workers = [None] * self.n
        self.flags.close()
        self.heartbeats.close()

    def __enter__(self) -> "ForkedWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
