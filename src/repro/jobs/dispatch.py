"""Pre-forked dispatcher workers: jobs run in long-lived forked processes.

The thread dispatchers in :class:`~repro.jobs.engine.JobEngine` multiplex
jobs over one GIL; under CPU-bound load every concurrent job steals cycles
from every other. This module provides the process-dispatcher mode: N
workers forked **at engine construction** (before any dispatcher thread
exists, so the fork is single-threaded and safe), each owning one end of a
duplex pipe. A dispatcher thread pops a job, sends a compact *spec* down
its worker's pipe, and the worker runs the full scenario in its own
interpreter — true multi-core serving on the paper's
one-machine-per-partition model, lifted to one-process-per-job.

What crosses the pipe stays small:

* **down**: scenario name, graph key, the job's ``RunConfig`` stripped of
  process-hostile fields (pool/cancel/derived), the run-time budget, and
  the catalog's shared-memory *graph descriptor*
  (:meth:`~repro.jobs.catalog.GraphCatalog.share`) — workers attach the
  edge arrays zero-copy and fall back to the catalog NPZ only when the
  segment is gone;
* **up**: the :class:`~repro.scenarios.base.ScenarioResult` (or a typed
  failure), plus the worker-side pass history the parent replays into the
  job record.

Cancellation preserves the PR 5 semantics without sharing a token object:
a :class:`~repro.bsp.shm.CancelFlags` array gives every worker slot one
``int64`` flag. The parent sets slot ``i`` to cancel the job running in
worker ``i``; the worker's :class:`FlagToken` — duck-typed to
:class:`~repro.pipeline.cancel.CancelToken` — polls that flag (and its
deadline) at every superstep and sub-run boundary. An explicit cancel
still wins over a simultaneously-expired deadline.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import replace
from pathlib import Path

from ..bsp import shm
from ..errors import RunCancelledError
from ..graph.graph import Graph

__all__ = ["FlagToken", "ForkedWorkerPool"]


class FlagToken:
    """Worker-side cancel token over one shared-memory flag slot.

    Duck-typed to :class:`~repro.pipeline.cancel.CancelToken` (``arm`` /
    ``cancelled`` / ``expired`` / ``should_stop`` / ``check``), so the
    pipeline's safe-point checks work unchanged inside a forked worker.
    Pickles to an **inert** token (no flags, no deadline): one rides inside
    every result config shipped back through the pipe, and a revived flag
    reference would be meaningless in another process.
    """

    def __init__(self, flags, slot: int, timeout_seconds: float | None = None):
        self._flags = flags
        self._slot = slot
        self.timeout_seconds = timeout_seconds
        self._deadline: float | None = None
        self.arm()

    def arm(self) -> None:
        if self.timeout_seconds is not None:
            self._deadline = time.monotonic() + self.timeout_seconds

    @property
    def cancelled(self) -> bool:
        return self._flags is not None and self._flags.is_set(self._slot)

    @property
    def expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    @property
    def should_stop(self) -> bool:
        return self.cancelled or self.expired

    def check(self, where: str = "") -> None:
        # Mirror CancelToken: an explicit cancel wins over the deadline.
        if self.cancelled:
            raise RunCancelledError("cancel", where)
        if self.expired:
            raise RunCancelledError("timeout", where, self.timeout_seconds)

    def __getstate__(self):
        return {"timeout_seconds": self.timeout_seconds}

    def __setstate__(self, state):
        self._flags = None
        self._slot = -1
        self.timeout_seconds = state.get("timeout_seconds")
        self._deadline = None


def _strip_config(config):
    """A config safe to cross the pipe (and land in durable artifacts)."""
    return replace(config, pool=None, cancel=None, derived=None)


def _scrub_result(result) -> None:
    """Strip process-local state from a result about to cross the pipe."""
    result.config = _strip_config(result.config)
    for sub in result.sub_runs:
        sub.context.config = _strip_config(sub.context.config)


def _attach_graph(descriptor: dict):
    """Descriptor → zero-copy Graph over the attached segment views."""
    views = shm.attach_arrays(descriptor)
    return Graph.from_arrays(
        descriptor["n_vertices"], views["edge_u"], views["edge_v"], check=False
    )


def _run_spec(spec: dict, flags, slot: int, catalog, graph_cache: dict) -> dict:
    """Execute one job spec; always returns a terminal-state dict."""
    from ..scenarios.base import run_scenario

    passes: list[tuple] = []
    started = time.perf_counter()
    try:
        token = FlagToken(flags, slot, spec.get("timeout_seconds"))
        token.check("dispatch")
        key = spec["graph_key"]
        if key not in catalog:
            catalog.refresh()  # cataloged after this worker forked

        t0 = time.perf_counter()
        graph = graph_cache.get(key)
        source = "cache"
        if graph is None:
            descriptor = spec.get("graph_descriptor")
            if descriptor is not None:
                try:
                    graph = _attach_graph(descriptor)
                    source = "segment"
                except FileNotFoundError:
                    graph = None
            if graph is None:
                graph = catalog.get(key)
                source = "npz"
            while len(graph_cache) >= 4:
                graph_cache.pop(next(iter(graph_cache)))
            graph_cache[key] = graph
        passes.append(("load_graph", time.perf_counter() - t0,
                       {"graph_key": key, "source": source}))

        config = spec["config"]
        t0 = time.perf_counter()
        # The parent persisted the partition map / plan to disk before
        # sending the spec, so this is a disk-cache hit, not a recompute.
        derived = catalog.derived_for(key, config, spec["scenario"])
        passes.append(("derived_artifacts", time.perf_counter() - t0,
                       {"artifacts": sorted(derived)}))

        config = replace(config, derived=derived, cancel=token)
        t0 = time.perf_counter()
        result = run_scenario(graph, spec["scenario"], config)
        passes.append((
            "run_scenario", time.perf_counter() - t0,
            {"executor": config.executor_name,
             "n_sub_runs": len(result.sub_runs),
             "walk_edges": int(sum(c.n_edges for c in result.circuits))},
        ))
        _scrub_result(result)
        return {"state": "DONE", "result": result, "passes": passes,
                "executor": config.executor_name}
    except RunCancelledError as exc:
        passes.append(("cancelled", time.perf_counter() - started,
                       {"reason": exc.reason, "where": exc.where}))
        if exc.reason == "timeout":
            return {"state": "FAILED", "error": str(exc), "passes": passes}
        return {"state": "CANCELLED", "error": None, "passes": passes}
    except Exception as exc:  # the worker loop must survive any job failure
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        passes.append(("error", 0.0, {"error": detail}))
        return {"state": "FAILED", "error": detail, "passes": passes}


def _worker_main(conn, slot: int, catalog_root: str, flags_descriptor: dict):
    """Forked worker loop: recv spec → run → send result, until sentinel."""
    from .catalog import GraphCatalog

    flags = shm.CancelFlags.attach(flags_descriptor)
    catalog = GraphCatalog(catalog_root)
    graph_cache: dict = {}
    try:
        while True:
            try:
                spec = conn.recv()
            except EOFError:
                return
            if spec is None:
                return
            conn.send(_run_spec(spec, flags, slot, catalog, graph_cache))
    finally:
        flags.close()
        conn.close()


class ForkedWorkerPool:
    """N pre-forked job workers, one pipe and one cancel-flag slot each.

    Created before the engine's dispatcher threads so the initial fork is
    single-threaded. A worker that dies mid-job (OOM kill, hard crash) is
    detected by the liveness poll in :meth:`run`, reported as a failed job,
    and respawned — the pool survives; only the job on that slot is lost.
    """

    def __init__(self, n: int, catalog_root: str | Path):
        if n < 1:
            raise ValueError("worker count must be >= 1")
        if not shm.shm_available():
            raise RuntimeError(
                "process dispatchers need POSIX shared memory for cancel flags"
            )
        self.n = n
        self._catalog_root = str(catalog_root)
        self._ctx = multiprocessing.get_context("fork")
        self.flags = shm.CancelFlags.create(n)
        self._workers: list = [None] * n
        self._closed = False
        for slot in range(n):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, slot, self._catalog_root, self.flags.descriptor),
            name=f"job-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._workers[slot] = (proc, parent_conn)

    def run(self, slot: int, spec: dict) -> dict | None:
        """Run one spec on ``slot``; ``None`` means the worker died.

        Blocks the calling dispatcher thread (each thread owns its slot, so
        there is no cross-thread contention on the pipe). On worker death
        the slot is respawned before returning.
        """
        if self._closed:
            raise RuntimeError("ForkedWorkerPool is closed")
        proc, conn = self._workers[slot]
        try:
            conn.send(spec)
            while not conn.poll(0.2):
                if not proc.is_alive() and not conn.poll(0):
                    raise EOFError
            return conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            conn.close()
            proc.join(timeout=1.0)
            self._spawn(slot)
            return None

    def cancel(self, slot: int) -> None:
        """Signal the job running on ``slot`` (polled at safe points)."""
        self.flags.set(slot)

    def clear(self, slot: int) -> None:
        self.flags.clear(slot)

    def close(self) -> None:
        """Stop every worker (sentinel, then terminate) and free the flags."""
        if self._closed:
            return
        self._closed = True
        for entry in self._workers:
            if entry is None:
                continue
            proc, conn = entry
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for entry in self._workers:
            if entry is None:
                continue
            proc, conn = entry
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            conn.close()
        self._workers = [None] * self.n
        self.flags.close()

    def __enter__(self) -> "ForkedWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
