"""Job model: dataclass, state machine, priority queue, future-style handle.

A :class:`Job` moves through ``QUEUED → RUNNING → DONE``/``FAILED`` (or
``→ CANCELLED`` from either non-terminal state). The :class:`JobQueue` is a
thread-safe priority queue — higher ``priority`` pops first, FIFO within a
priority — and the **bounded** registry of submitted jobs: an optional
``retention`` bound evicts the oldest terminal jobs (the engine falls back
to the durable per-job artifact index for their status), and an optional
``max_queued`` bound rejects submissions with a typed
:class:`~repro.errors.QueueFullError` instead of growing the heap without
limit. :class:`JobResult` is the submit-side handle: ``result()`` blocks
until the terminal state and either returns the
:class:`~repro.scenarios.base.ScenarioResult` or raises the job's failure.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import (
    JobCancelledError,
    JobError,
    JobFailedError,
    JobResultEvictedError,
    QueueFullError,
)
from ..obs import MetricsRegistry
from ..pipeline.context import RunConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.base import ScenarioResult

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "JOB_STATES",
    "Job",
    "JobResult",
    "JobQueue",
]

QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: Every reachable job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One scheduled scenario run and its full lifecycle record."""

    id: str
    scenario: str
    graph_key: str
    config: RunConfig
    priority: int = 0
    state: str = QUEUED
    graph_name: str = ""
    n_vertices: int = 0
    n_edges: int = 0
    #: The backend the job actually ran on (set by the engine after pool
    #: injection; empty until dispatched).
    executor: str = ""
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: The in-memory scenario result (DONE jobs only; the durable artifact
    #: JSON is what survives the process).
    result: Any = None
    artifact_path: str | None = None
    #: Per-job run-time budget in seconds (``None``: unbounded). Rides the
    #: cancel token; a tripped deadline fails the job at the next safe point.
    timeout_seconds: float | None = None
    #: How many times a **transient** failure (killed/hung worker, broken
    #: pool, shm attach failure — :class:`~repro.errors.TransientJobError`)
    #: may be re-dispatched before the job fails for good. Permanent
    #: failures never retry.
    max_retries: int = 0
    #: Current attempt index (0 = first run; incremented per retry and by
    #: crash recovery for jobs that were RUNNING at the crash).
    attempt: int = 0
    #: Client-supplied deduplication key: re-submitting the same key
    #: returns the original job instead of queueing a duplicate.
    idempotency_key: str | None = None
    #: End-to-end trace id: client-supplied or minted at submit, carried
    #: from the HTTP edge through dispatch into the worker spec so every
    #: artifact and log line can name the originating request.
    trace_id: str = ""
    #: The :class:`~repro.pipeline.cancel.CancelToken` the engine threads
    #: into the run — how ``DELETE /jobs/<id>`` reaches a RUNNING job.
    cancel_token: Any = None
    #: Append-only pass history: one dict per orchestration pass
    #: (``{"pass": name, "seconds": wall, ...extras}``), mirrored into the
    #: durable artifact — the audit trail of what the engine did and when.
    passes: list[dict] = field(default_factory=list)

    @property
    def queue_latency_seconds(self) -> float | None:
        """Seconds spent waiting in the queue (None until started/cancelled)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        """Wall seconds from start to finish (None until finished)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def record_pass(self, name: str, seconds: float, **extra) -> None:
        """Append one pass to the history."""
        self.passes.append({"pass": name, "seconds": seconds, **extra})

    def summary(self) -> dict:
        """JSON-safe status row (the serve API's job view)."""
        return {
            "id": self.id,
            "scenario": self.scenario,
            "graph_key": self.graph_key,
            "graph_name": self.graph_name,
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "priority": self.priority,
            "state": self.state,
            "executor": self.executor,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_latency_seconds": self.queue_latency_seconds,
            "run_seconds": self.run_seconds,
            "error": self.error,
            "artifact_path": self.artifact_path,
            "timeout_seconds": self.timeout_seconds,
            "max_retries": self.max_retries,
            "attempt": self.attempt,
            "idempotency_key": self.idempotency_key,
            "trace_id": self.trace_id,
        }


class JobResult:
    """Future-style handle returned by :meth:`repro.jobs.engine.JobEngine.submit`."""

    def __init__(self, job: Job):
        self._job = job
        self._done = threading.Event()

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def state(self) -> str:
        return self._job.state

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or timeout); returns :meth:`done`."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> "ScenarioResult":
        """The scenario result, blocking until the job finishes.

        Raises :class:`~repro.errors.JobFailedError` /
        :class:`~repro.errors.JobCancelledError` for the failure states and
        :class:`TimeoutError` when ``timeout`` elapses first.

        A DONE job whose in-memory result was trimmed by the engine's
        ``keep_results`` bound reloads the **scenario-artifact dict** from
        the durable per-job JSON (the full document survives eviction; the
        live ``ScenarioResult`` object does not). With no readable
        artifact, a typed :class:`~repro.errors.JobResultEvictedError` is
        raised instead of silently returning ``None``.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self._job.id} still {self._job.state} after {timeout}s"
            )
        if self._job.state == FAILED:
            raise JobFailedError(self._job.id, self._job.error or "unknown error")
        if self._job.state == CANCELLED:
            raise JobCancelledError(self._job.id)
        if self._job.result is None and self._job.state == DONE:
            from ..bench.report_io import load_job  # lazy: avoids a cycle

            doc = (load_job(self._job.artifact_path)
                   if self._job.artifact_path else None)
            if doc is not None and doc.get("scenario_result") is not None:
                return doc["scenario_result"]
            raise JobResultEvictedError(self._job.id)
        return self._job.result

    def _mark_done(self) -> None:
        self._done.set()


class JobQueue:
    """Thread-safe priority queue + bounded registry of submitted jobs.

    Parameters
    ----------
    retention:
        How many **terminal** jobs stay in the registry. ``None`` (default)
        keeps all — right for batches and tests, wrong for a long-lived
        server. With a bound, the oldest terminal jobs drop their
        ``Job``/``JobResult`` entries once newer ones finish; the engine
        answers their status from the durable artifact index instead.
        Queued and running jobs are never evicted.
    max_queued:
        Backpressure bound on the number of QUEUED jobs. ``None`` accepts
        everything; with a bound, :meth:`submit` raises
        :class:`~repro.errors.QueueFullError` once the queue is full, so
        overload degrades into fast rejections (HTTP 429 at the serving
        front end) instead of unbounded heap growth.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` charged for state
        transitions (``repro_jobs_total{state}``) and the submit→dispatch
        queue-delay histogram (``repro_queue_delay_seconds``). The engine
        passes its own registry; a standalone queue defaults to a private
        one so throwaway queues in tests never leak into ``/metrics``.
    """

    def __init__(self, retention: int | None = None,
                 max_queued: int | None = None,
                 metrics: MetricsRegistry | None = None):
        if retention is not None and retention < 1:
            raise ValueError("retention must be >= 1 or None")
        if max_queued is not None and max_queued < 1:
            raise ValueError("max_queued must be >= 1 or None")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        jobs_total = self.metrics.counter(
            "repro_jobs_total",
            "Job state transitions (entries into each state)",
            labelnames=("state",),
        )
        self._m_jobs = {s: jobs_total.labels(state=s) for s in JOB_STATES}
        self._m_delay = self.metrics.histogram(
            "repro_queue_delay_seconds",
            "Seconds between job submit and dispatch",
        )
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        self._jobs: dict[str, Job] = {}
        self._handles: dict[str, JobResult] = {}
        self._closed = False
        self.retention = retention
        self.max_queued = max_queued
        #: Terminal job ids in completion order (the eviction queue).
        self._terminal: deque[str] = deque()
        #: Incremental per-state counters over **every** job ever submitted
        #: (terminal counts are cumulative across registry eviction), so
        #: ``/healthz`` stays O(1) however long the server has been up.
        self._counts = {s: 0 for s in JOB_STATES}

    def submit(self, job: Job, force: bool = False) -> JobResult:
        """Enqueue a QUEUED job; returns its handle.

        Raises :class:`~repro.errors.QueueFullError` when the
        ``max_queued`` backpressure bound is hit. ``force`` bypasses the
        bound — crash recovery re-enqueues already-acknowledged jobs, and
        bouncing those on backpressure would lose accepted work.
        """
        with self._lock:
            if self._closed:
                raise JobError("queue is closed")
            if job.id in self._jobs:
                raise JobError(f"duplicate job id {job.id!r}")
            if job.state != QUEUED:
                raise JobError(f"job {job.id} submitted in state {job.state}")
            if (not force and self.max_queued is not None
                    and self._counts[QUEUED] >= self.max_queued):
                raise QueueFullError(self.max_queued)
            handle = JobResult(job)
            self._jobs[job.id] = job
            self._handles[job.id] = handle
            # Max-heap on priority; FIFO within a priority via the sequence.
            heapq.heappush(self._heap, (-job.priority, self._seq, job.id))
            self._seq += 1
            self._counts[QUEUED] += 1
            self._m_jobs[QUEUED].inc()
            self._not_empty.notify()
            return handle

    def pop(self, timeout: float | None = None) -> Job | None:
        """Highest-priority QUEUED job, marked RUNNING; ``None`` on timeout.

        Cancelled entries are skipped (their heap slots are lazy-deleted).
        Returns ``None`` immediately once the queue is closed and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs.get(job_id)
                    if job is None or job.state != QUEUED:
                        # Lazy-deleted slot: cancelled while queued — and
                        # possibly already retention-evicted from the
                        # registry by later finishes.
                        continue
                    job.state = RUNNING
                    job.started_at = time.time()
                    self._counts[QUEUED] -= 1
                    self._counts[RUNNING] += 1
                    self._m_jobs[RUNNING].inc()
                    self._m_delay.observe(
                        job.started_at - job.submitted_at)
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        return None

    def finish(self, job: Job, state: str, error: str | None = None) -> None:
        """Move a RUNNING job to a terminal state and release its handle."""
        if state not in TERMINAL_STATES:
            raise JobError(f"{state} is not a terminal state")
        with self._lock:
            job.state = state
            if error is not None:
                job.error = error
            if job.finished_at is None:
                # The engine may pre-stamp the terminal state so the durable
                # artifact (written just before this call) records it.
                job.finished_at = time.time()
            self._counts[RUNNING] -= 1
            self._counts[state] += 1
            self._m_jobs[state].inc()
            self._handles[job.id]._mark_done()
            self._retire_locked(job.id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a QUEUED job. Running/terminal jobs are not cancellable
        here — the engine signals a RUNNING job's cancel token instead."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job id {job_id!r}")
            if job.state != QUEUED:
                return False
            job.state = CANCELLED
            job.finished_at = time.time()
            self._counts[QUEUED] -= 1
            self._counts[CANCELLED] += 1
            self._m_jobs[CANCELLED].inc()
            self._handles[job_id]._mark_done()
            self._retire_locked(job_id)
            return True

    def requeue(self, job: Job) -> bool:
        """Put a RUNNING job back in the queue (the transient-retry path).

        Bypasses the ``max_queued`` backpressure bound — the job was
        already acknowledged; rejecting its retry would turn a transient
        infrastructure failure into a lost submission. Returns ``False``
        when the queue is closed (the engine fails the job instead) or the
        job is not RUNNING (e.g. it reached a terminal state while its
        backoff timer was pending).
        """
        with self._lock:
            if self._closed or job.state != RUNNING:
                return False
            job.state = QUEUED
            job.started_at = None
            self._counts[RUNNING] -= 1
            self._counts[QUEUED] += 1
            self._m_jobs[QUEUED].inc()
            heapq.heappush(self._heap, (-job.priority, self._seq, job.id))
            self._seq += 1
            self._not_empty.notify()
            return True

    def _retire_locked(self, job_id: str) -> None:
        """Queue a terminal job for eviction and trim to the retention bound.

        The newest terminal job always survives its own trim (``retention
        >= 1``), so the engine can still write/read its artifact through
        the registry entry; only *older* terminal jobs — whose artifacts
        were written before they reached a terminal state — are dropped.
        """
        self._terminal.append(job_id)
        if self.retention is None:
            return
        while len(self._terminal) > self.retention:
            evicted = self._terminal.popleft()
            self._jobs.pop(evicted, None)
            self._handles.pop(evicted, None)

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job id {job_id!r}")
            return job

    def handle(self, job_id: str) -> JobResult:
        with self._lock:
            handle = self._handles.get(job_id)
            if handle is None:
                raise JobError(f"unknown job id {job_id!r}")
            return handle

    def jobs(self) -> list[Job]:
        """All **retained** jobs, in submission order.

        With a ``retention`` bound this is O(retention + live jobs), not
        every job ever submitted; evicted jobs answer through the engine's
        artifact-index fallback.
        """
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per state, over every job ever submitted (O(1)).

        QUEUED/RUNNING are live counts; the terminal states are cumulative
        across registry eviction, so ``/healthz`` keeps reporting lifetime
        totals however long the server has been up.
        """
        with self._lock:
            return dict(self._counts)

    def close(self) -> None:
        """Stop accepting submissions and wake every blocked :meth:`pop`."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
