"""Graph catalog: content-addressed graph store with derived-artifact caches.

The per-request execution path re-parses and re-partitions its input on
every call — exactly the cold-start cost a long-lived service must not pay
per request. The catalog amortizes it:

* **Graphs** are keyed by a content hash (:func:`graph_key`) and persisted
  as *uncompressed* NPZ under ``<root>/graphs/``, so repeat loads
  memory-map the edge arrays (``load_npz(..., mmap=True)``) instead of
  re-parsing text or copying buffers. Loaded graphs are additionally kept
  in an in-process table, so the steady-state hit is a dict lookup.
* **Derived artifacts** are cached per graph hash under
  ``<root>/derived/<key>/``: partition maps keyed by ``(partitioner,
  n_parts, seed)`` and postman eulerization plans. Entries carry the full
  key they were computed under; the pipeline validates the key against the
  actual run before use (see :func:`repro.pipeline.setup.cached_partition`),
  so a cache can accelerate but never alter a result.
* An **index** (``<root>/index.json``, written atomically) records
  per-graph metadata and last-use ordering; :meth:`GraphCatalog.put`
  enforces an optional on-disk **size budget** by evicting
  least-recently-used graphs together with their derived artifacts.

All public methods are thread-safe — the job engine's dispatcher threads
and the HTTP front end share one catalog instance.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import threading
import time
import weakref
from pathlib import Path

import numpy as np

from ..bsp import shm
from ..graph.graph import Graph
from ..graph.io import atomic_write, load_npz, save_npz
from ..partitioning import partition as partition_graph

__all__ = ["graph_key", "shard_of", "GraphCatalog"]


def graph_key(graph: Graph) -> str:
    """Content hash of a graph (vertex count + exact edge arrays).

    Identical edge lists in identical order hash equal; a reordered edge
    list is a different graph as far as run reproducibility is concerned
    (edge ids shift), so the hash is deliberately order-sensitive.
    """
    h = hashlib.sha256()
    h.update(int(graph.n_vertices).to_bytes(8, "little"))
    h.update(np.ascontiguousarray(graph.edge_u, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.edge_v, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


def shard_of(key: str, n_shards: int) -> int:
    """The home shard of a graph key among ``n_shards`` worker hosts.

    Content-hash sharding: the key is already a uniform sha256 prefix, so
    its leading 32 bits modulo the host count spread graphs evenly and —
    crucially — *deterministically*: every coordinator, restarted or not,
    computes the same home for the same graph, so a host's partition-local
    NPZ cache keeps hitting across coordinator restarts.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return int(key[:8], 16) % n_shards


def _dir_bytes(path: Path) -> int:
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


class GraphCatalog:
    """Content-addressed store of graphs and their derived setup artifacts."""

    def __init__(self, root, size_budget_bytes: int | None = None):
        self.root = Path(root)
        self.size_budget_bytes = size_budget_bytes
        self._lock = threading.RLock()
        self._graphs: dict[str, Graph] = {}
        self._partitions: dict[tuple[str, str, int, int], dict] = {}
        self._plans: dict[str, dict] = {}
        #: Refcounts of keys in active use (queued/running jobs) — pinned
        #: keys are exempt from budget eviction, so an accepted job can
        #: never lose its graph before it runs.
        self._pins: dict[str, int] = {}
        #: Weak references to every Graph object this catalog has handed
        #: out, keyed by graph key. Eviction consults them: unlinking an
        #: NPZ while a job still reads through its mmap'd arrays would feed
        #: that job freed pages, so the unlink is deferred until the last
        #: reference dies (see :meth:`_evict`).
        self._live: dict[str, "weakref.ref[Graph]"] = {}
        #: Lazily-created shared-memory publisher of edge arrays
        #: (:meth:`share`), letting forked dispatcher workers attach
        #: instead of re-reading the NPZ.
        self._segstore: shm.SharedSegmentStore | None = None
        #: Flat hit/miss/eviction counters, served by the ``/catalog``
        #: endpoint and asserted by the caching tests.
        self.stats = {
            "graph_hits": 0,
            "graph_misses": 0,
            "partition_hits": 0,
            "partition_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "evictions": 0,
        }
        (self.root / "graphs").mkdir(parents=True, exist_ok=True)
        (self.root / "derived").mkdir(parents=True, exist_ok=True)
        self._index: dict[str, dict] = self._load_index()

    # -- index ------------------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict[str, dict]:
        if not self._index_path.exists():
            return {}
        try:
            return json.loads(self._index_path.read_text())
        except (OSError, ValueError):
            return {}

    def _save_index(self) -> None:
        with atomic_write(self._index_path, suffix=".json") as fh:
            fh.write(json.dumps(self._index, indent=2, sort_keys=True).encode())

    def refresh(self) -> None:
        """Merge the on-disk index into memory (multi-process readers).

        A forked dispatcher worker's catalog is a fork-time snapshot;
        graphs the parent cataloged later exist on disk but not in the
        worker's index. Called on a key miss, this picks them up without
        any cross-process locking — the index file is written atomically.
        """
        with self._lock:
            self._index.update(self._load_index())

    def _touch(self, key: str) -> None:
        self._index[key]["last_used"] = time.time()

    # -- graphs -----------------------------------------------------------

    def _graph_path(self, key: str) -> Path:
        return self.root / "graphs" / f"{key}.npz"

    def _derived_dir(self, key: str) -> Path:
        return self.root / "derived" / key

    def put(self, graph: Graph, name: str = "", pin: bool = False) -> str:
        """Persist ``graph`` (idempotent) and return its content key.

        ``pin=True`` takes one :meth:`pin` reference *inside the same
        lock hold* — the catalog-then-pin TOCTOU closes: a concurrent
        ``put`` under a size budget can never evict the key between the
        two steps, because there is no in-between.
        """
        key = graph_key(graph)
        with self._lock:
            path = self._graph_path(key)
            if key not in self._index or not path.exists():
                # Uncompressed so later loads can memory-map the members.
                save_npz(graph, path, compressed=False)
                self._index[key] = {
                    "name": name,
                    "n_vertices": graph.n_vertices,
                    "n_edges": graph.n_edges,
                    "bytes": path.stat().st_size,
                    "created": time.time(),
                    "last_used": time.time(),
                }
            else:
                if name and not self._index[key].get("name"):
                    self._index[key]["name"] = name
                self._touch(key)
            self._graphs[key] = graph
            self._live[key] = weakref.ref(graph)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
            self._evict_to_budget(protect=key)
            self._save_index()
        return key

    def get(self, key: str) -> Graph:
        """Load a cataloged graph (memory table, then mmap from disk).

        Hot path: only in-memory state is touched on a hit — the last-used
        ordering persists to ``index.json`` on the next put/eviction, not
        here (approximate durability of LRU order is fine; a whole-index
        rewrite per request is not).
        """
        with self._lock:
            g = self._graphs.get(key)
            if g is not None:
                self.stats["graph_hits"] += 1
                self._touch(key)
                return g
            path = self._graph_path(key)
            if key not in self._index or not path.exists():
                raise KeyError(f"unknown graph key {key!r}")
            self.stats["graph_misses"] += 1
            # The archive was written from a validated Graph at put();
            # skip the range re-scan so the mapping stays lazy.
            g, _ = load_npz(path, mmap=True, validate=False)
            self._graphs[key] = g
            self._live[key] = weakref.ref(g)
            self._touch(key)
            return g

    def export_bytes(self, key: str) -> bytes:
        """The raw NPZ bytes of a cataloged graph (for host provisioning).

        What a coordinator frames to a remote :class:`WorkerHost` that does
        not hold ``key`` yet — the uncompressed archive written at
        :meth:`put`, byte for byte, so the receiving host's
        :meth:`put_bytes` re-derives the *same* content key.
        """
        with self._lock:
            path = self._graph_path(key)
            if key not in self._index or not path.exists():
                raise KeyError(f"unknown graph key {key!r}")
            self._touch(key)
            return path.read_bytes()

    def put_bytes(self, data: bytes, name: str = "", pin: bool = False) -> str:
        """Catalog a graph received as NPZ bytes; returns its content key.

        The inverse of :meth:`export_bytes`. The archive is parsed and
        re-keyed through :meth:`put`, so the returned key is derived from
        the actual edge arrays — a corrupted or mislabeled transfer can
        never poison the catalog under a wrong key.
        """
        import io

        with np.load(io.BytesIO(data)) as z:
            graph = Graph.from_arrays(
                int(z["n_vertices"]),
                np.array(z["edge_u"], dtype=np.int64),
                np.array(z["edge_v"], dtype=np.int64),
                check=False,
            )
        return self.put(graph, name=name, pin=pin)

    def shard_of(self, key: str, n_shards: int) -> int:
        """See module-level :func:`shard_of` (kept on the class for callers
        holding only a catalog)."""
        return shard_of(key, n_shards)

    def meta(self, key: str) -> dict:
        """Index metadata for one graph (raises ``KeyError`` if unknown)."""
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                raise KeyError(f"unknown graph key {key!r}")
            return dict(entry)

    def pin(self, key: str) -> None:
        """Exempt ``key`` from eviction while in use (refcounted)."""
        with self._lock:
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Release one :meth:`pin` reference (no-op when not pinned)."""
        with self._lock:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index and self._graph_path(key).exists()

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._index)

    def entries(self) -> list[dict]:
        """Index rows for the serving front end (key + metadata)."""
        with self._lock:
            return [
                {"graph_key": k, **self._index[k]} for k in sorted(self._index)
            ]

    # -- derived artifacts -------------------------------------------------

    def partition_map(
        self, key: str, partitioner: str, n_parts: int, seed: int
    ) -> dict:
        """A cached vertex→partition map entry for this graph.

        The returned dict is exactly what
        :func:`repro.pipeline.setup.cached_partition` validates: the map
        plus the full key it was computed under (clamped part count, graph
        shape). Computed once per ``(graph, partitioner, n_parts, seed)``
        and persisted; later calls hit memory or disk.
        """
        with self._lock:
            meta = self._index.get(key)
            if meta is None:
                raise KeyError(f"unknown graph key {key!r}")
            # Clamp exactly like Setup so the entry key always matches.
            n_eff = max(1, min(int(n_parts), int(meta["n_vertices"])))
            ck = (key, partitioner, n_eff, int(seed))
            entry = self._partitions.get(ck)
            if entry is not None:
                self.stats["partition_hits"] += 1
                return entry
            path = self._derived_dir(key) / f"part_{partitioner}_p{n_eff}_s{seed}.npz"
            if path.exists():
                with np.load(path) as z:
                    part_of = np.array(z["part_of"], dtype=np.int64)
                self.stats["partition_hits"] += 1
            else:
                self.stats["partition_misses"] += 1
                g = self.get(key)
                part_of = np.asarray(
                    partition_graph(g, n_eff, method=partitioner, seed=seed).part_of,
                    dtype=np.int64,
                )
                with atomic_write(path, suffix=".npz") as fh:
                    np.savez(fh, part_of=part_of)
            entry = {
                "part_of": part_of,
                "n_parts": n_eff,
                "partitioner": partitioner,
                "seed": int(seed),
                "n_vertices": int(meta["n_vertices"]),
                "n_edges": int(meta["n_edges"]),
            }
            self._partitions[ck] = entry
            return entry

    def eulerize_plan(self, key: str) -> dict:
        """A cached postman eulerization plan for this graph (see postman)."""
        from ..scenarios.postman import eulerize_plan as compute_plan

        with self._lock:
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            plan = self._plans.get(key)
            if plan is not None:
                self.stats["plan_hits"] += 1
                return plan
            path = self._derived_dir(key) / "eulerize_plan.npz"
            if path.exists():
                with np.load(path) as z:
                    plan = {
                        "dup_u": np.array(z["dup_u"], dtype=np.int64),
                        "dup_v": np.array(z["dup_v"], dtype=np.int64),
                        "dup_orig": np.array(z["dup_orig"], dtype=np.int64),
                        "n_odd_vertices": int(z["n_odd_vertices"]),
                        "n_vertices": int(z["n_vertices"]),
                        "n_edges": int(z["n_edges"]),
                    }
                self.stats["plan_hits"] += 1
            else:
                self.stats["plan_misses"] += 1
                plan = compute_plan(self.get(key))
                with atomic_write(path, suffix=".npz") as fh:
                    np.savez(fh, **plan)
            self._plans[key] = plan
            return plan

    def derived_for(self, key: str, config, scenario: str) -> dict:
        """Assemble the ``RunConfig.derived`` mapping for one job.

        Always includes the partition map for the cataloged graph under the
        job's partitioning key; adds the eulerization plan for postman
        jobs. Sub-problems whose graph differs from the cataloged one
        (components, augmented path/postman graphs) fail the pipeline's
        validation checks and recompute — correctness never depends on what
        is injected here.
        """
        derived = {
            "partition_map": self.partition_map(
                key, config.partitioner, config.n_parts, config.seed
            )
        }
        if scenario == "postman":
            derived["eulerize_plan"] = self.eulerize_plan(key)
        return derived

    # -- shared-memory publication ------------------------------------------

    def share(self, key: str) -> dict | None:
        """Publish ``key``'s edge arrays to shared memory; the descriptor.

        Idempotent per key. Forked dispatcher workers rebuild the graph
        zero-copy from the attached views
        (:func:`repro.bsp.shm.attach_arrays` +
        :meth:`~repro.graph.graph.Graph.from_arrays`). Returns ``None``
        when POSIX shared memory is unavailable — callers fall back to the
        NPZ path.
        """
        if not shm.shm_available():
            return None
        with self._lock:
            meta = self._index.get(key)
            if meta is None:
                raise KeyError(f"unknown graph key {key!r}")
            if self._segstore is None:
                self._segstore = shm.SharedSegmentStore(tag="cat")
            if key not in self._segstore:
                g = self.get(key)
                self._segstore.publish(
                    key, {"edge_u": g.edge_u, "edge_v": g.edge_v}
                )
            descriptor = self._segstore.descriptor(key)
            return {"n_vertices": int(meta["n_vertices"]), **descriptor}

    def segment_stats(self) -> dict:
        """Shared-segment publication stats (zeros before first share)."""
        with self._lock:
            if self._segstore is None:
                return {"segments": 0, "bytes": 0, "attaches": 0}
            return self._segstore.stats()

    def close_shared(self) -> None:
        """Unlink every published segment (idempotent; engine close calls)."""
        with self._lock:
            if self._segstore is not None:
                self._segstore.close()
                self._segstore = None

    # -- eviction ----------------------------------------------------------

    def disk_bytes(self) -> int:
        """Total on-disk footprint of graphs + derived artifacts."""
        with self._lock:
            total = 0
            for key in self._index:
                p = self._graph_path(key)
                if p.exists():
                    total += p.stat().st_size
                d = self._derived_dir(key)
                if d.exists():
                    total += _dir_bytes(d)
            return total

    def _evict_to_budget(self, protect: str | None = None) -> None:
        if self.size_budget_bytes is None:
            return
        while self.disk_bytes() > self.size_budget_bytes and len(self._index) > 1:
            victims = sorted(
                (k for k in self._index
                 if k != protect and k not in self._pins),
                key=lambda k: self._index[k]["last_used"],
            )
            if not victims:
                return
            self._evict(victims[0])

    def _evict(self, key: str) -> None:
        # Drop the catalog's own strong reference *before* probing the
        # weakref: what's left alive after this pop is exactly the set of
        # in-flight users still reading through the graph's mmap.
        self._graphs.pop(key, None)
        self._plans.pop(key, None)
        for ck in [c for c in self._partitions if c[0] == key]:
            self._partitions.pop(ck)
        self._index.pop(key, None)
        if self._segstore is not None:
            self._segstore.unpublish(key)
        self.stats["evictions"] += 1
        ref = self._live.pop(key, None)
        live = ref() if ref is not None else None
        if live is not None:
            # An in-flight job still holds the mmap'd Graph; unlinking now
            # would yank its pages. Defer the file removal to the moment
            # the last reference dies (re-checking that the key wasn't
            # re-published in the meantime).
            weakref.finalize(live, self._deferred_unlink, key)
        else:
            self._unlink_files(key)

    def _unlink_files(self, key: str) -> None:
        self._graph_path(key).unlink(missing_ok=True)
        shutil.rmtree(self._derived_dir(key), ignore_errors=True)

    def _deferred_unlink(self, key: str) -> None:
        with self._lock:
            if key in self._index:
                return  # re-published since eviction; files are live again
            self._unlink_files(key)
