"""Graph catalog: content-addressed graph store with derived-artifact caches.

The per-request execution path re-parses and re-partitions its input on
every call — exactly the cold-start cost a long-lived service must not pay
per request. The catalog amortizes it:

* **Graphs** are keyed by a content hash (:func:`graph_key`) and persisted
  as *uncompressed* NPZ under ``<root>/graphs/``, so repeat loads
  memory-map the edge arrays (``load_npz(..., mmap=True)``) instead of
  re-parsing text or copying buffers. Loaded graphs are additionally kept
  in an in-process table, so the steady-state hit is a dict lookup.
* **Derived artifacts** are cached per graph hash under
  ``<root>/derived/<key>/``: partition maps keyed by ``(partitioner,
  n_parts, seed)`` and postman eulerization plans. Entries carry the full
  key they were computed under; the pipeline validates the key against the
  actual run before use (see :func:`repro.pipeline.setup.cached_partition`),
  so a cache can accelerate but never alter a result.
* An **index** (``<root>/index.json``, written atomically) records
  per-graph metadata and last-use ordering; :meth:`GraphCatalog.put`
  enforces an optional on-disk **size budget** by evicting
  least-recently-used graphs together with their derived artifacts.
* **Delta chains** make mutations first-class: :meth:`GraphCatalog.mutate`
  applies a :class:`~repro.deltas.GraphDelta` to a cataloged base, keys
  the child by content hash, and persists only the (tiny) delta NPZ under
  ``<root>/deltas/<child>.npz`` with a ``delta_of`` back-pointer in the
  index — the child's full NPZ is materialized lazily
  (:meth:`GraphCatalog.materialize`), on the first export or disk load
  that needs it. A child's canonical partition map is the parent's cached
  map *extended* over the delta (new vertices join the partition of their
  first already-placed neighbour), which is what lets incremental repair
  and full recompute of the child agree bit-for-bit. Eviction never
  unlinks a base graph an unmaterialized child still needs — chain
  parents are protected alongside pins.

All public methods are thread-safe — the job engine's dispatcher threads
and the HTTP front end share one catalog instance.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import threading
import time
import weakref
from pathlib import Path

import numpy as np

from ..bsp import shm
from ..graph.graph import Graph
from ..graph.io import atomic_write, load_npz, save_npz
from ..obs import MetricsRegistry
from ..partitioning import partition as partition_graph

__all__ = ["graph_key", "shard_of", "GraphCatalog"]


def graph_key(graph: Graph) -> str:
    """Content hash of a graph (vertex count + exact edge arrays).

    Identical edge lists in identical order hash equal; a reordered edge
    list is a different graph as far as run reproducibility is concerned
    (edge ids shift), so the hash is deliberately order-sensitive.
    """
    h = hashlib.sha256()
    h.update(int(graph.n_vertices).to_bytes(8, "little"))
    h.update(np.ascontiguousarray(graph.edge_u, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.edge_v, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


def shard_of(key: str, n_shards: int) -> int:
    """The home shard of a graph key among ``n_shards`` worker hosts.

    Content-hash sharding: the key is already a uniform sha256 prefix, so
    its leading 32 bits modulo the host count spread graphs evenly and —
    crucially — *deterministically*: every coordinator, restarted or not,
    computes the same home for the same graph, so a host's partition-local
    NPZ cache keeps hitting across coordinator restarts.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return int(key[:8], 16) % n_shards


def _dir_bytes(path: Path) -> int:
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


#: The catalog's counter kinds (one labeled series each on /metrics).
_STAT_KINDS = (
    "graph_hits",
    "graph_misses",
    "partition_hits",
    "partition_misses",
    "plan_hits",
    "plan_misses",
    "evictions",
    "mutations",
    "delta_rebuilds",
    "partition_extensions",
)


class _CatalogStats(dict):
    """Dict-shaped counters mirrored into ``repro_catalog_events_total``.

    Reads, iteration and JSON serialization behave exactly like the old
    plain dict — the ``/catalog`` endpoint and the caching tests that
    assert exact counts on fresh catalogs are unchanged. Writes
    additionally push the new total into the owning registry's
    ``repro_catalog_events_total{kind=...}`` counter, so ``GET /metrics``
    reports hit/evict/rebuild rates without a scrape-time bridge.
    """

    def __init__(self, metrics: MetricsRegistry):
        super().__init__({k: 0 for k in _STAT_KINDS})
        family = metrics.counter(
            "repro_catalog_events_total",
            "Catalog cache hits/misses, evictions and rebuilds by kind",
            labelnames=("kind",),
        )
        self._children = {k: family.labels(kind=k) for k in _STAT_KINDS}

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        child = self._children.get(key)
        if child is not None:
            child.set_total(value)


class GraphCatalog:
    """Content-addressed store of graphs and their derived setup artifacts."""

    def __init__(self, root, size_budget_bytes: int | None = None,
                 metrics: MetricsRegistry | None = None):
        self.root = Path(root)
        self.size_budget_bytes = size_budget_bytes
        # Private registry by default: tests build fresh catalogs and
        # assert exact hit/miss counts, so two catalogs must never share
        # counter series. The engine passes its registry in.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._graphs: dict[str, Graph] = {}
        self._partitions: dict[tuple[str, str, int, int], dict] = {}
        self._plans: dict[str, dict] = {}
        #: Refcounts of keys in active use (queued/running jobs) — pinned
        #: keys are exempt from budget eviction, so an accepted job can
        #: never lose its graph before it runs.
        self._pins: dict[str, int] = {}
        #: Weak references to every Graph object this catalog has handed
        #: out, keyed by graph key. Eviction consults them: unlinking an
        #: NPZ while a job still reads through its mmap'd arrays would feed
        #: that job freed pages, so the unlink is deferred until the last
        #: reference dies (see :meth:`_evict`).
        self._live: dict[str, "weakref.ref[Graph]"] = {}
        #: Lazily-created shared-memory publisher of edge arrays
        #: (:meth:`share`), letting forked dispatcher workers attach
        #: instead of re-reading the NPZ.
        self._segstore: shm.SharedSegmentStore | None = None
        #: Flat hit/miss/eviction counters, served by the ``/catalog``
        #: endpoint and asserted by the caching tests; writes mirror into
        #: ``repro_catalog_events_total`` on the catalog's registry.
        self.stats = _CatalogStats(self.metrics)
        (self.root / "graphs").mkdir(parents=True, exist_ok=True)
        (self.root / "derived").mkdir(parents=True, exist_ok=True)
        (self.root / "deltas").mkdir(parents=True, exist_ok=True)
        self._index: dict[str, dict] = self._load_index()

    # -- index ------------------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict[str, dict]:
        if not self._index_path.exists():
            return {}
        try:
            return json.loads(self._index_path.read_text())
        except (OSError, ValueError):
            return {}

    def _save_index(self) -> None:
        with atomic_write(self._index_path, suffix=".json") as fh:
            fh.write(json.dumps(self._index, indent=2, sort_keys=True).encode())

    def refresh(self) -> None:
        """Merge the on-disk index into memory (multi-process readers).

        A forked dispatcher worker's catalog is a fork-time snapshot;
        graphs the parent cataloged later exist on disk but not in the
        worker's index. Called on a key miss, this picks them up without
        any cross-process locking — the index file is written atomically.
        """
        with self._lock:
            self._index.update(self._load_index())

    def _touch(self, key: str) -> None:
        self._index[key]["last_used"] = time.time()

    # -- graphs -----------------------------------------------------------

    def _graph_path(self, key: str) -> Path:
        return self.root / "graphs" / f"{key}.npz"

    def _delta_path(self, key: str) -> Path:
        return self.root / "deltas" / f"{key}.npz"

    def _derived_dir(self, key: str) -> Path:
        return self.root / "derived" / key

    def put(self, graph: Graph, name: str = "", pin: bool = False) -> str:
        """Persist ``graph`` (idempotent) and return its content key.

        ``pin=True`` takes one :meth:`pin` reference *inside the same
        lock hold* — the catalog-then-pin TOCTOU closes: a concurrent
        ``put`` under a size budget can never evict the key between the
        two steps, because there is no in-between.
        """
        key = graph_key(graph)
        with self._lock:
            path = self._graph_path(key)
            if key not in self._index or not path.exists():
                # Uncompressed so later loads can memory-map the members.
                save_npz(graph, path, compressed=False)
                self._index[key] = {
                    "name": name,
                    "n_vertices": graph.n_vertices,
                    "n_edges": graph.n_edges,
                    "bytes": path.stat().st_size,
                    "created": time.time(),
                    "last_used": time.time(),
                }
            else:
                if name and not self._index[key].get("name"):
                    self._index[key]["name"] = name
                self._touch(key)
            self._graphs[key] = graph
            self._live[key] = weakref.ref(graph)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
            self._evict_to_budget(protect=key)
            self._save_index()
        return key

    def get(self, key: str) -> Graph:
        """Load a cataloged graph (memory table, then mmap from disk).

        Hot path: only in-memory state is touched on a hit — the last-used
        ordering persists to ``index.json`` on the next put/eviction, not
        here (approximate durability of LRU order is fine; a whole-index
        rewrite per request is not).
        """
        with self._lock:
            g = self._graphs.get(key)
            if g is not None:
                self.stats["graph_hits"] += 1
                self._touch(key)
                return g
            path = self._graph_path(key)
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            if not path.exists():
                # Unmaterialized delta child: rebuild from the chain.
                parent = self._index[key].get("delta_of")
                if parent is None:
                    raise KeyError(f"unknown graph key {key!r}")
                g = self.load_delta(key).apply(self.get(parent))
                self.stats["delta_rebuilds"] += 1
            else:
                self.stats["graph_misses"] += 1
                # The archive was written from a validated Graph at put();
                # skip the range re-scan so the mapping stays lazy.
                g, _ = load_npz(path, mmap=True, validate=False)
            self._graphs[key] = g
            self._live[key] = weakref.ref(g)
            self._touch(key)
            return g

    def export_bytes(self, key: str) -> bytes:
        """The raw NPZ bytes of a cataloged graph (for host provisioning).

        What a coordinator frames to a remote :class:`WorkerHost` that does
        not hold ``key`` yet — the uncompressed archive written at
        :meth:`put`, byte for byte, so the receiving host's
        :meth:`put_bytes` re-derives the *same* content key.
        """
        with self._lock:
            path = self._graph_path(key)
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            if not path.exists():
                if self._index[key].get("delta_of") is None:
                    raise KeyError(f"unknown graph key {key!r}")
                self.materialize(key)
            self._touch(key)
            return path.read_bytes()

    def put_bytes(self, data: bytes, name: str = "", pin: bool = False) -> str:
        """Catalog a graph received as NPZ bytes; returns its content key.

        The inverse of :meth:`export_bytes`. The archive is parsed and
        re-keyed through :meth:`put`, so the returned key is derived from
        the actual edge arrays — a corrupted or mislabeled transfer can
        never poison the catalog under a wrong key.
        """
        import io

        with np.load(io.BytesIO(data)) as z:
            graph = Graph.from_arrays(
                int(z["n_vertices"]),
                np.array(z["edge_u"], dtype=np.int64),
                np.array(z["edge_v"], dtype=np.int64),
                check=False,
            )
        return self.put(graph, name=name, pin=pin)

    def shard_of(self, key: str, n_shards: int) -> int:
        """See module-level :func:`shard_of` (kept on the class for callers
        holding only a catalog)."""
        return shard_of(key, n_shards)

    def meta(self, key: str) -> dict:
        """Index metadata for one graph (raises ``KeyError`` if unknown)."""
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                raise KeyError(f"unknown graph key {key!r}")
            return dict(entry)

    def pin(self, key: str) -> None:
        """Exempt ``key`` from eviction while in use (refcounted)."""
        with self._lock:
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Release one :meth:`pin` reference (no-op when not pinned)."""
        with self._lock:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            seen: set[str] = set()
            while key in self._index and key not in seen:
                if self._graph_path(key).exists():
                    return True
                seen.add(key)
                # Unmaterialized delta child: resolvable iff the delta
                # file survives and the chain bottoms out in a real NPZ.
                parent = self._index[key].get("delta_of")
                if parent is None or not self._delta_path(key).exists():
                    return False
                key = parent
            return False

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._index)

    def entries(self) -> list[dict]:
        """Index rows for the serving front end (key + metadata)."""
        with self._lock:
            return [
                {"graph_key": k, **self._index[k]} for k in sorted(self._index)
            ]

    # -- delta chains -------------------------------------------------------

    def mutate(self, base_key: str, delta, name: str = "",
               pin: bool = False, faults=None) -> str:
        """Apply ``delta`` to a cataloged graph; the child's content key.

        The child graph is kept hot in the in-process table and keyed by
        its true content hash, but **only the delta NPZ** is persisted
        (``deltas/<child>.npz`` plus a ``delta_of`` index back-pointer) —
        the full child archive is written lazily by :meth:`materialize`.
        Idempotent: re-applying the same delta lands on the same key.
        """
        from ..deltas.delta import GraphDelta

        if not isinstance(delta, GraphDelta):
            raise ValueError(f"mutate expects a GraphDelta, got {type(delta)}")
        with self._lock:
            if base_key not in self._index:
                raise KeyError(f"unknown graph key {base_key!r}")
            if faults is not None:
                faults.delta_apply()
            base = self.get(base_key)
            child = delta.apply(base)
            key = graph_key(child)
            self.stats["mutations"] += 1
            if key in self._index:
                self._touch(key)
                self._graphs.setdefault(key, child)
                if pin:
                    self._pins[key] = self._pins.get(key, 0) + 1
                return key
            dpath = self._delta_path(key)
            dpath.write_bytes(delta.to_bytes())
            self._index[key] = {
                "name": name,
                "n_vertices": child.n_vertices,
                "n_edges": child.n_edges,
                "bytes": dpath.stat().st_size,
                "created": time.time(),
                "last_used": time.time(),
                "delta_of": base_key,
            }
            self._graphs[key] = child
            self._live[key] = weakref.ref(child)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
            self._evict_to_budget(protect=key)
            self._save_index()
        return key

    def delta_parent(self, key: str) -> str | None:
        """The chain parent of ``key`` (``None`` for root graphs)."""
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                raise KeyError(f"unknown graph key {key!r}")
            return entry.get("delta_of")

    def load_delta(self, key: str):
        """The stored :class:`GraphDelta` producing ``key`` from its parent."""
        from ..deltas.delta import GraphDelta

        with self._lock:
            path = self._delta_path(key)
            if key not in self._index or not path.exists():
                raise KeyError(f"no stored delta for graph key {key!r}")
            return GraphDelta.from_bytes(path.read_bytes())

    def export_delta_bytes(self, key: str) -> tuple[str, bytes]:
        """``(parent_key, delta_npz_bytes)`` for remote delta shipping.

        Raises ``KeyError`` when ``key`` is a root graph or its delta file
        is gone — callers fall back to :meth:`export_bytes`.
        """
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                raise KeyError(f"unknown graph key {key!r}")
            parent = entry.get("delta_of")
            path = self._delta_path(key)
            if parent is None or not path.exists():
                raise KeyError(f"no stored delta for graph key {key!r}")
            return parent, path.read_bytes()

    def put_delta_bytes(self, parent_key: str, data: bytes,
                        name: str = "") -> str:
        """Catalog a delta received as NPZ bytes (remote host side).

        The inverse of :meth:`export_delta_bytes`: the delta is re-applied
        against the locally-held parent and the child is re-keyed from the
        actual arrays, so a corrupted transfer cannot poison the shard.
        """
        from ..deltas.delta import GraphDelta

        return self.mutate(parent_key, GraphDelta.from_bytes(data), name=name)

    def materialize(self, key: str) -> Path:
        """Write the full NPZ for a delta child (idempotent); its path.

        The delta file and ``delta_of`` pointer survive materialization —
        they keep serving remote delta shipping and provenance — but the
        chain no longer *needs* the parent, so eviction protection lapses.
        """
        with self._lock:
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            path = self._graph_path(key)
            if not path.exists():
                g = self.get(key)
                save_npz(g, path, compressed=False)
                self._index[key]["bytes"] = path.stat().st_size
                self._save_index()
            return path

    def _chain_protected(self) -> set[str]:
        """Keys some *unmaterialized* delta child still needs to rebuild."""
        protected: set[str] = set()
        for key, entry in self._index.items():
            parent = entry.get("delta_of")
            if parent is None or self._graph_path(key).exists():
                continue
            seen = {key}
            while parent is not None and parent in self._index:
                protected.add(parent)
                if (self._graph_path(parent).exists()
                        or parent in seen):
                    break  # chain bottoms out (or is cyclic/corrupt)
                seen.add(parent)
                parent = self._index[parent].get("delta_of")
        return protected

    # -- derived artifacts -------------------------------------------------

    def partition_map(
        self, key: str, partitioner: str, n_parts: int, seed: int
    ) -> dict:
        """A cached vertex→partition map entry for this graph.

        The returned dict is exactly what
        :func:`repro.pipeline.setup.cached_partition` validates: the map
        plus the full key it was computed under (clamped part count, graph
        shape). Computed once per ``(graph, partitioner, n_parts, seed)``
        and persisted; later calls hit memory or disk.
        """
        with self._lock:
            meta = self._index.get(key)
            if meta is None:
                raise KeyError(f"unknown graph key {key!r}")
            # Clamp exactly like Setup so the entry key always matches.
            n_eff = max(1, min(int(n_parts), int(meta["n_vertices"])))
            ck = (key, partitioner, n_eff, int(seed))
            entry = self._partitions.get(ck)
            if entry is not None:
                self.stats["partition_hits"] += 1
                return entry
            path = self._derived_dir(key) / f"part_{partitioner}_p{n_eff}_s{seed}.npz"
            if path.exists():
                with np.load(path) as z:
                    part_of = np.array(z["part_of"], dtype=np.int64)
                self.stats["partition_hits"] += 1
            else:
                # A delta child's canonical map is the parent's map
                # extended over the delta — this is what makes incremental
                # repair and a full recompute of the child see the same
                # partitioning (and therefore the same circuit).
                part_of = self._extended_partition(
                    key, meta, partitioner, n_parts, seed, n_eff
                )
                if part_of is None:
                    self.stats["partition_misses"] += 1
                    g = self.get(key)
                    part_of = np.asarray(
                        partition_graph(
                            g, n_eff, method=partitioner, seed=seed
                        ).part_of,
                        dtype=np.int64,
                    )
                else:
                    self.stats["partition_extensions"] += 1
                with atomic_write(path, suffix=".npz") as fh:
                    np.savez(fh, part_of=part_of)
            entry = {
                "part_of": part_of,
                "n_parts": n_eff,
                "partitioner": partitioner,
                "seed": int(seed),
                "n_vertices": int(meta["n_vertices"]),
                "n_edges": int(meta["n_edges"]),
            }
            self._partitions[ck] = entry
            return entry

    def _extended_partition(self, key: str, meta: dict, partitioner: str,
                            n_parts: int, seed: int, n_eff: int):
        """Parent map extended over ``key``'s delta, or ``None``.

        New vertices join the partition of their first already-placed
        endpoint in delta-insert order (partition 0 when every neighbour
        is also new) — deterministic, so every process derives the same
        extension. Falls back to ``None`` (cold partitioning) when the
        clamped part counts disagree between parent and child.
        """
        parent = meta.get("delta_of")
        if parent is None or parent not in self._index:
            return None
        if not self._delta_path(key).exists():
            return None
        parent_entry = self.partition_map(parent, partitioner, n_parts, seed)
        if parent_entry["n_parts"] != n_eff:
            return None
        from ..deltas.delta import extend_part_of

        return extend_part_of(parent_entry["part_of"], self.load_delta(key))

    def eulerize_plan(self, key: str) -> dict:
        """A cached postman eulerization plan for this graph (see postman)."""
        from ..scenarios.postman import eulerize_plan as compute_plan

        with self._lock:
            if key not in self._index:
                raise KeyError(f"unknown graph key {key!r}")
            plan = self._plans.get(key)
            if plan is not None:
                self.stats["plan_hits"] += 1
                return plan
            path = self._derived_dir(key) / "eulerize_plan.npz"
            if path.exists():
                with np.load(path) as z:
                    plan = {
                        "dup_u": np.array(z["dup_u"], dtype=np.int64),
                        "dup_v": np.array(z["dup_v"], dtype=np.int64),
                        "dup_orig": np.array(z["dup_orig"], dtype=np.int64),
                        "n_odd_vertices": int(z["n_odd_vertices"]),
                        "n_vertices": int(z["n_vertices"]),
                        "n_edges": int(z["n_edges"]),
                    }
                self.stats["plan_hits"] += 1
            else:
                self.stats["plan_misses"] += 1
                plan = compute_plan(self.get(key))
                with atomic_write(path, suffix=".npz") as fh:
                    np.savez(fh, **plan)
            self._plans[key] = plan
            return plan

    def derived_for(self, key: str, config, scenario: str) -> dict:
        """Assemble the ``RunConfig.derived`` mapping for one job.

        Always includes the partition map for the cataloged graph under the
        job's partitioning key; adds the eulerization plan for postman
        jobs. Sub-problems whose graph differs from the cataloged one
        (components, augmented path/postman graphs) fail the pipeline's
        validation checks and recompute — correctness never depends on what
        is injected here.
        """
        derived = {
            "partition_map": self.partition_map(
                key, config.partitioner, config.n_parts, config.seed
            )
        }
        if scenario == "postman":
            derived["eulerize_plan"] = self.eulerize_plan(key)
        return derived

    # -- shared-memory publication ------------------------------------------

    def share(self, key: str) -> dict | None:
        """Publish ``key``'s edge arrays to shared memory; the descriptor.

        Idempotent per key. Forked dispatcher workers rebuild the graph
        zero-copy from the attached views
        (:func:`repro.bsp.shm.attach_arrays` +
        :meth:`~repro.graph.graph.Graph.from_arrays`). Returns ``None``
        when POSIX shared memory is unavailable — callers fall back to the
        NPZ path.
        """
        if not shm.shm_available():
            return None
        with self._lock:
            meta = self._index.get(key)
            if meta is None:
                raise KeyError(f"unknown graph key {key!r}")
            if self._segstore is None:
                self._segstore = shm.SharedSegmentStore(tag="cat")
            if key not in self._segstore:
                g = self.get(key)
                self._segstore.publish(
                    key, {"edge_u": g.edge_u, "edge_v": g.edge_v}
                )
            descriptor = self._segstore.descriptor(key)
            return {"n_vertices": int(meta["n_vertices"]), **descriptor}

    def segment_stats(self) -> dict:
        """Shared-segment publication stats (zeros before first share)."""
        with self._lock:
            if self._segstore is None:
                return {"segments": 0, "bytes": 0, "attaches": 0}
            return self._segstore.stats()

    def close_shared(self) -> None:
        """Unlink every published segment (idempotent; engine close calls)."""
        with self._lock:
            if self._segstore is not None:
                self._segstore.close()
                self._segstore = None

    # -- eviction ----------------------------------------------------------

    def disk_bytes(self) -> int:
        """Total on-disk footprint of graphs + derived artifacts."""
        with self._lock:
            total = 0
            for key in self._index:
                for p in (self._graph_path(key), self._delta_path(key)):
                    if p.exists():
                        total += p.stat().st_size
                d = self._derived_dir(key)
                if d.exists():
                    total += _dir_bytes(d)
            return total

    def _evict_to_budget(self, protect: str | None = None) -> None:
        if self.size_budget_bytes is None:
            return
        while self.disk_bytes() > self.size_budget_bytes and len(self._index) > 1:
            # Chain parents an unmaterialized child still rebuilds through
            # are as untouchable as pins: evicting one would strand every
            # descendant delta (see the evict-parent regression test).
            chained = self._chain_protected()
            victims = sorted(
                (k for k in self._index
                 if k != protect and k not in self._pins
                 and k not in chained),
                key=lambda k: self._index[k]["last_used"],
            )
            if not victims:
                return
            self._evict(victims[0])

    def _evict(self, key: str) -> None:
        # Drop the catalog's own strong reference *before* probing the
        # weakref: what's left alive after this pop is exactly the set of
        # in-flight users still reading through the graph's mmap.
        self._graphs.pop(key, None)
        self._plans.pop(key, None)
        for ck in [c for c in self._partitions if c[0] == key]:
            self._partitions.pop(ck)
        self._index.pop(key, None)
        if self._segstore is not None:
            self._segstore.unpublish(key)
        self.stats["evictions"] += 1
        ref = self._live.pop(key, None)
        live = ref() if ref is not None else None
        if live is not None:
            # An in-flight job still holds the mmap'd Graph; unlinking now
            # would yank its pages. Defer the file removal to the moment
            # the last reference dies (re-checking that the key wasn't
            # re-published in the meantime).
            weakref.finalize(live, self._deferred_unlink, key)
        else:
            self._unlink_files(key)

    def _unlink_files(self, key: str) -> None:
        self._graph_path(key).unlink(missing_ok=True)
        self._delta_path(key).unlink(missing_ok=True)
        shutil.rmtree(self._derived_dir(key), ignore_errors=True)

    def _deferred_unlink(self, key: str) -> None:
        with self._lock:
            if key in self._index:
                return  # re-published since eviction; files are live again
            self._unlink_files(key)
