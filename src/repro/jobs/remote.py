"""Remote worker hosts: the paper's one-machine-per-partition tier, real.

Two halves, speaking the length-prefixed frame protocol of
:mod:`repro.bsp.transport` over TCP:

:class:`WorkerHost`
    A server process (``repro-euler worker``) owning its own
    :class:`~repro.jobs.catalog.GraphCatalog` root — its partition-local
    NPZ shard. It serves two granularities of work on the same protocol:

    * ``task`` — one partition-superstep for the ``remote`` BSP backend
      (:class:`~repro.bsp.executors.RemoteExecutor`): the already-packed
      int64 columns cross as raw out-of-band frame buffers, the superstep
      program installs once by content hash (shared-memory descriptor when
      co-located, framed pickle otherwise);
    * ``run_job`` — one whole job spec, executed through the *same*
      :func:`repro.jobs.dispatch._run_spec` the forked dispatcher workers
      use, so catalog attach fallbacks, derived-artifact reuse, cancel
      semantics and the pass history are identical to single-machine
      serving.

    Control operations (``cancel``, ``ping``, ``ensure_graph``,
    ``put_graph``) arrive on separate connections served by their own
    threads, so a host mid-job stays steerable.

:class:`RemoteHostPool`
    The coordinator side, mirroring :class:`ForkedWorkerPool`'s contract
    for :class:`~repro.jobs.engine.JobEngine`'s ``dispatcher="remote"``
    mode: jobs prefer their graph's home host (content-hash sharding via
    :func:`~repro.jobs.catalog.shard_of`) with work-stealing when the home
    is busy, missing graphs are provisioned host-side as raw NPZ bytes
    (re-keyed on arrival, so transfer corruption cannot poison a shard),
    and a host that drops its socket or stops heartbeating mid-job is
    marked down for a cooldown while the job surfaces as a
    :class:`~repro.errors.TransientJobError` — PR 7's retry/backoff
    machinery then re-dispatches it to a surviving host.

Failure semantics: a host death loses only the jobs running on it, never
acknowledged state (the journal lives with the coordinator); a dead host's
segments are reclaimed by the shm janitor on the next serve start because
every segment name carries its creator pid — and *only* then, since the
janitor treats foreign live pids (hosts started by other parents or users)
as untouchable.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback
from pathlib import Path

from ..bsp import shm
from ..bsp import transport as frame
from ..bsp.executors import run_task
from ..errors import TransientJobError
from .catalog import GraphCatalog, shard_of
from .dispatch import _run_spec
from .supervise import SupervisedPool

__all__ = ["WorkerHost", "RemoteHostPool", "worker_serve"]

#: Cached superstep programs per host (content-hash keyed, LRU).
_PROGRAM_CAP = 8
#: Remembered cancels for jobs not yet (or no longer) running (bounded).
_PENDING_CANCEL_CAP = 64


def _pickle_exc(exc: BaseException) -> bytes | None:
    """Round-trippable pickle of an exception, or ``None``.

    The coordinator re-raises the original type when it can (fault
    injection and cancellation tests depend on the type surviving the
    wire); anything that cannot round-trip degrades to a text reply.
    """
    try:
        data = pickle.dumps(exc)
        pickle.loads(data)
        return data
    except Exception:
        return None


class WorkerHost:
    """One worker host process: framed protocol server over a local catalog.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction. The host is usable in-process (tests bind it on a
    background thread via :meth:`start`) or as a dedicated process
    (:func:`worker_serve`); only the dedicated entry opts into real
    ``host_kill`` SIGKILLs — in-process hosts degrade injected kills to a
    transient raise, so a test process never shoots itself.
    """

    def __init__(self, catalog_root, host: str = "127.0.0.1", port: int = 0):
        self.catalog = GraphCatalog(catalog_root)
        #: Scoped wire accounting: this host's reply frames count here (and
        #: in its own registry), never in the coordinator's accumulator.
        self.wire = frame.WireStats(scope="worker_host")
        # One cancel flag + heartbeat slot, created by *this* process so the
        # segment names carry this host's pid — the janitor contract.
        self._flags = shm.CancelFlags.create(1) if shm.shm_available() else None
        self._heartbeats = (shm.HeartbeatSlots.create(1)
                            if shm.shm_available() else None)
        self._graph_cache: dict = {}
        self._programs: dict[str, object] = {}
        self._lock = threading.Lock()
        self._active_job: str | None = None
        self._pending_cancels: list[str] = []
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerHost":
        """Serve on a background thread (in-process deployments/tests)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="worker-host-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept-loop: one thread per connection, until :meth:`close`."""
        self._listener.settimeout(0.5)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            t = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="worker-host-conn", daemon=True,
            )
            t.start()
            self._threads.append(t)
            self._threads = [x for x in self._threads if x.is_alive()]

    def close(self) -> None:
        """Stop serving and release every shm segment this host created."""
        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=1.0)
        if self._flags is not None:
            self._flags.close()
        if self._heartbeats is not None:
            self._heartbeats.close()
        self.catalog.close_shared()

    def __enter__(self) -> "WorkerHost":
        if self._accept_thread is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection loop ----------------------------------------------------

    def _serve_conn(self, sock: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    msg = frame.recv_frame(sock)
                except (EOFError, OSError, ValueError):
                    return
                try:
                    reply = self._dispatch(msg)
                except Exception as exc:  # must never kill the connection
                    detail = "".join(traceback.format_exception_only(
                        type(exc), exc)).strip()
                    reply = {"ok": False, "error": detail}
                try:
                    frame.send_frame(sock, reply, stats=self.wire)
                except OSError:
                    return
                if msg.get("op") == "shutdown":
                    self._stop.set()
                    try:
                        self._listener.close()
                    except OSError:  # pragma: no cover
                        pass
                    return
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "hello":
            return {"ok": True, "pid": os.getpid(),
                    "shm": shm.shm_available(),
                    "graphs": len(self.catalog.keys())}
        if op == "install":
            return self._op_install(msg)
        if op == "task":
            return self._op_task(msg)
        if op == "run_job":
            return self._op_run_job(msg)
        if op == "ensure_graph":
            self.catalog.refresh()
            return {"ok": True, "have": msg["key"] in self.catalog}
        if op == "put_graph":
            key = self.catalog.put_bytes(msg["data"], name=msg.get("name", ""))
            return {"ok": True, "key": key}
        if op == "put_delta":
            # Delta provisioning: re-applied against the locally-held
            # parent and re-keyed from the actual arrays (an unknown
            # parent or corrupt delta raises → generic error reply → the
            # coordinator falls back to full put_graph).
            key = self.catalog.put_delta_bytes(
                msg["parent"], msg["data"], name=msg.get("name", "")
            )
            return {"ok": True, "key": key}
        if op == "cancel":
            return self._op_cancel(msg)
        if op == "ping":
            age = (self._heartbeats.age_seconds(0)
                   if self._heartbeats is not None else None)
            with self._lock:
                busy = self._active_job
            return {"ok": True, "busy": busy, "beat_age": age}
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- BSP task serving (the remote executor's host side) ------------------

    def _op_install(self, msg: dict) -> dict:
        key = msg["key"]
        kind, body = msg["wire"]
        if kind == "seg":
            try:
                views = shm.attach_arrays(body)
            except (FileNotFoundError, OSError):
                # Not co-located (or the segment is gone): ask for bytes.
                return {"ok": False, "need_payload": True}
            prog = pickle.loads(views["payload"])
            del views  # drops the adopted mapping with the last view
        else:
            prog = pickle.loads(body)
        with self._lock:
            self._programs.pop(key, None)
            self._programs[key] = prog
            while len(self._programs) > _PROGRAM_CAP:
                self._programs.pop(next(iter(self._programs)))
        return {"ok": True}

    def _op_task(self, msg: dict) -> dict:
        with self._lock:
            prog = self._programs.get(key := msg["key"])
        if prog is None:
            return {"ok": False, "need_install": True, "key": key}
        try:
            triple = run_task(prog, tuple(msg["task"]))
        except BaseException as exc:
            detail = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
            return {"ok": False, "error": detail, "exc": _pickle_exc(exc)}
        return {"ok": True, "triple": triple}

    # -- whole-job serving (the remote dispatcher's host side) ---------------

    def _op_run_job(self, msg: dict) -> dict:
        spec = msg["spec"]
        job_id = spec.get("job_id", "")
        with self._lock:
            if job_id and job_id in self._pending_cancels:
                # Cancelled before it ever started here: honor it without
                # running a single superstep.
                self._pending_cancels.remove(job_id)
                return {"ok": True, "out": {"state": "CANCELLED",
                                            "error": None, "passes": []}}
            if self._flags is not None:
                self._flags.clear(0)
            self._active_job = job_id
        try:
            out = _run_spec(spec, self._flags, 0, self.catalog,
                            self._graph_cache, heartbeats=self._heartbeats)
        finally:
            with self._lock:
                self._active_job = None
                if self._flags is not None:
                    self._flags.clear(0)
        return {"ok": True, "out": out}

    def _op_cancel(self, msg: dict) -> dict:
        job_id = msg["job_id"]
        with self._lock:
            if self._active_job == job_id:
                if self._flags is not None:
                    self._flags.set(0)
                return {"ok": True, "state": "signalled"}
            if job_id not in self._pending_cancels:
                self._pending_cancels.append(job_id)
                while len(self._pending_cancels) > _PENDING_CANCEL_CAP:
                    self._pending_cancels.pop(0)
        return {"ok": True, "state": "pending"}


class RemoteHostPool(SupervisedPool):
    """Coordinator-side scheduling and supervision over N worker hosts.

    The :class:`ForkedWorkerPool` contract, lifted over sockets: ``run``
    blocks a dispatcher thread until a host finishes (or dies under) the
    job, ``cancel`` steers a running job, ``circuit_open`` reports whether
    every host is in its down cooldown (the engine then degrades to
    in-process dispatch), ``supervisor_stats`` feeds ``/healthz``. Unlike
    the forked pool, hosts are *not* owned processes: a dead host is
    marked down and retried after ``host_cooldown`` seconds rather than
    respawned.

    Placement prefers the job graph's home shard
    (:func:`~repro.jobs.catalog.shard_of` over the host list) so each
    host's partition-local NPZ catalog stays hot, stealing any free host
    when the home is busy or down — locality is a preference, liveness is
    a guarantee.
    """

    def __init__(self, hosts, catalog, hang_timeout: float | None = None,
                 connect_timeout: float = 10.0, host_cooldown: float = 5.0,
                 metrics=None):
        addrs = frame.parse_hosts(hosts)
        if not addrs:
            raise ValueError(
                "remote dispatcher requires at least one worker host "
                "(hosts='host:port,...')"
            )
        self.catalog = catalog
        self.connect_timeout = connect_timeout
        self.host_cooldown = host_cooldown
        self._init_supervision("remote", hang_timeout=hang_timeout,
                               metrics=metrics)
        #: Scoped wire accounting: every frame this pool sends (dispatch,
        #: provisioning, control pings) counts here instead of the
        #: process-wide :data:`repro.bsp.transport.WIRE`, so a coordinator
        #: and an in-process degrade path no longer double-count.
        self.wire = frame.WireStats(registry=metrics, scope="remote_pool")
        self._cond = threading.Condition()
        self._hosts = [
            {"index": i, "addr": addr, "conn": None, "control": None,
             "busy": False, "down_until": 0.0, "active_job": None,
             "jobs": 0, "failures": 0}
            for i, addr in enumerate(addrs)
        ]
        self.total_dispatched = 0
        self.total_host_failures = 0
        #: Provisioning telemetry: how graphs reached the hosts, and how
        #: many bytes crossed the wire each way (the delta path ships
        #: kilobytes where the full path ships the whole NPZ).
        self.graphs_shipped_full = 0
        self.graphs_shipped_delta = 0
        self.full_bytes_shipped = 0
        self.delta_bytes_shipped = 0
        self._closed = False

    # -- host bookkeeping ---------------------------------------------------

    def _acquire(self, preferred: int):
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("RemoteHostPool is closed")
                now = time.monotonic()
                up = [h for h in self._hosts if now >= h["down_until"]]
                if not up:
                    raise TransientJobError(
                        "all worker hosts are down (cooldown); "
                        "job may be retried"
                    )
                free = [h for h in up if not h["busy"]]
                if free:
                    chosen = next(
                        (h for h in free if h["index"] == preferred), free[0]
                    )
                    chosen["busy"] = True
                    return chosen
                self._cond.wait(timeout=0.25)

    def _release(self, host: dict) -> None:
        with self._cond:
            host["busy"] = False
            host["active_job"] = None
            self._cond.notify_all()

    def _mark_down(self, host: dict) -> None:
        with self._cond:
            host["failures"] += 1
            host["down_until"] = time.monotonic() + self.host_cooldown
            for attr in ("conn", "control"):
                if host[attr] is not None:
                    host[attr].close()
                    host[attr] = None
            self.total_host_failures += 1
            self._cond.notify_all()
        self._m_respawns.inc()

    def _connect(self, host: dict, control: bool = False):
        attr = "control" if control else "conn"
        if host[attr] is None:
            host[attr] = frame.FrameConnection.open(
                host["addr"], self.connect_timeout, stats=self.wire)
        return host[attr]

    def _host_name(self, host: dict) -> str:
        return f"{host['addr'][0]}:{host['addr'][1]}"

    # -- the dispatcher-facing surface --------------------------------------

    def run(self, spec: dict) -> dict:
        """Run one job spec on some host; :class:`TransientJobError` on
        host death/hang (the host is cooled down first, so the engine's
        retry lands elsewhere)."""
        preferred = shard_of(spec["graph_key"], len(self._hosts))
        host = self._acquire(preferred)
        try:
            try:
                conn = self._connect(host)
                self._provision(host, conn, spec["graph_key"])
                host["active_job"] = spec.get("job_id")
                host["jobs"] += 1
                self.total_dispatched += 1
                conn.send({"op": "run_job", "spec": spec})
                reply = self._await_reply(host, conn, spec)
            except (EOFError, OSError) as exc:
                self._mark_down(host)
                raise TransientJobError(
                    f"worker host {self._host_name(host)} died mid-job "
                    f"({exc}); host cooled down, job may be re-dispatched"
                ) from exc
            if not reply.get("ok"):
                raise TransientJobError(
                    f"worker host {self._host_name(host)} rejected job: "
                    f"{reply.get('error')}"
                )
            return reply["out"]
        finally:
            self._release(host)

    def _provision(self, host: dict, conn, key: str) -> None:
        """Make sure the host's local catalog shard holds the job's graph.

        A graph minted by a delta chain ships as the delta NPZ whenever
        the host already holds the parent hash — kilobytes instead of the
        full graph archive — falling back to full provisioning when the
        parent is absent or the host cannot re-key the delta to the
        expected hash. Either path ends in the same verified content key:
        the host re-applies and re-keys, so transfer corruption cannot
        poison a shard regardless of how the bytes arrived.
        """
        reply = conn.request({"op": "ensure_graph", "key": key},
                             timeout=self.connect_timeout)
        if reply.get("have"):
            return
        try:
            parent, delta_data = self.catalog.export_delta_bytes(key)
        except KeyError:
            parent, delta_data = None, None
        if parent is not None:
            reply = conn.request({"op": "ensure_graph", "key": parent},
                                 timeout=self.connect_timeout)
            if reply.get("have"):
                reply = conn.request(
                    {"op": "put_delta", "parent": parent,
                     "data": delta_data, "key": key},
                    timeout=max(self.connect_timeout, 60.0))
                if reply.get("ok") and reply.get("key") == key:
                    with self._cond:
                        self.graphs_shipped_delta += 1
                        self.delta_bytes_shipped += len(delta_data)
                    return
                # A mismatched re-key or host-side apply failure falls
                # through to full provisioning rather than failing the job.
        data = self.catalog.export_bytes(key)
        reply = conn.request({"op": "put_graph", "data": data, "key": key},
                             timeout=max(self.connect_timeout, 60.0))
        got = reply.get("key")
        if not reply.get("ok") or got != key:
            raise TransientJobError(
                f"graph provisioning to {self._host_name(host)} failed: "
                f"sent {key}, host keyed {got!r} ({reply.get('error')})"
            )
        with self._cond:
            self.graphs_shipped_full += 1
            self.full_bytes_shipped += len(data)

    def _await_reply(self, host: dict, conn, spec: dict) -> dict:
        """Block for the job reply, watching host liveness via pings.

        The data connection is silent for the whole job, so liveness comes
        from a *control* connection: with ``hang_timeout`` armed, the
        host-side heartbeat age (stamped at every superstep boundary) is
        polled and a silent host is declared hung — the remote analogue of
        the forked pool's heartbeat kill, except the coordinator cannot
        SIGKILL across machines, so the host is abandoned to its cooldown
        instead.
        """
        waited = 0.0
        poll = 2.0
        while True:
            try:
                return conn.recv(timeout=poll)
            except socket.timeout:
                waited += poll
            if self.hang_timeout is None:
                continue
            try:
                pong = self._connect(host, control=True).request(
                    {"op": "ping"}, timeout=self.connect_timeout)
            except (EOFError, OSError) as exc:
                raise EOFError(f"control ping failed: {exc}") from exc
            age = pong.get("beat_age")
            if age is not None and age > self.hang_timeout:
                self.record_hung_kill()
                self._mark_down(host)
                raise TransientJobError(
                    f"worker host {self._host_name(host)} hung (no "
                    f"heartbeat for {age:.1f}s > {self.hang_timeout:g}s); "
                    "host cooled down, job may be re-dispatched"
                )

    def cancel(self, job_id: str) -> None:
        """Steer a cancel to the host running ``job_id`` (best-effort).

        Falls back to telling every reachable host: a job between dispatch
        and ``run_job`` lands in the hosts' bounded pending-cancel sets,
        closing the cancel-before-start race.
        """
        with self._cond:
            targets = [h for h in self._hosts
                       if h["active_job"] == job_id] or list(self._hosts)
        for host in targets:
            try:
                self._connect(host, control=True).request(
                    {"op": "cancel", "job_id": job_id},
                    timeout=self.connect_timeout)
            except (EOFError, OSError):
                continue

    def circuit_open(self) -> bool:
        """True while every host is in its down cooldown."""
        now = time.monotonic()
        with self._cond:
            return all(now < h["down_until"] for h in self._hosts)

    def circuit_reset_seconds(self) -> float:
        """Seconds until the *first* host leaves cooldown (0 when any is up)."""
        now = time.monotonic()
        with self._cond:
            if any(now >= h["down_until"] for h in self._hosts):
                return 0.0
            return max(0.0, min(h["down_until"] for h in self._hosts) - now)

    def supervisor_stats(self) -> dict:
        now = time.monotonic()
        with self._cond:
            stats = {
                "hosts": len(self._hosts),
                "up": sum(1 for h in self._hosts if now >= h["down_until"]),
                "busy": sum(1 for h in self._hosts if h["busy"]),
                "dispatched": self.total_dispatched,
                "host_failures": self.total_host_failures,
                "provisioning": {
                    "full": self.graphs_shipped_full,
                    "delta": self.graphs_shipped_delta,
                    "full_bytes": self.full_bytes_shipped,
                    "delta_bytes": self.delta_bytes_shipped,
                },
                "per_host": [
                    {"addr": self._host_name(h), "jobs": h["jobs"],
                     "failures": h["failures"], "busy": h["busy"],
                     "down": now < h["down_until"]}
                    for h in self._hosts
                ],
            }
        # Outside the lock: the base block re-takes it via circuit_open().
        stats.update(self.supervisor_base())
        return stats

    def close(self) -> None:
        """Close every connection (the hosts themselves are not owned)."""
        with self._cond:
            self._closed = True
            for host in self._hosts:
                for attr in ("conn", "control"):
                    if host[attr] is not None:
                        host[attr].close()
                        host[attr] = None
            self._cond.notify_all()

    def __enter__(self) -> "RemoteHostPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def worker_serve(host: str, port: int, cache_root,
                 port_file: str | None = None) -> None:
    """Run a dedicated worker host until SIGTERM/SIGINT (the CLI entry).

    Marks the process with ``REPRO_FAULT_HOST`` so an armed ``host_kill``
    fault dies for real — the whole point is exercising unclean host death
    — and sweeps stale segments from previously killed processes before
    serving. ``port_file`` (written as ``host port pid``) lets launchers
    bind port 0 and discover the ephemeral port race-free.
    """
    import signal

    os.environ["REPRO_FAULT_HOST"] = str(os.getpid())
    shm.sweep_stale_segments()
    server = WorkerHost(cache_root, host=host, port=port)
    bound_host, bound_port = server.address
    print(f"worker listening on {bound_host}:{bound_port} pid={os.getpid()}",
          flush=True)
    if port_file:
        Path(port_file).write_text(
            f"{bound_host} {bound_port} {os.getpid()}\n")

    def _stop(signum, _frm):
        server.close()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    try:
        server.serve_forever()
    finally:
        server.close()
