"""Phase 2 planning (Alg. 2): the static merge tree over the meta-graph.

Built once, up front, on one machine, from the (small) meta-graph: at every
level a *maximal matching* pairs up partitions, preferring pairs with many
edges between them ("greedy strategy ... prioritizes partitions with high
meta-edge weight", §3.2) so the next Phase-1 run can consume as many
newly-local edges as possible. The pair's parent is the member with the
larger partition id, per the paper's example. Unmatched partitions (odd
count, or isolated meta-vertices in disconnected graphs) carry over to the
next level; if a level produces no matches at all while several partitions
remain (fully disconnected meta-graph) we force weight-0 pairings so the
tree always terminates with a single root.

The ``policy`` knob ("greedy" vs "random") exists for the matching ablation
benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.metagraph import MetaGraph

__all__ = ["Merge", "MergeTree", "build_merge_tree"]


@dataclass(frozen=True)
class Merge:
    """One pairwise merge: ``child`` is absorbed into ``parent`` at ``level``."""

    level: int
    child: int
    parent: int
    #: Meta-edge weight between the two groups when matched (diagnostics).
    weight: int


@dataclass
class MergeTree:
    """The full merge plan.

    ``levels[l]`` holds the merges that happen *after* Phase 1 ran at level
    ``l``, producing the partitions of level ``l+1``. The number of Phase-1
    supersteps is therefore ``len(levels) + 1`` — the paper's
    ``ceil(log2 n) + 1`` coordination cost for ``n`` initial partitions.
    """

    n_parts: int
    levels: list[list[Merge]] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        """Number of Phase-1 levels (= supersteps), ``len(levels) + 1``."""
        return len(self.levels) + 1

    @property
    def root(self) -> int:
        """The single surviving partition id."""
        alive = set(range(self.n_parts))
        for level in self.levels:
            for m in level:
                alive.discard(m.child)
        assert len(alive) == 1, "merge tree must end with one root"
        return next(iter(alive))

    def parents_at(self, level: int) -> dict[int, int]:
        """child -> parent map for merges at ``level`` (empty past the end)."""
        if level >= len(self.levels):
            return {}
        return {m.child: m.parent for m in self.levels[level]}

    def alive_at(self, level: int) -> list[int]:
        """Partition ids that exist when Phase 1 runs at ``level``."""
        alive = set(range(self.n_parts))
        for l in range(min(level, len(self.levels))):
            for m in self.levels[l]:
                alive.discard(m.child)
        return sorted(alive)

    def merge_level_of(self, i: int, j: int) -> int:
        """The level at whose *end* partitions ``i`` and ``j``'s groups merge.

        Remote edges between the groups become local before Phase 1 at
        ``merge_level_of(i, j) + 1``. Returns ``len(levels)`` if they never
        merge (only possible for ids outside the tree).
        """
        group = {p: p for p in range(self.n_parts)}
        if group.get(i) is None or group.get(j) is None:
            raise ValueError("partition id out of range")
        gi, gj = i, j
        for l, level in enumerate(self.levels):
            remap = {m.child: m.parent for m in level}
            gi = remap.get(gi, gi)
            gj = remap.get(gj, gj)
            if gi == gj:
                return l
        return len(self.levels)


def _greedy_matching(mg: MetaGraph) -> list[tuple[int, int, int]]:
    """Max-weight-first maximal matching; returns ``(i, j, weight)`` picks."""
    used: set[int] = set()
    picks: list[tuple[int, int, int]] = []
    for w, i, j in mg.edges_sorted():
        if i in used or j in used:
            continue
        used.add(i)
        used.add(j)
        picks.append((i, j, w))
    return picks


def _random_matching(mg: MetaGraph, rng: random.Random) -> list[tuple[int, int, int]]:
    """Uniformly random maximal matching (ablation baseline)."""
    edges = [(i, j, w) for (i, j), w in mg.weights.items()]
    rng.shuffle(edges)
    used: set[int] = set()
    picks: list[tuple[int, int, int]] = []
    for i, j, w in edges:
        if i in used or j in used:
            continue
        used.add(i)
        used.add(j)
        picks.append((i, j, w))
    return picks


def build_merge_tree(
    mg: MetaGraph, policy: str = "greedy", seed: int = 0
) -> MergeTree:
    """Run Alg. 2 on the level-0 meta-graph.

    Parameters
    ----------
    mg:
        Meta-graph of the initial partitioned graph.
    policy:
        ``"greedy"`` (paper) or ``"random"`` (ablation).
    seed:
        Seed for the random policy.
    """
    if policy not in ("greedy", "random"):
        raise ValueError(f"unknown matching policy {policy!r}")
    rng = random.Random(seed)
    tree = MergeTree(n_parts=len(mg.vertices))
    cur = mg
    level = 0
    while len(cur.vertices) > 1:
        picks = (
            _greedy_matching(cur) if policy == "greedy" else _random_matching(cur, rng)
        )
        matched = {v for i, j, _ in picks for v in (i, j)}
        leftovers = [v for v in cur.vertices if v not in matched]
        # Alg. 2's matching covers *all* meta-vertices (the paper builds a
        # full binary tree, height ceil(log2 n)+1): pair any leftover
        # vertices with weight-0 merges; at most one vertex (odd count)
        # carries over to the next level.
        for k in range(0, len(leftovers) - 1, 2):
            picks.append((leftovers[k], leftovers[k + 1], 0))
        merges = []
        parent_of: dict[int, int] = {}
        for i, j, w in picks:
            child, parent = (i, j) if i < j else (j, i)  # parent = larger id
            merges.append(Merge(level=level, child=child, parent=parent, weight=w))
            parent_of[child] = parent
        tree.levels.append(merges)
        cur = cur.merged([(m.child, m.parent) for m in merges], parent_of)
        level += 1
    return tree
