"""Phase 2 runtime: partition state and pairwise merging across levels.

A live partition between Phase-1 runs is exactly what the paper says remains
in memory after Phase 1 (§3.2): the coarse OB-pair edges just produced, the
boundary vertices, and the remote half-edges it holds (which of those it
holds depends on the §5 strategy). :func:`merge_states` implements the
child→parent absorption: remote edges between the two groups become local
raw edges, their endpoints' remote degrees drop (possibly turning boundary
vertices internal), and both sides' coarse edges become the local edge set
for the next Phase-1 run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.partition import PartitionView
from .phase1 import EDGE_COARSE, EDGE_RAW, LocalEdge

__all__ = ["PartitionState", "state_from_view", "merge_states", "LONGS"]


class LONGS:
    """Longs-per-record accounting constants (§4.3's Int64 state metric).

    The paper counts 8-byte Long values of partition state *as loaded for a
    Phase-1 run* (Fig. 8 measures the state "maintained as part of the
    partitions' state at different levels", which is why its last-level
    average is ~50% of the level-0 cumulative: the root holds all
    newly-localized edges). We charge:

    * ``VERTEX`` = 1 per live vertex (id; the OB/EB/internal type packs into
      spare bits),
    * ``LOCAL_DIRECTED`` = 1 per *directed* local edge — an undirected local
      edge costs 2, matching the paper's §5 observation that the bi-directed
      representation "doubles the memory usage",
    * ``REMOTE`` = 2 per held remote half-edge (src id + dst id); dropping
      one direction (the §5 dedup) therefore halves remote-edge state,
    * ``COARSE`` = 3 per coarse OB-pair edge (two endpoints + fragment id),
    * ``PATHMAP`` = 4 per pathMap entry (path id, type, src, dst).
    """

    VERTEX = 1
    LOCAL_DIRECTED = 1
    BOUNDARY = 2  # resident (between-levels) cost of a boundary vertex
    REMOTE = 2
    COARSE = 3
    PATHMAP = 4


def phase1_state_longs(
    n_live_vertices: int,
    n_raw_local: int,
    n_coarse_local: int,
    n_held_rows: int,
    n_pathmap_entries: int,
) -> int:
    """Longs of partition state at the *start* of a Phase-1 run (Fig. 8 unit).

    ``n_raw_local`` counts undirected raw local edges (charged as two
    directed Longs each); ``n_coarse_local`` counts coarse OB-pair edges.
    """
    return (
        LONGS.VERTEX * n_live_vertices
        + 2 * LONGS.LOCAL_DIRECTED * n_raw_local
        + LONGS.COARSE * n_coarse_local
        + LONGS.REMOTE * n_held_rows
        + LONGS.PATHMAP * n_pathmap_entries
    )


@dataclass
class PartitionState:
    """In-memory state of one live (possibly merged) partition.

    Attributes
    ----------
    pid:
        Current partition id (a parent keeps its id across merges).
    level:
        The level whose Phase 1 most recently ran on this state.
    coarse:
        Coarse OB-pair edges ``(src, dst, fid)`` produced by that run; they
        are the only unconsumed local objects.
    held:
        Remote half-edge rows ``(src, dst, eid, dst_pid)`` resident in this
        partition's memory (strategy-dependent subset of the true cut).
    remote_deg:
        *True* remote half-edge degree per vertex (storage-independent; what
        OB/EB classification needs). Vertices with degree 0 are dropped.
    n_pathmap_entries:
        PathMap entries retained (for the Longs metric).
    member_leaves:
        Original leaf partition ids merged into this state (deferred
        shipments are keyed on them).
    """

    pid: int
    level: int
    coarse: list[tuple[int, int, int]] = field(default_factory=list)
    held: np.ndarray = field(
        default_factory=lambda: np.empty((0, 4), dtype=np.int64)
    )
    remote_deg: dict[int, int] = field(default_factory=dict)
    n_pathmap_entries: int = 0
    member_leaves: tuple[int, ...] = ()
    #: Raw-edge counts of the coarse fragments in ``coarse`` (fid → n_edges).
    #: Travels with the state so an out-of-process Phase-1 run can weigh
    #: coarse items without reaching back into the parent's fragment store.
    coarse_meta: dict[int, int] = field(default_factory=dict)

    def state_longs(self) -> int:
        """Longs of retained state (Fig. 8's unit), per :class:`LONGS`."""
        n_boundary = sum(1 for d in self.remote_deg.values() if d > 0)
        return (
            LONGS.BOUNDARY * n_boundary
            + LONGS.REMOTE * int(self.held.shape[0])
            + LONGS.COARSE * len(self.coarse)
            + LONGS.PATHMAP * self.n_pathmap_entries
        )

    def census(self) -> dict[str, int]:
        """Live-object counts for Fig. 9 (post-Phase-1 snapshot)."""
        return {
            "n_boundary": sum(1 for d in self.remote_deg.values() if d > 0),
            "n_remote_half_edges": int(self.held.shape[0]),
            "n_coarse_edges": len(self.coarse),
        }


def state_from_view(
    view: PartitionView, held_rows: np.ndarray, member_leaves: tuple[int, ...]
) -> tuple[PartitionState, list[LocalEdge], dict[int, int]]:
    """Level-0 setup: build the initial state and Phase-1 inputs.

    Returns ``(state, local_edges, remote_degree)`` where ``local_edges``
    and ``remote_degree`` feed :func:`repro.core.phase1.run_phase1`.
    ``held_rows`` comes from the strategy's
    :func:`~repro.core.improvements.plan_remote_placement`.
    """
    remote_deg: dict[int, int] = {}
    for src in view.remote[:, 0].tolist():
        remote_deg[src] = remote_deg.get(src, 0) + 1
    state = PartitionState(
        pid=view.pid,
        level=0,
        held=held_rows,
        remote_deg=remote_deg,
        member_leaves=member_leaves,
    )
    return state, [], remote_deg


def local_edges_level0(view: PartitionView, edge_u, edge_v) -> list[LocalEdge]:
    """The raw local edges of a level-0 partition as Phase-1 input tuples."""
    eids = view.local_eids
    return [
        (int(edge_u[e]), int(edge_v[e]), EDGE_RAW, int(e)) for e in eids.tolist()
    ]


def merge_states(
    parent: PartitionState,
    child: PartitionState,
    in_group: set[int],
    extra_rows: np.ndarray | None = None,
) -> tuple[PartitionState, list[LocalEdge], dict[int, int]]:
    """Absorb ``child`` into ``parent`` (one merge-tree edge).

    Parameters
    ----------
    parent, child:
        Post-Phase-1 states of the two partitions being merged.
    in_group:
        The set of *original leaf* partition ids in the merged group; held
        rows whose destination leaf lies inside become local edges.
    extra_rows:
        Additional half-edge rows shipped in by the deferred strategy (they
        are all internal to the group by construction).

    Returns
    -------
    (state, local_edges, remote_degree):
        The merged state (Phase 1 not yet run: its ``coarse`` is empty and
        ``level`` advanced) plus the Phase-1 inputs: local edges = both
        sides' coarse OB-pairs + newly-localized raw edges; remote degrees
        reflect the consumed cut.
    """
    rows_list = [parent.held, child.held]
    if extra_rows is not None and extra_rows.size:
        rows_list.append(extra_rows)
    rows = np.concatenate([r for r in rows_list if r.size], axis=0) if any(
        r.size for r in rows_list
    ) else np.empty((0, 4), dtype=np.int64)

    if rows.size:
        internal_mask = np.fromiter(
            (int(d) in in_group for d in rows[:, 3]), count=rows.shape[0], dtype=bool
        )
        internal = rows[internal_mask]
        external = rows[~internal_mask]
    else:
        internal = external = rows.reshape(0, 4)

    # One local edge per unique eid (under eager placement both directed
    # copies of a cut edge meet here; under dedup exactly one exists).
    local_edges: list[LocalEdge] = []
    remote_deg = dict(parent.remote_deg)
    for v, d in child.remote_deg.items():
        remote_deg[v] = remote_deg.get(v, 0) + d
    if internal.size:
        _, first = np.unique(internal[:, 2], return_index=True)
        for i in first.tolist():
            src, dst, eid, _ = internal[i].tolist()
            local_edges.append((int(src), int(dst), EDGE_RAW, int(eid)))
            for endpoint in (int(src), int(dst)):
                remote_deg[endpoint] = remote_deg.get(endpoint, 0) - 1
    remote_deg = {v: d for v, d in remote_deg.items() if d > 0}

    for src, dst, fid in parent.coarse:
        local_edges.append((src, dst, EDGE_COARSE, fid))
    for src, dst, fid in child.coarse:
        local_edges.append((src, dst, EDGE_COARSE, fid))

    state = PartitionState(
        pid=parent.pid,
        level=parent.level + 1,
        coarse=[],
        held=external,
        remote_deg=remote_deg,
        n_pathmap_entries=parent.n_pathmap_entries + child.n_pathmap_entries,
        member_leaves=tuple(sorted(set(parent.member_leaves) | set(child.member_leaves))),
        coarse_meta={**parent.coarse_meta, **child.coarse_meta},
    )
    return state, local_edges, remote_deg
