"""Phase 2 runtime: partition state and pairwise merging across levels.

A live partition between Phase-1 runs is exactly what the paper says remains
in memory after Phase 1 (§3.2): the coarse OB-pair edges just produced, the
boundary vertices, and the remote half-edges it holds (which of those it
holds depends on the §5 strategy). :func:`merge_states` implements the
child→parent absorption: remote edges between the two groups become local
raw edges, their endpoints' remote degrees drop (possibly turning boundary
vertices internal), and both sides' coarse edges become the local edge set
for the next Phase-1 run.

Everything a state carries is a packed ``int64`` array — the **CoarseTable**
``(k, 4)`` of ``(src, dst, fid, n_edges)`` rows, the held half-edge rows
``(r, 4)``, and the remote-degree table ``(b, 2)`` — so the child→parent
merge is pure array algebra (``np.isin`` on the destination-leaf column
replaces the old per-row generator) and a pickled state is a handful of raw
buffers, which is what the process executor ships across its worker
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.partition import PartitionView
from .phase1 import (
    EDGE_COARSE,
    EDGE_RAW,
    empty_edge_table,
    remote_deg_table,
)

__all__ = [
    "PartitionState",
    "state_from_view",
    "merge_states",
    "local_edges_level0",
    "as_coarse",
    "empty_coarse",
    "LONGS",
]


class LONGS:
    """Longs-per-record accounting constants (§4.3's Int64 state metric).

    The paper counts 8-byte Long values of partition state *as loaded for a
    Phase-1 run* (Fig. 8 measures the state "maintained as part of the
    partitions' state at different levels", which is why its last-level
    average is ~50% of the level-0 cumulative: the root holds all
    newly-localized edges). We charge:

    * ``VERTEX`` = 1 per live vertex (id; the OB/EB/internal type packs into
      spare bits),
    * ``LOCAL_DIRECTED`` = 1 per *directed* local edge — an undirected local
      edge costs 2, matching the paper's §5 observation that the bi-directed
      representation "doubles the memory usage",
    * ``REMOTE`` = 2 per held remote half-edge (src id + dst id); dropping
      one direction (the §5 dedup) therefore halves remote-edge state,
    * ``COARSE`` = 3 per coarse OB-pair edge (two endpoints + fragment id),
    * ``PATHMAP`` = 4 per pathMap entry (path id, type, src, dst).
    """

    VERTEX = 1
    LOCAL_DIRECTED = 1
    BOUNDARY = 2  # resident (between-levels) cost of a boundary vertex
    REMOTE = 2
    COARSE = 3
    PATHMAP = 4


def phase1_state_longs(
    n_live_vertices: int,
    n_raw_local: int,
    n_coarse_local: int,
    n_held_rows: int,
    n_pathmap_entries: int,
) -> int:
    """Longs of partition state at the *start* of a Phase-1 run (Fig. 8 unit).

    ``n_raw_local`` counts undirected raw local edges (charged as two
    directed Longs each); ``n_coarse_local`` counts coarse OB-pair edges.
    """
    return (
        LONGS.VERTEX * n_live_vertices
        + 2 * LONGS.LOCAL_DIRECTED * n_raw_local
        + LONGS.COARSE * n_coarse_local
        + LONGS.REMOTE * n_held_rows
        + LONGS.PATHMAP * n_pathmap_entries
    )


def empty_coarse() -> np.ndarray:
    """A zero-row CoarseTable."""
    return np.empty((0, 4), dtype=np.int64)


def as_coarse(coarse) -> np.ndarray:
    """Normalize to the ``(k, 4) int64`` CoarseTable ``(src, dst, fid, n_edges)``.

    Accepts a CoarseTable, a legacy ``(k, 3)`` array or list of
    ``(src, dst, fid)`` tuples (``n_edges`` filled with 0), or ``(..., 4)``
    tuples.
    """
    if not isinstance(coarse, np.ndarray):
        if not coarse:
            return empty_coarse()
        coarse = np.array(coarse, dtype=np.int64)
    coarse = coarse.astype(np.int64, copy=False)
    if coarse.ndim != 2 or coarse.shape[1] not in (3, 4):
        raise ValueError(f"CoarseTable must be (k, 3|4); got {coarse.shape}")
    if coarse.shape[1] == 3:
        out = np.zeros((coarse.shape[0], 4), dtype=np.int64)
        out[:, :3] = coarse
        return out
    return coarse


@dataclass
class PartitionState:
    """In-memory state of one live (possibly merged) partition.

    Attributes
    ----------
    pid:
        Current partition id (a parent keeps its id across merges).
    level:
        The level whose Phase 1 most recently ran on this state.
    coarse:
        CoarseTable of the OB-pair edges produced by that run — rows
        ``(src, dst, fid, n_edges)``; they are the only unconsumed local
        objects. The ``n_edges`` column travels with the state so an
        out-of-process Phase-1 run can weigh coarse items without reaching
        back into the parent's fragment store.
    held:
        Remote half-edge rows ``(src, dst, eid, dst_pid)`` resident in this
        partition's memory (strategy-dependent subset of the true cut).
    remote_deg:
        *True* remote half-edge degree per vertex as a sorted ``(b, 2)``
        table of ``(vertex, degree > 0)`` rows (storage-independent; what
        OB/EB classification needs). Vertices with degree 0 are dropped.
    n_pathmap_entries:
        PathMap entries retained (for the Longs metric).
    member_leaves:
        Original leaf partition ids merged into this state (deferred
        shipments are keyed on them).
    """

    pid: int
    level: int
    coarse: np.ndarray = field(default_factory=empty_coarse)
    held: np.ndarray = field(
        default_factory=lambda: np.empty((0, 4), dtype=np.int64)
    )
    remote_deg: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    n_pathmap_entries: int = 0
    member_leaves: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        # Normalize the legacy forms (tuple lists / degree dicts) once at
        # the boundary; everything downstream assumes packed arrays.
        self.coarse = as_coarse(self.coarse)
        self.remote_deg = remote_deg_table(self.remote_deg)

    def known_coarse_edges(self) -> dict[int, int]:
        """``fid -> n_edges`` for the coarse edges (Phase-1 batch metadata)."""
        return dict(
            zip(self.coarse[:, 2].tolist(), self.coarse[:, 3].tolist())
        )

    def state_longs(self) -> int:
        """Longs of retained state (Fig. 8's unit), per :class:`LONGS`."""
        return (
            LONGS.BOUNDARY * int(self.remote_deg.shape[0])
            + LONGS.REMOTE * int(self.held.shape[0])
            + LONGS.COARSE * int(self.coarse.shape[0])
            + LONGS.PATHMAP * self.n_pathmap_entries
        )

    def census(self) -> dict[str, int]:
        """Live-object counts for Fig. 9 (post-Phase-1 snapshot)."""
        return {
            "n_boundary": int(self.remote_deg.shape[0]),
            "n_remote_half_edges": int(self.held.shape[0]),
            "n_coarse_edges": int(self.coarse.shape[0]),
        }


def _remote_deg_from_rows(held_rows: np.ndarray) -> np.ndarray:
    """Remote-degree table implied by held half-edge rows (src column)."""
    if held_rows.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    verts, counts = np.unique(held_rows[:, 0], return_counts=True)
    return np.stack((verts, counts.astype(np.int64)), axis=1)


def state_from_view(
    pid: int | PartitionView,
    remote_rows: np.ndarray,
    held_rows: np.ndarray | None = None,
    member_leaves: tuple[int, ...] = (),
) -> tuple[PartitionState, np.ndarray, np.ndarray]:
    """Level-0 setup: build the initial state and Phase-1 inputs.

    Takes the partition id plus its true remote half-edge rows (e.g. from
    :meth:`~repro.graph.partition.PartitionedGraph.remote_rows_of`); a full
    :class:`~repro.graph.partition.PartitionView` is also accepted in place
    of ``pid`` for convenience. Returns ``(state, local_edges,
    remote_degree)`` where ``local_edges`` (an empty EdgeTable — level-0
    edges come from :func:`local_edges_level0`) and ``remote_degree`` feed
    :func:`repro.core.phase1.run_phase1`. ``held_rows`` comes from the
    strategy's :func:`~repro.core.improvements.plan_remote_placement`.

    Note the degree table derives from the *true cut* rows, not from
    ``held_rows`` (the strategy-dependent resident subset).
    """
    if isinstance(pid, PartitionView):
        # Legacy call shape (view, held_rows, member_leaves): remap the
        # positionals so old callers keep their meaning.
        view = pid
        pid = view.pid
        if held_rows is not None and not isinstance(held_rows, np.ndarray):
            member_leaves = tuple(held_rows)  # legacy third positional
        held_rows = remote_rows  # legacy second positional
        remote_rows = view.remote
    if held_rows is None:
        held_rows = np.empty((0, 4), dtype=np.int64)
    remote_deg = _remote_deg_from_rows(remote_rows)
    state = PartitionState(
        pid=pid,
        level=0,
        held=held_rows,
        remote_deg=remote_deg,
        member_leaves=member_leaves,
    )
    return state, empty_edge_table(), remote_deg


def local_edges_level0(local_eids, edge_u, edge_v) -> np.ndarray:
    """The raw local edges of a level-0 partition as an EdgeTable.

    ``local_eids`` is the partition's ``L_i`` eid array (a
    :class:`~repro.graph.partition.PartitionView` is also accepted).
    """
    eids = getattr(local_eids, "local_eids", local_eids)
    out = np.empty((eids.size, 4), dtype=np.int64)
    out[:, 0] = edge_u[eids]
    out[:, 1] = edge_v[eids]
    out[:, 2] = EDGE_RAW
    out[:, 3] = eids
    return out


def _coarse_as_edges(coarse: np.ndarray) -> np.ndarray:
    """CoarseTable rows as EdgeTable rows ``(src, dst, EDGE_COARSE, fid)``."""
    out = np.empty((coarse.shape[0], 4), dtype=np.int64)
    out[:, 0] = coarse[:, 0]
    out[:, 1] = coarse[:, 1]
    out[:, 2] = EDGE_COARSE
    out[:, 3] = coarse[:, 2]
    return out


def merge_states(
    parent: PartitionState,
    child: PartitionState,
    in_group: set[int],
    extra_rows: np.ndarray | None = None,
) -> tuple[PartitionState, np.ndarray, np.ndarray]:
    """Absorb ``child`` into ``parent`` (one merge-tree edge).

    Parameters
    ----------
    parent, child:
        Post-Phase-1 states of the two partitions being merged.
    in_group:
        The set of *original leaf* partition ids in the merged group; held
        rows whose destination leaf lies inside become local edges.
    extra_rows:
        Additional half-edge rows shipped in by the deferred strategy (they
        are all internal to the group by construction).

    Returns
    -------
    (state, local_edges, remote_degree):
        The merged state (Phase 1 not yet run: its ``coarse`` is empty and
        ``level`` advanced) plus the Phase-1 inputs: an EdgeTable of both
        sides' coarse OB-pairs + newly-localized raw edges, and the merged
        remote-degree table reflecting the consumed cut.
    """
    rows_list = [parent.held, child.held]
    if extra_rows is not None and extra_rows.size:
        rows_list.append(extra_rows)
    rows = np.concatenate([r for r in rows_list if r.size], axis=0) if any(
        r.size for r in rows_list
    ) else np.empty((0, 4), dtype=np.int64)

    if rows.size:
        # in_group is a handful of leaf pids; an OR of equality scans beats
        # sort-based np.isin on the (large) row count.
        dst_leaf = rows[:, 3]
        internal_mask = np.zeros(rows.shape[0], dtype=bool)
        for member in in_group:
            internal_mask |= dst_leaf == member
        internal = rows[internal_mask]
        external = rows[~internal_mask]
    else:
        internal = external = rows.reshape(0, 4)

    # One local edge per unique eid, in ascending-eid order (under eager
    # placement both directed copies of a cut edge meet here; under dedup
    # exactly one exists).
    if internal.size:
        _, first = np.unique(internal[:, 2], return_index=True)
        localized = internal[first]
        raw_edges = np.empty((localized.shape[0], 4), dtype=np.int64)
        raw_edges[:, 0] = localized[:, 0]
        raw_edges[:, 1] = localized[:, 1]
        raw_edges[:, 2] = EDGE_RAW
        raw_edges[:, 3] = localized[:, 2]
        drops = np.concatenate((localized[:, 0], localized[:, 1]))
    else:
        raw_edges = empty_edge_table()
        drops = np.empty(0, dtype=np.int64)

    # Merged remote degrees: sum both sides, subtract one per endpoint of
    # every localized edge, keep positive rows (all vectorized).
    all_v = np.concatenate(
        (parent.remote_deg[:, 0], child.remote_deg[:, 0], drops)
    )
    all_d = np.concatenate(
        (
            parent.remote_deg[:, 1],
            child.remote_deg[:, 1],
            np.full(drops.size, -1, dtype=np.int64),
        )
    )
    if all_v.size:
        max_v = int(all_v.max())
        if 0 <= int(all_v.min()) and max_v <= max(1 << 16, 8 * all_v.size):
            # Dense vertex-id space (the pipeline's case): one bincount
            # beats the sort inside np.unique.
            deg = np.bincount(all_v, weights=all_d, minlength=max_v + 1)
            verts = np.flatnonzero(deg > 0)
            remote_deg = np.stack(
                (verts, deg[verts].astype(np.int64)), axis=1
            )
        else:
            verts, inverse = np.unique(all_v, return_inverse=True)
            deg = np.bincount(inverse, weights=all_d).astype(np.int64)
            keep = deg > 0
            remote_deg = np.stack((verts[keep], deg[keep]), axis=1)
    else:
        remote_deg = np.empty((0, 2), dtype=np.int64)

    local_edges = np.concatenate(
        (raw_edges, _coarse_as_edges(parent.coarse), _coarse_as_edges(child.coarse))
    )

    state = PartitionState(
        pid=parent.pid,
        level=parent.level + 1,
        coarse=empty_coarse(),
        held=external,
        remote_deg=remote_deg,
        n_pathmap_entries=parent.n_pathmap_entries + child.n_pathmap_entries,
        member_leaves=tuple(sorted(set(parent.member_leaves) | set(child.member_leaves))),
    )
    return state, local_edges, remote_deg
