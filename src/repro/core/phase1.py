"""Phase 1 (Alg. 1): edge-disjoint maximal local paths and cycles.

Given a partition's *live local graph* at some merge level — whose edges are
raw graph edges and/or coarse OB-pair edges produced at lower levels — this
module finds:

1. maximal local paths between odd-degree boundary vertices (Lemma 1), each
   registered as a ``path`` fragment and handed to the next level as a coarse
   OB-pair edge;
2. maximal local cycles from every even-degree boundary vertex (Lemma 2),
   registered as anchored ``cycle`` fragments for Phase-3 splicing;
3. cycles from remaining internal vertices, merged (``mergeInto``) into a
   same-run fragment at a shared *pivot* vertex (Lemma 3); cycles with no
   same-run pivot — possible only when the live local graph is disconnected,
   our generalization beyond the paper's connected-partition assumption —
   are kept as anchored cycles instead.

The traversal uses the classic next-unvisited-edge pointer so the whole run
is ``O(|B| + |I| + |L|)`` per partition, the complexity the paper claims in
§3.5 and that the Fig. 7 benchmark verifies empirically.

The adjacency is built in a flat array layout (vectorized with NumPy): a
sorted vertex-id index, CSR-style half-edge offsets, a flat incident-edge
array and one next-unvisited pointer per vertex — no per-edge dicts or
per-vertex Python lists. The offset/pointer arrays are materialized as flat
Python lists for the walk itself, where scalar indexing is cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvariantViolation
from .pathmap import ITEM_EDGE, ITEM_FRAG, KIND_CYCLE, KIND_PATH, FragmentStore, PathMap

__all__ = ["LocalEdge", "Phase1Stats", "run_phase1", "EDGE_RAW", "EDGE_COARSE"]

#: ``LocalEdge`` kind: a raw graph edge; ``ref`` is the graph edge id.
EDGE_RAW = 0
#: ``LocalEdge`` kind: a coarse OB-pair edge; ``ref`` is the fragment id and
#: the tuple's ``u`` is the fragment's ``src`` (so ``u -> v`` is *forward*).
EDGE_COARSE = 1

#: A live local edge: ``(u, v, kind, ref)``.
LocalEdge = tuple


@dataclass
class Phase1Stats:
    """Input census + outcome counts of one Phase-1 run (Figs. 7 and 9)."""

    n_live_vertices: int = 0
    n_internal: int = 0
    n_ob: int = 0
    n_eb: int = 0
    n_local_edges: int = 0
    n_paths: int = 0
    n_eb_cycles: int = 0
    n_iv_cycles_merged: int = 0
    n_iv_cycles_anchored: int = 0
    n_trivial: int = 0

    @property
    def phase1_cost(self) -> int:
        """The paper's per-partition cost term ``|B| + |I| + |L|``."""
        return self.n_ob + self.n_eb + self.n_internal + self.n_local_edges


def run_phase1(
    pid: int,
    level: int,
    local_edges: list[LocalEdge],
    remote_degree: dict[int, int],
    store: FragmentStore,
    validate: bool = False,
) -> tuple[PathMap, Phase1Stats]:
    """Run Alg. 1 on one partition's live local graph.

    Parameters
    ----------
    pid, level:
        Identity of the partition and merge level (recorded on fragments).
    local_edges:
        The live local edges ``(u, v, kind, ref)``; every one is consumed.
    remote_degree:
        Remote half-edge degree per vertex; vertices with a positive entry
        are *boundary* vertices. Vertices appearing neither here nor on any
        local edge do not exist at this level.
    store:
        Fragment registry that receives the new fragments.
    validate:
        When True, check Lemmas 1–2 on every walk and raise
        :class:`~repro.errors.InvariantViolation` on failure (used by tests;
        costs a few percent).

    Returns
    -------
    (pathmap, stats):
        The partition's :class:`~repro.core.pathmap.PathMap` for this level
        and the census/outcome counters.
    """
    # ---- build the local adjacency (flat-array CSR layout) ----------------
    # Vertex index: sorted unique ids over edge endpoints + boundary
    # vertices; CSR half-edge layout: ``adjacency[offsets[i]:offsets[i+1]]``
    # lists the incident edge ids of local vertex ``i`` in input order (a
    # self loop contributes two consecutive entries, so degree math holds).
    m = len(local_edges)
    eu = np.fromiter((e[0] for e in local_edges), dtype=np.int64, count=m)
    ev = np.fromiter((e[1] for e in local_edges), dtype=np.int64, count=m)
    bnd_ids = np.fromiter(
        (v for v, d in remote_degree.items() if d > 0), dtype=np.int64
    )
    vert_ids = np.unique(np.concatenate((eu, ev, bnd_ids)))
    n_local = int(vert_ids.size)
    vidx = {v: i for i, v in enumerate(vert_ids.tolist())}

    half_vertex = np.empty(2 * m, dtype=np.int64)
    half_vertex[0::2] = np.searchsorted(vert_ids, eu)
    half_vertex[1::2] = np.searchsorted(vert_ids, ev)
    # Stable sort groups half-edges by vertex while preserving edge order.
    adjacency = np.repeat(np.arange(m, dtype=np.int64), 2)[
        np.argsort(half_vertex, kind="stable")
    ]
    local_deg = np.bincount(half_vertex, minlength=n_local)
    offsets = np.zeros(n_local + 1, dtype=np.int64)
    np.cumsum(local_deg, out=offsets[1:])

    is_boundary = np.isin(vert_ids, bnd_ids, assume_unique=True)
    odd_deg = (local_deg & 1).astype(bool)
    boundary = vert_ids[is_boundary].tolist()  # sorted by construction
    ob = vert_ids[is_boundary & odd_deg].tolist()
    eb = vert_ids[is_boundary & ~odd_deg].tolist()
    n_internal = n_local - len(boundary)

    stats = Phase1Stats(
        n_live_vertices=n_local,
        n_internal=n_internal,
        n_ob=len(ob),
        n_eb=len(eb),
        n_local_edges=len(local_edges),
    )
    if validate and len(ob) % 2 != 0:
        raise InvariantViolation(
            f"partition {pid} level {level}: odd number of OB vertices ({len(ob)})"
        )

    # The walk is a per-edge scalar loop; flat Python lists index faster than
    # NumPy scalars there, so materialize the arrays once. ``ptr`` holds each
    # vertex's next-unvisited cursor into the flat adjacency.
    visited = bytearray(m)
    adj_flat = adjacency.tolist()
    ptr = offsets[:-1].tolist()
    adj_end = offsets[1:].tolist()

    def walk(start: int) -> tuple[list, int]:
        """Maximal traversal along unvisited local edges from ``start``."""
        items: list = []
        cur = start
        while True:
            i = vidx[cur]
            end = adj_end[i]
            p = ptr[i]
            while p < end and visited[adj_flat[p]]:
                p += 1
            ptr[i] = p
            if p == end:
                return items, cur
            k = adj_flat[p]
            visited[k] = 1
            u, v, kind, ref = local_edges[k]
            nxt = v if cur == u else u
            if kind == EDGE_RAW:
                items.append((ITEM_EDGE, ref, nxt))
            else:
                items.append((ITEM_FRAG, ref, nxt, cur == u))
            cur = nxt

    # ---- root bookkeeping for mergeInto ----------------------------------
    # Each OB path / EB cycle / orphan internal cycle is a *root*; internal
    # cycles with a pivot attach to a root and are spliced in a final pass.
    roots: list[dict] = []  # {kind, src, dst, items}
    junction_owner: dict[int, int] = {}  # vertex -> root index
    attachments: list[dict[int, list[list]]] = []  # per root: vertex -> cycles

    def register(root_idx: int, src: int, items: list) -> None:
        if src not in junction_owner:
            junction_owner[src] = root_idx
        for it in items:
            dst = it[2]
            if dst not in junction_owner:
                junction_owner[dst] = root_idx

    def new_root(kind: str, src: int, dst: int, items: list) -> None:
        idx = len(roots)
        roots.append({"kind": kind, "src": src, "dst": dst, "items": items})
        attachments.append({})
        register(idx, src, items)

    # ---- 1) OB -> OB maximal paths (Alg. 1 lines 7-8) ---------------------
    # Each OB initiates exactly one walk (the paper's v.visited flag): an OB
    # that already served as the *endpoint* of an earlier path has no
    # unvisited edges left and yields an empty walk; an OB that *initiated*
    # may retain an even number of unvisited edges, which the internal-cycle
    # stage consumes (they can only form cycles once all parities are even).
    for v in sorted(ob):
        items, end = walk(v)
        if not items:
            continue
        if validate:
            ie = vidx[end]
            if local_deg[ie] % 2 == 0 or remote_degree.get(end, 0) == 0:
                raise InvariantViolation(
                    f"Lemma 1 violated: path from OB {v} ended at non-OB {end}"
                )
            if end == v:
                raise InvariantViolation(
                    f"Lemma 1 violated: path from OB {v} returned to its start"
                )
        new_root(KIND_PATH, v, end, items)
        stats.n_paths += 1

    # ---- 2) EB cycles (lines 9-10) ----------------------------------------
    for v in sorted(eb):
        items, end = walk(v)
        if not items:
            stats.n_trivial += 1
            continue
        if validate and end != v:
            raise InvariantViolation(
                f"Lemma 2 violated: cycle from EB {v} ended at {end}"
            )
        new_root(KIND_CYCLE, v, v, items)
        stats.n_eb_cycles += 1

    # ---- 3) internal-vertex cycles (lines 11-13) ---------------------------
    for k, (u, _v, _kind, _ref) in enumerate(local_edges):
        if visited[k]:
            continue
        items, end = walk(u)
        if validate and end != u:
            raise InvariantViolation(
                f"Lemma 2 violated: internal cycle from {u} ended at {end}"
            )
        # mergeInto: find a pivot junction shared with an existing root.
        pivot = None
        pivot_root = -1
        if u in junction_owner:
            pivot, pivot_root = u, junction_owner[u]
        else:
            for it in items:
                dst = it[2]
                if dst in junction_owner:
                    pivot, pivot_root = dst, junction_owner[dst]
                    break
        if pivot is None:
            # Disconnected live local graph (generalization beyond the
            # paper's Lemma 3 assumption): keep as an anchored cycle.
            new_root(KIND_CYCLE, u, u, items)
            stats.n_iv_cycles_anchored += 1
        else:
            rotated = _rotate_cycle(u, items, pivot)
            attachments[pivot_root].setdefault(pivot, []).append(rotated)
            register(pivot_root, pivot, rotated)
            stats.n_iv_cycles_merged += 1

    # ---- finalize: splice attachments, register fragments -----------------
    pathmap = PathMap(pid=pid, level=level)
    for idx, root in enumerate(roots):
        items = _flatten(root["src"], root["items"], attachments[idx])
        n_edges = _count_edges(items, store)
        frag = store.new_fragment(
            root["kind"], level, pid, root["src"], root["dst"], items, n_edges
        )
        if root["kind"] == KIND_PATH:
            pathmap.ob_paths.append((frag.src, frag.dst, frag.fid))
        else:
            pathmap.anchored_cycles.append(frag.fid)
    pathmap.n_merged_cycles = stats.n_iv_cycles_merged
    pathmap.n_trivial = stats.n_trivial

    if validate and any(b == 0 for b in visited):
        raise InvariantViolation(
            f"partition {pid} level {level}: Phase 1 left local edges unvisited"
        )
    return pathmap, stats


def _rotate_cycle(src: int, items: list, pivot: int) -> list:
    """Rotate a cycle's item list so its junction sequence starts at ``pivot``."""
    if pivot == src:
        return items
    for i, it in enumerate(items):
        if it[2] == pivot:
            return items[i + 1 :] + items[: i + 1]
    raise InvariantViolation(f"pivot {pivot} not on cycle starting at {src}")


def _flatten(src: int, items: list, attach: dict[int, list[list]]) -> list:
    """Expand pivot attachments into a single flat item list (iterative)."""
    if not attach:
        return items
    out: list = []
    stack: list = []

    def push_attach(v: int) -> None:
        cycles = attach.pop(v, None)
        if cycles:
            for cyc in reversed(cycles):
                stack.append(iter(cyc))

    stack.append(iter(items))
    push_attach(src)
    while stack:
        it = stack[-1]
        item = next(it, None)
        if item is None:
            stack.pop()
            continue
        out.append(item)
        push_attach(item[2])
    if attach:
        raise InvariantViolation(
            f"unspliced attachments remain at vertices {sorted(attach)[:8]}"
        )
    return out


def _count_edges(items: list, store: FragmentStore) -> int:
    """Raw-edge weight of an item list (coarse items weigh their n_edges)."""
    total = 0
    for it in items:
        if it[0] == ITEM_EDGE:
            total += 1
        else:
            total += store.get(it[1]).n_edges
    return total
