"""Phase 1 (Alg. 1): edge-disjoint maximal local paths and cycles.

Given a partition's *live local graph* at some merge level — whose edges are
raw graph edges and/or coarse OB-pair edges produced at lower levels — this
module finds:

1. maximal local paths between odd-degree boundary vertices (Lemma 1), each
   registered as a ``path`` fragment and handed to the next level as a coarse
   OB-pair edge;
2. maximal local cycles from every even-degree boundary vertex (Lemma 2),
   registered as anchored ``cycle`` fragments for Phase-3 splicing;
3. cycles from remaining internal vertices, merged (``mergeInto``) into a
   same-run fragment at a shared *pivot* vertex (Lemma 3); cycles with no
   same-run pivot — possible only when the live local graph is disconnected,
   our generalization beyond the paper's connected-partition assumption —
   are kept as anchored cycles instead.

The traversal uses the classic next-unvisited-edge pointer so the whole run
is ``O(|B| + |I| + |L|)`` per partition, the complexity the paper claims in
§3.5 and that the Fig. 7 benchmark verifies empirically.

Data plane: the live local edges arrive as an **EdgeTable** — one packed
``int64 (m, 4)`` array with columns ``(u, v, kind, ref)`` — and the remote
degrees as an ``int64 (r, 2)`` table (see :func:`edge_table` /
:func:`remote_deg_table`, which also normalize the legacy tuple/dict forms).
The adjacency build is fully vectorized over the table's columns (sorted
vertex index, CSR half-edge offsets, next-unvisited pointers). The walk
itself stays a Python loop — it is inherently sequential scalar chasing, and
flat Python lists index faster than NumPy scalars there — but it emits only
one packed integer per consumed edge (``edge_index << 1 | direction``); the
run's ItemArrays are then *decoded from the EdgeTable columns in one batched
vectorized gather per run* (each fragment's body is a view into the decoded
block), so no per-edge Python tuples exist anywhere in the pipeline.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import InvariantViolation
from ..obs import ambient
from .pathmap import ITEM_FRAG, KIND_CYCLE, KIND_PATH, FragmentStore, PathMap

__all__ = [
    "LocalEdge",
    "Phase1Stats",
    "run_phase1",
    "edge_table",
    "empty_edge_table",
    "remote_deg_table",
    "EDGE_RAW",
    "EDGE_COARSE",
]

#: Edge kind: a raw graph edge; ``ref`` is the graph edge id. Equals
#: ``ITEM_EDGE`` so the EdgeTable kind column doubles as the ItemArray tag.
EDGE_RAW = 0
#: Edge kind: a coarse OB-pair edge; ``ref`` is the fragment id and the
#: row's ``u`` is the fragment's ``src`` (so ``u -> v`` is *forward*).
#: Equals ``ITEM_FRAG`` for the same reason.
EDGE_COARSE = 1

#: Legacy alias: one live local edge as a ``(u, v, kind, ref)`` tuple.
#: The pipeline now moves EdgeTables; :func:`edge_table` converts.
LocalEdge = tuple


def empty_edge_table() -> np.ndarray:
    """A zero-row EdgeTable."""
    return np.empty((0, 4), dtype=np.int64)


def edge_table(local_edges) -> np.ndarray:
    """Normalize live local edges to the packed ``(m, 4) int64`` EdgeTable.

    Accepts an EdgeTable (returned as-is, re-typed if needed) or the legacy
    list of ``(u, v, kind, ref)`` tuples.
    """
    if isinstance(local_edges, np.ndarray):
        if local_edges.ndim != 2 or local_edges.shape[1] != 4:
            raise ValueError(f"EdgeTable must be (m, 4); got {local_edges.shape}")
        return local_edges.astype(np.int64, copy=False)
    return np.array(local_edges, dtype=np.int64).reshape(-1, 4)


def remote_deg_table(remote_degree) -> np.ndarray:
    """Normalize remote degrees to a sorted ``(r, 2) int64`` table.

    Rows are ``(vertex, degree)`` with ``degree > 0`` (zero/negative rows
    are dropped), sorted by vertex. Accepts such a table or the legacy
    ``{vertex: degree}`` dict.
    """
    if isinstance(remote_degree, np.ndarray):
        if remote_degree.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        tab = remote_degree.astype(np.int64, copy=False).reshape(-1, 2)
    else:
        tab = np.fromiter(
            (x for vd in remote_degree.items() for x in vd), dtype=np.int64,
            count=2 * len(remote_degree),
        ).reshape(-1, 2)
    tab = tab[tab[:, 1] > 0]
    return tab[np.argsort(tab[:, 0], kind="stable")]


class _WalkTables:
    """Immutable walk tables for one live-local-graph topology.

    Everything the walk loop reads — CSR offsets, per-slot transition
    tables, boundary classification — is a pure function of the EdgeTable's
    ``(u, v)`` columns and the remote-degree table, so it can be shared
    across runs. The walk mutates only its per-run ``ptr`` cursor copy and
    ``visited`` bitmap; these tables are never written after construction.
    """

    __slots__ = (
        "m", "dense", "size", "vert_l", "local_deg", "ptr0", "adj_end",
        "slot_enc", "slot_dst", "slot_next", "eu_i", "bnd_ids", "bnd_deg",
        "ob", "eb", "n_local", "n_internal",
    )


def _build_walk_tables(edges: np.ndarray, rdeg: np.ndarray) -> _WalkTables:
    """Build the flat-array CSR walk tables for one live local graph.

    CSR half-edge layout: slots ``offsets[i]:offsets[i+1]`` list the
    incident half-edges of local vertex ``i`` in input order (a self loop
    contributes two consecutive slots, so degree math holds).

    Vertex indexing has two modes. *Dense* (the pipeline's case: vertex
    ids are graph ids, bounded by |V|): local index = global id, no remap
    at all. *Sparse* (arbitrary ids, e.g. hand-built tests): a sorted
    unique id table with searchsorted compaction. Both produce identical
    walks — local indices ascend in global-id order either way.
    """
    m = int(edges.shape[0])
    eu = edges[:, 0]
    ev = edges[:, 1]
    bnd_ids = rdeg[:, 0]
    bnd_deg = rdeg[:, 1]
    id_space = 1 + int(
        max(
            eu.max() if m else -1,
            ev.max() if m else -1,
            bnd_ids.max() if bnd_ids.size else -1,
        )
    )
    min_id = int(
        min(
            eu.min() if m else id_space,
            ev.min() if m else id_space,
            bnd_ids.min() if bnd_ids.size else id_space,
        )
    ) if id_space else 0
    # Dense when the id space is proportionate to the live size (or trivially
    # small); the 2^16 floor covers small graphs without letting a tiny
    # partition of a multi-million-id graph pay O(id_space) allocations.
    dense = min_id >= 0 and id_space <= max(
        1 << 16, 8 * (2 * m + int(bnd_ids.size)) + 1024
    )

    half_vertex = np.empty(2 * m, dtype=np.int64)
    if dense:
        vert_ids = None
        size = id_space
        half_vertex[0::2] = eu
        half_vertex[1::2] = ev
        bnd_loc = bnd_ids
    else:
        vert_ids = np.unique(np.concatenate((eu, ev, bnd_ids)))
        size = int(vert_ids.size)
        half_vertex[0::2] = np.searchsorted(vert_ids, eu)
        half_vertex[1::2] = np.searchsorted(vert_ids, ev)
        bnd_loc = np.searchsorted(vert_ids, bnd_ids)

    # Stable sort groups half-edges by vertex while preserving edge order
    # (radix sort on int keys, O(m)).
    order = np.argsort(half_vertex, kind="stable")
    local_deg = np.bincount(half_vertex, minlength=size)
    offsets = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(local_deg, out=offsets[1:])

    # Per-slot walk tables, fully precomputed: consuming sorted half-edge
    # slot ``p`` appends ``slot_enc[p]`` (packed ``edge << 1 | forward``),
    # emits global junction ``slot_dst[p]`` and moves to local vertex
    # ``slot_next[p]``. The scalar walk then does nothing but indexed
    # reads — no id lookups, no direction branch.
    edge_of = order >> 1  # sorted slot -> edge index
    u_side = (order & 1) == 0
    eu_loc = half_vertex[0::2]
    ev_loc = half_vertex[1::2]
    slot_next_arr = np.where(u_side, ev_loc[edge_of], eu_loc[edge_of])

    t = _WalkTables()
    t.m = m
    t.dense = dense
    t.size = size
    t.local_deg = local_deg
    t.bnd_ids = bnd_ids
    t.bnd_deg = bnd_deg
    # The packed value doubles as the visited key: edge index = enc >> 1.
    t.slot_enc = np.where(u_side, (edge_of << 1) | 1, edge_of << 1).tolist()
    t.slot_next = slot_next_arr.tolist()
    t.slot_dst = (
        t.slot_next if dense else vert_ids[slot_next_arr].tolist()
    )
    # Local index -> global id; a range in dense mode (identity, O(1)).
    t.vert_l = range(size) if dense else vert_ids.tolist()
    t.ptr0 = offsets[:-1].tolist()  # pristine next-unvisited cursors
    t.adj_end = offsets[1:].tolist()
    t.eu_i = eu_loc.tolist()  # per-edge local endpoint index (cycle starts)

    is_boundary = np.zeros(size, dtype=bool)
    is_boundary[bnd_loc] = True
    odd_deg = (local_deg & 1).astype(bool)
    # Local indices, ascending — which is global-id order in both modes.
    t.ob = np.flatnonzero(is_boundary & odd_deg).tolist()
    t.eb = np.flatnonzero(is_boundary & ~odd_deg).tolist()
    t.n_local = (
        int(np.count_nonzero((local_deg > 0) | is_boundary)) if dense else size
    )
    t.n_internal = t.n_local - len(t.ob) - len(t.eb)
    return t


#: Walk-table cache: a BSP run re-enters Phase 1 with the *same* live local
#: graph whenever a partition's edge set survives a merge level unchanged,
#: and a serving workload replays identical partition topologies across
#: jobs on the same cataloged graph. Tables are content-keyed (sha256 of
#: the topology columns), kept per-thread (no locks on the hot path; forked
#: workers each grow their own), LRU-bounded, and only populated for small
#: tables where the build cost dominates the walk. Disable with
#: ``REPRO_PHASE1_TABLE_CACHE=0``.
_TABLE_CACHE_CAP = 32
_TABLE_CACHE_MAX_EDGES = 1 << 16
_tls = threading.local()


def _walk_tables(edges: np.ndarray, rdeg: np.ndarray) -> _WalkTables:
    """Cached :func:`_build_walk_tables` (content-addressed, per-thread)."""
    m = int(edges.shape[0])
    if (
        m > _TABLE_CACHE_MAX_EDGES
        or os.environ.get("REPRO_PHASE1_TABLE_CACHE", "1") == "0"
    ):
        return _build_walk_tables(edges, rdeg)
    digest = hashlib.sha256()
    digest.update(np.int64(m).tobytes())
    digest.update(np.ascontiguousarray(edges[:, :2]).tobytes())
    digest.update(np.ascontiguousarray(rdeg).tobytes())
    key = digest.digest()
    cache = getattr(_tls, "tables", None)
    if cache is None:
        cache = _tls.tables = OrderedDict()
    tables = cache.get(key)
    if tables is None:
        tables = _build_walk_tables(edges, rdeg)
        cache[key] = tables
        while len(cache) > _TABLE_CACHE_CAP:
            cache.popitem(last=False)
        _cache_counter("miss").inc()
    else:
        cache.move_to_end(key)
        _cache_counter("hit").inc()
    return tables


def _cache_counter(result: str):
    """Ambient-registry walk-table cache counter (hit/miss by label)."""
    return ambient().counter(
        "repro_walk_cache_events_total",
        "Phase-1 walk-table cache lookups by result",
        labelnames=("result",),
    ).labels(result=result)


@dataclass
class Phase1Stats:
    """Input census + outcome counts of one Phase-1 run (Figs. 7 and 9)."""

    n_live_vertices: int = 0
    n_internal: int = 0
    n_ob: int = 0
    n_eb: int = 0
    n_local_edges: int = 0
    n_paths: int = 0
    n_eb_cycles: int = 0
    n_iv_cycles_merged: int = 0
    n_iv_cycles_anchored: int = 0
    n_trivial: int = 0

    @property
    def phase1_cost(self) -> int:
        """The paper's per-partition cost term ``|B| + |I| + |L|``."""
        return self.n_ob + self.n_eb + self.n_internal + self.n_local_edges


def run_phase1(
    pid: int,
    level: int,
    local_edges,
    remote_degree,
    store: FragmentStore,
    validate: bool = False,
) -> tuple[PathMap, Phase1Stats]:
    """Run Alg. 1 on one partition's live local graph.

    Parameters
    ----------
    pid, level:
        Identity of the partition and merge level (recorded on fragments).
    local_edges:
        The live local edges as an EdgeTable (or legacy tuple list); every
        one is consumed.
    remote_degree:
        Remote half-edge degrees as an ``(r, 2)`` table (or legacy dict);
        vertices with a positive entry are *boundary* vertices. Vertices
        appearing neither here nor on any local edge do not exist at this
        level.
    store:
        Fragment registry that receives the new fragments.
    validate:
        When True, check Lemmas 1–2 on every walk and raise
        :class:`~repro.errors.InvariantViolation` on failure (used by tests;
        costs a few percent).

    Returns
    -------
    (pathmap, stats):
        The partition's :class:`~repro.core.pathmap.PathMap` for this level
        and the census/outcome counters.
    """
    edges = edge_table(local_edges)
    rdeg = remote_deg_table(remote_degree)

    # ---- local adjacency (flat-array CSR layout, content-cached) ----------
    # See _build_walk_tables for the layout; _walk_tables reuses the tables
    # when this topology was walked before (same partition across
    # supersteps, same graph across served jobs).
    t = _walk_tables(edges, rdeg)
    m = t.m
    dense, size = t.dense, t.size
    vert_l = t.vert_l
    local_deg = t.local_deg
    bnd_ids, bnd_deg = t.bnd_ids, t.bnd_deg
    slot_enc, slot_dst, slot_next = t.slot_enc, t.slot_dst, t.slot_next
    adj_end = t.adj_end
    eu_i = t.eu_i
    ob, eb = t.ob, t.eb

    stats = Phase1Stats(
        n_live_vertices=t.n_local,
        n_internal=t.n_internal,
        n_ob=len(ob),
        n_eb=len(eb),
        n_local_edges=m,
    )
    if validate and len(ob) % 2 != 0:
        raise InvariantViolation(
            f"partition {pid} level {level}: odd number of OB vertices ({len(ob)})"
        )

    def remote_deg_of(v: int) -> int:
        i = int(np.searchsorted(bnd_ids, v))
        if i < bnd_ids.size and int(bnd_ids[i]) == v:
            return int(bnd_deg[i])
        return 0

    # The walk is a per-edge scalar loop; flat Python lists index faster
    # than NumPy scalars there, so the slot tables are materialized as
    # lists in _WalkTables. Only the per-run mutable state is fresh here:
    # ``ptr`` (each vertex's next-unvisited cursor into the flat slot
    # sequence, copied from the pristine cached cursors) and the visited
    # bitmap — the cached tables themselves are never written.
    visited = bytearray(m)
    ptr = list(t.ptr0)

    def walk(
        start: int,
        # Default-arg binding makes the hot loop's lookups LOAD_FAST.
        ptr=ptr, adj_end=adj_end, visited=visited,
        slot_enc=slot_enc, slot_dst=slot_dst, slot_next=slot_next,
    ) -> tuple[list[int], list[int], int]:
        """Maximal traversal along unvisited local edges from ``start``.

        ``start`` and the returned end vertex are *local* indices; the
        returned packed edge sequence and parallel junction (dst) sequence
        use edge indices and global vertex ids respectively.
        """
        enc: list[int] = []
        dsts: list[int] = []
        e_append = enc.append
        d_append = dsts.append
        cur = start
        while True:
            end = adj_end[cur]
            p = ptr[cur]
            while p < end and visited[slot_enc[p] >> 1]:
                p += 1
            ptr[cur] = p
            if p == end:
                return enc, dsts, cur
            e = slot_enc[p]
            visited[e >> 1] = 1
            e_append(e)
            d_append(slot_dst[p])
            cur = slot_next[p]

    # ---- root bookkeeping for mergeInto ----------------------------------
    # Each OB path / EB cycle / orphan internal cycle is a *root*; internal
    # cycles with a pivot attach to a root and are spliced in a final pass.
    # A walk body is the pair of parallel lists (enc, dst). Junction
    # ownership (vertex -> first owning root) is a flat list in dense mode,
    # a dict keyed by global id otherwise; ``owner_get(v)`` returns -1 for
    # unowned either way.
    roots: list[dict] = []  # {kind, src, dst, enc, dsts}
    attachments: list[dict[int, list[tuple[list, list]]]] = []

    if dense:
        owner_l = [-1] * size
        owner_get = owner_l.__getitem__

        def register(root_idx: int, src: int, dsts: list[int]) -> None:
            if owner_l[src] < 0:
                owner_l[src] = root_idx
            for dst in dsts:
                if owner_l[dst] < 0:
                    owner_l[dst] = root_idx
    else:
        junction_owner: dict[int, int] = {}

        def owner_get(v: int) -> int:
            return junction_owner.get(v, -1)

        def register(root_idx: int, src: int, dsts: list[int]) -> None:
            if src not in junction_owner:
                junction_owner[src] = root_idx
            for dst in dsts:
                if dst not in junction_owner:
                    junction_owner[dst] = root_idx

    def new_root(kind: str, src: int, dst: int, enc: list, dsts: list) -> None:
        idx = len(roots)
        roots.append({"kind": kind, "src": src, "dst": dst, "enc": enc,
                      "dsts": dsts})
        attachments.append({})
        register(idx, src, dsts)

    # ---- 1) OB -> OB maximal paths (Alg. 1 lines 7-8) ---------------------
    # Each OB initiates exactly one walk (the paper's v.visited flag): an OB
    # that already served as the *endpoint* of an earlier path has no
    # unvisited edges left and yields an empty walk; an OB that *initiated*
    # may retain an even number of unvisited edges, which the internal-cycle
    # stage consumes (they can only form cycles once all parities are even).
    for vi in ob:
        v = vert_l[vi]
        enc, dsts, end_i = walk(vi)
        if not enc:
            continue
        if validate:
            end = vert_l[end_i]
            if local_deg[end_i] % 2 == 0 or remote_deg_of(end) == 0:
                raise InvariantViolation(
                    f"Lemma 1 violated: path from OB {v} ended at non-OB {end}"
                )
            if end_i == vi:
                raise InvariantViolation(
                    f"Lemma 1 violated: path from OB {v} returned to its start"
                )
        new_root(KIND_PATH, v, vert_l[end_i], enc, dsts)
        stats.n_paths += 1

    # ---- 2) EB cycles (lines 9-10) ----------------------------------------
    for vi in eb:
        enc, dsts, end_i = walk(vi)
        if not enc:
            stats.n_trivial += 1
            continue
        v = vert_l[vi]
        if validate and end_i != vi:
            raise InvariantViolation(
                f"Lemma 2 violated: cycle from EB {v} ended at {vert_l[end_i]}"
            )
        new_root(KIND_CYCLE, v, v, enc, dsts)
        stats.n_eb_cycles += 1

    # ---- 3) internal-vertex cycles (lines 11-13) ---------------------------
    # ``bytearray.find(0, k)`` skips visited runs at C speed.
    k = visited.find(0)
    while k != -1:
        ui = eu_i[k]
        u = vert_l[ui]
        enc, dsts, end_i = walk(ui)
        if validate and end_i != ui:
            raise InvariantViolation(
                f"Lemma 2 violated: internal cycle from {u} ended at "
                f"{vert_l[end_i]}"
            )
        # mergeInto: find a pivot junction shared with an existing root.
        pivot = None
        pivot_root = owner_get(u)
        if pivot_root >= 0:
            pivot = u
        else:
            for dst in dsts:
                r = owner_get(dst)
                if r >= 0:
                    pivot, pivot_root = dst, r
                    break
        if pivot is None:
            # Disconnected live local graph (generalization beyond the
            # paper's Lemma 3 assumption): keep as an anchored cycle.
            new_root(KIND_CYCLE, u, u, enc, dsts)
            stats.n_iv_cycles_anchored += 1
        else:
            rot_enc, rot_dsts = _rotate_cycle(u, enc, dsts, pivot)
            attachments[pivot_root].setdefault(pivot, []).append(
                (rot_enc, rot_dsts)
            )
            register(pivot_root, pivot, rot_dsts)
            stats.n_iv_cycles_merged += 1
        k = visited.find(0, k)

    # ---- finalize: splice attachments, decode ItemArrays, register --------
    # One *batched* vectorized decode for every fragment of the run: the
    # packed walks concatenate into a single sequence, the EdgeTable's kind
    # column *is* the ItemArray tag column (EDGE_RAW == ITEM_EDGE,
    # EDGE_COARSE == ITEM_FRAG) and ref carries over unchanged; per-fragment
    # bodies are then views into the one decoded block. This keeps the
    # NumPy fixed cost per *run*, not per fragment — partitions routinely
    # produce tens of thousands of tiny path fragments.
    n_roots = len(roots)
    flat_enc: list[int] = []
    flat_dst: list[int] = []
    lengths = np.empty(n_roots, dtype=np.int64)
    for idx, root in enumerate(roots):
        enc, dsts = _flatten(
            root["src"], root["enc"], root["dsts"], attachments[idx]
        )
        lengths[idx] = len(enc)
        flat_enc.extend(enc)
        flat_dst.extend(dsts)
    seq = np.array(flat_enc, dtype=np.int64)
    ks = seq >> 1
    decoded = np.empty((seq.size, 4), dtype=np.int64)
    decoded[:, 0] = edges[ks, 2]
    decoded[:, 1] = edges[ks, 3]
    decoded[:, 2] = flat_dst
    decoded[:, 3] = seq & 1
    bounds = np.zeros(n_roots + 1, dtype=np.int64)
    np.cumsum(lengths, out=bounds[1:])
    # Raw-edge weights: every root is non-empty, so reduceat is safe; coarse
    # items add their fragments' cached counts (few per run).
    is_frag = decoded[:, 0] == ITEM_FRAG
    n_frag_rows = (
        np.add.reduceat(is_frag.astype(np.int64), bounds[:-1])
        if n_roots
        else np.empty(0, dtype=np.int64)
    )
    extra_edges = np.zeros(n_roots, dtype=np.int64)
    frag_positions = np.flatnonzero(is_frag)
    if frag_positions.size:
        owners = np.searchsorted(bounds[1:], frag_positions, side="right")
        frag_refs = decoded[frag_positions, 1]
        for ridx, ref in zip(owners.tolist(), frag_refs.tolist()):
            extra_edges[ridx] += store.get(ref).n_edges
    n_edges_arr = lengths - n_frag_rows + extra_edges

    ob_rows: list[tuple[int, int, int]] = []
    ob_edges: list[int] = []
    anchored: list[int] = []
    pathmap = PathMap(pid=pid, level=level)
    for idx, root in enumerate(roots):
        items = decoded[bounds[idx]:bounds[idx + 1]]
        n_edges = int(n_edges_arr[idx])
        frag = store.new_fragment(
            root["kind"], level, pid, root["src"], root["dst"], items, n_edges
        )
        if root["kind"] == KIND_PATH:
            ob_rows.append((frag.src, frag.dst, frag.fid))
            ob_edges.append(n_edges)
        else:
            anchored.append(frag.fid)
    pathmap.ob_paths = np.array(ob_rows, dtype=np.int64).reshape(-1, 3)
    pathmap.ob_path_edges = np.array(ob_edges, dtype=np.int64)
    pathmap.anchored_cycles = np.array(anchored, dtype=np.int64)
    pathmap.n_merged_cycles = stats.n_iv_cycles_merged
    pathmap.n_trivial = stats.n_trivial

    if validate and any(b == 0 for b in visited):
        raise InvariantViolation(
            f"partition {pid} level {level}: Phase 1 left local edges unvisited"
        )
    return pathmap, stats


def _rotate_cycle(
    src: int, enc: list, dsts: list, pivot: int
) -> tuple[list, list]:
    """Rotate a cycle walk so its junction sequence starts at ``pivot``."""
    if pivot == src:
        return enc, dsts
    try:
        i = dsts.index(pivot)
    except ValueError:
        raise InvariantViolation(
            f"pivot {pivot} not on cycle starting at {src}"
        ) from None
    return enc[i + 1:] + enc[: i + 1], dsts[i + 1:] + dsts[: i + 1]


def _flatten(
    src: int, enc: list, dsts: list, attach: dict[int, list[tuple[list, list]]]
) -> tuple[list, list]:
    """Expand pivot attachments into one flat walk (iterative).

    The no-attachment fast path (the overwhelmingly common case) returns the
    walk unchanged. Roots that absorbed internal cycles — at the merge
    tree's root that is one walk spanning most of the graph — are spliced
    *by segment*: candidate splice positions come from one vectorized
    ``isin`` of each walk's junction column against the attachment keys, and
    the runs between them are bulk list-``extend``s; only actual splice
    points (one per attached cycle, plus cheap stale repeats of the same
    vertices) run scalar code.
    """
    if not attach:
        return enc, dsts
    keys = np.fromiter(attach.keys(), dtype=np.int64, count=len(attach))
    out_enc: list = []
    out_dsts: list = []
    stack: list = []  # frames: [enc, dsts, hit_positions, hit_cursor, pos]

    def push(c_enc: list, c_dsts: list) -> None:
        hits = np.flatnonzero(
            np.isin(np.array(c_dsts, dtype=np.int64), keys)
        ).tolist()
        stack.append([c_enc, c_dsts, hits, 0, 0])

    def push_attach(v: int) -> None:
        cycles = attach.pop(v, None)
        if cycles:
            for c_enc, c_dsts in reversed(cycles):
                push(c_enc, c_dsts)

    push(enc, dsts)
    push_attach(src)
    while stack:
        top = stack[-1]
        c_enc, c_dsts, hits, hi, pos = top
        # Next live splice point (attachments already consumed are skipped).
        n_hits = len(hits)
        while hi < n_hits and (hits[hi] < pos or c_dsts[hits[hi]] not in attach):
            hi += 1
        top[3] = hi
        if hi >= n_hits:
            if pos < len(c_dsts):
                out_enc.extend(c_enc[pos:])
                out_dsts.extend(c_dsts[pos:])
            stack.pop()
            continue
        h = hits[hi]
        out_enc.extend(c_enc[pos:h + 1])
        out_dsts.extend(c_dsts[pos:h + 1])
        top[3] = hi + 1
        top[4] = h + 1
        push_attach(c_dsts[h])
    if attach:
        raise InvariantViolation(
            f"unspliced attachments remain at vertices {sorted(attach)[:8]}"
        )
    return out_enc, out_dsts
