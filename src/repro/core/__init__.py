"""The paper's contribution: the partition-centric Euler-circuit algorithm.

Public API:

* :func:`find_euler_circuit` — end-to-end driver (Phases 1–3 on the BSP
  engine); returns an :class:`EulerResult` with the circuit, the execution
  report (all Fig. 5–9 quantities) and the fragment store.
* :func:`verify_circuit`, :class:`EulerCircuit` — result type + validator.
* :func:`run_phase1`, :func:`build_merge_tree`, :func:`reconstruct_circuit`
  — the three phases individually, for tests/advanced use.
* :class:`FragmentStore`, :class:`PathMap` — Phase-1 book-keeping.
* :data:`STRATEGIES` — the §5 remote-edge memory strategies.
"""

from .circuit import EulerCircuit, verify_circuit
from .driver import EulerResult, ExecutionReport, find_euler_circuit
from .improvements import STRATEGIES, DeferredStore, plan_remote_placement
from .memory_model import Fig8Series, fig8_table, ideal_series, measured_series
from .merge_tree import Merge, MergeTree, build_merge_tree
from .merging import LONGS, PartitionState, merge_states
from .pathmap import Fragment, FragmentStore, PathMap
from .phase1 import Phase1Stats, run_phase1
from .phase3 import build_pending_index, reconstruct_circuit

__all__ = [
    "EulerCircuit",
    "verify_circuit",
    "EulerResult",
    "ExecutionReport",
    "find_euler_circuit",
    "STRATEGIES",
    "DeferredStore",
    "plan_remote_placement",
    "Fig8Series",
    "fig8_table",
    "ideal_series",
    "measured_series",
    "Merge",
    "MergeTree",
    "build_merge_tree",
    "LONGS",
    "PartitionState",
    "merge_states",
    "Fragment",
    "FragmentStore",
    "PathMap",
    "Phase1Stats",
    "run_phase1",
    "build_pending_index",
    "reconstruct_circuit",
]
