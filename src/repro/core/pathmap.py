"""Fragments, the pathMap, and the (spillable) fragment store.

Phase 1 (Alg. 1) replaces runs of local edges with coarse objects the paper
calls *paths* (between two odd boundary vertices — the "OB-pair" that acts as
a single coarse edge at the next level) and *cycles* (anchored at an even
boundary vertex or an internal vertex). We call both **fragments**.

A fragment's body is a sequence of *items*, each either a raw graph edge or a
reference to a lower-level fragment traversed forward or backward. This is
exactly the paper's book-keeping "persisted to disk" in Phase 1 and consumed
by Phase 3's recursive unrolling; :class:`FragmentStore` keeps it in memory
by default and can spill bodies to disk (``spill_dir``), mirroring the
paper's design that only the pathMap *metadata* stays resident.

Item encoding — the **ItemArray**, one packed ``int64 (n, 4)`` NumPy array
per body, columns ``(tag, ref, dst, forward)``:

``(ITEM_EDGE, eid, dst, fwd)``
    Raw undirected edge ``eid`` traversed so that it *ends* at vertex ``dst``
    (``fwd`` records the traversal direction; nothing downstream reads it
    for edges, but keeping the row uniform lets every body share one dtype).
``(ITEM_FRAG, fid, dst, forward)``
    Lower-level path fragment ``fid`` traversed toward ``dst``; ``forward``
    is 1 when traversed from its ``src`` to its ``dst``.

The implied junction sequence of a fragment is ``src`` followed by the
``dst`` column; for cycles the last ``dst`` equals ``src``. The packed form
is what makes the data plane columnar end-to-end: slicing, reversal and
rotation are array ops, spills write raw buffers, and a whole body crosses
the process-executor pickle boundary as a single buffer instead of ``n``
tuples. :func:`as_items` normalizes the legacy tuple form (3-tuples for
edges, 4-tuples for fragment refs) at the API boundary, so hand-built test
bodies keep working.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ITEM_EDGE",
    "ITEM_FRAG",
    "KIND_PATH",
    "KIND_CYCLE",
    "as_items",
    "empty_items",
    "Fragment",
    "FragmentBatch",
    "FragmentStore",
    "PathMap",
    "make_fid",
]

ITEM_EDGE = 0
ITEM_FRAG = 1

KIND_PATH = "path"
KIND_CYCLE = "cycle"

_KINDS = (KIND_PATH, KIND_CYCLE)  # index = wire encoding in batch pickles


def empty_items() -> np.ndarray:
    """A zero-row ItemArray."""
    return np.empty((0, 4), dtype=np.int64)


def as_items(items) -> np.ndarray:
    """Normalize a fragment body to the packed ``(n, 4) int64`` ItemArray.

    Accepts an ItemArray (returned as-is, re-typed if needed) or the legacy
    list of item tuples — ``(ITEM_EDGE, eid, dst)`` /
    ``(ITEM_FRAG, fid, dst, forward)``; edge tuples get ``forward = 1``.
    """
    if isinstance(items, np.ndarray):
        if items.ndim != 2 or items.shape[1] != 4:
            raise ValueError(f"ItemArray must be (n, 4); got {items.shape}")
        return items.astype(np.int64, copy=False)
    out = np.empty((len(items), 4), dtype=np.int64)
    for i, it in enumerate(items):
        out[i, 0] = it[0]
        out[i, 1] = it[1]
        out[i, 2] = it[2]
        out[i, 3] = int(it[3]) if len(it) > 3 else 1
    return out


# Structured fragment-id packing: fid = ((level+1) << 52) | (pid << 32) | seq.
# A partition runs Phase 1 at most once per merge level, so (level, pid, seq)
# — with seq counting that run's fragments — is globally unique *without any
# shared counter*. Every executor backend (serial, thread, process) therefore
# mints bit-identical fids, which is what makes circuits reproducible across
# backends and lets out-of-process Phase-1 runs allocate ids independently.
_FID_LEVEL_SHIFT = 52
_FID_PID_SHIFT = 32


def make_fid(level: int, pid: int, seq: int) -> int:
    """Deterministic, coordination-free fragment id for (level, pid, seq)."""
    if not (0 <= pid < (1 << (_FID_LEVEL_SHIFT - _FID_PID_SHIFT))):
        raise ValueError(f"pid {pid} out of fid range")
    if not (0 <= seq < (1 << _FID_PID_SHIFT)):
        raise ValueError(f"fragment seq {seq} out of fid range")
    return ((level + 1) << _FID_LEVEL_SHIFT) | (pid << _FID_PID_SHIFT) | seq


@dataclass
class Fragment:
    """One local path or cycle found by Phase 1.

    Attributes
    ----------
    fid:
        Globally unique fragment id (assigned by :class:`FragmentStore`).
    kind:
        ``"path"`` (OB→OB; becomes a coarse edge) or ``"cycle"``.
    level:
        Merge-tree level at which Phase 1 created it.
    pid:
        Partition that created it.
    src, dst:
        Endpoints; equal for cycles.
    items:
        The body as an ItemArray (see module docstring). May be ``None``
        when the body has been spilled to disk — fetch through the store,
        not directly.
    n_edges:
        Number of *raw* edges the fragment expands to (cached so memory
        accounting and sanity checks never force a load from disk).
    """

    fid: int
    kind: str
    level: int
    pid: int
    src: int
    dst: int
    items: np.ndarray | None
    n_edges: int

    def junctions(self) -> list[int]:
        """The vertex sequence at this fragment's own level (src first)."""
        if self.items is None:
            raise ValueError(f"fragment {self.fid} body is spilled; use the store")
        return [self.src] + self.items[:, 2].tolist()


class FragmentBatch:
    """Picklable per-(partition, level) fragment sink for one Phase-1 run.

    Duck-types the :class:`FragmentStore` surface Phase 1 touches
    (:meth:`new_fragment` and :meth:`get(...).n_edges <get>`), but assigns
    structured ids via :func:`make_fid` and buffers the fragments locally so
    the run can execute in a worker process and travel back through a pickle.
    The engine's commit hook then :meth:`adopts <FragmentStore.adopt>` the
    batch into the global store in pid order — the only store mutation point.

    The batch pickles *columnar*: all bodies concatenate into one packed
    ItemArray plus an ``(k, 7)`` metadata table, so the worker→parent copy is
    a few raw buffers regardless of how many fragments the run produced.

    ``known_edges`` maps previously-registered fragment ids (the coarse
    OB-pair edges entering this level) to their raw-edge counts, the one
    piece of store metadata Phase 1 reads for fragments it did not create.
    """

    def __init__(self, pid: int, level: int, known_edges: dict[int, int] | None = None):
        self.pid = pid
        self.level = level
        self.fragments: list[Fragment] = []
        self._known = dict(known_edges or {})
        self._by_fid: dict[int, Fragment] = {}
        # Range-check (level, pid) once; per-fragment ids are base + seq.
        self._fid_base = make_fid(level, pid, 0)

    def new_fragment(
        self, kind: str, level: int, pid: int, src: int, dst: int, items,
        n_edges: int,
    ) -> Fragment:
        """Register a fragment under a structured (level, pid, seq) fid."""
        if kind not in _KINDS:
            raise ValueError(f"bad fragment kind {kind!r}")
        if kind == KIND_CYCLE and src != dst:
            raise ValueError("cycle fragments must have src == dst")
        seq = len(self.fragments)
        if seq >= (1 << _FID_PID_SHIFT):
            raise ValueError(f"fragment seq {seq} out of fid range")
        frag = Fragment(self._fid_base + seq, kind, level, pid, src, dst,
                        as_items(items), n_edges)
        self.fragments.append(frag)
        self._by_fid[frag.fid] = frag
        return frag

    def get(self, fid: int) -> Fragment:
        """Metadata lookup: batch-local fragments, else known prior paths."""
        frag = self._by_fid.get(fid)
        if frag is not None:
            return frag
        # A stub carrying the only field Phase 1 reads for prior fragments.
        return Fragment(fid, KIND_PATH, -1, -1, -1, -1, None, self._known[fid])

    # ---- columnar pickling -------------------------------------------------
    def __getstate__(self) -> dict:
        frags = self.fragments
        k = len(frags)
        meta = np.empty((k, 7), dtype=np.int64)
        for i, f in enumerate(frags):
            meta[i] = (f.fid, _KINDS.index(f.kind), f.level, f.pid, f.src,
                       f.dst, f.n_edges)
        lengths = np.fromiter(
            (f.items.shape[0] for f in frags), dtype=np.int64, count=k
        )
        packed = (
            np.concatenate([f.items for f in frags]) if k else empty_items()
        )
        return {
            "pid": self.pid,
            "level": self.level,
            "known": self._known,
            "meta": meta,
            "lengths": lengths,
            "packed": packed,
        }

    def __setstate__(self, state: dict) -> None:
        self.pid = state["pid"]
        self.level = state["level"]
        self._known = state["known"]
        self.fragments = []
        self._by_fid = {}
        self._fid_base = make_fid(self.level, self.pid, 0)
        meta, lengths, packed = state["meta"], state["lengths"], state["packed"]
        bounds = np.cumsum(lengths)[:-1] if lengths.size else lengths
        bodies = np.split(packed, bounds) if lengths.size else []
        for row, items in zip(meta, bodies):
            fid, kind_ix, level, pid, src, dst, n_edges = row.tolist()
            frag = Fragment(fid, _KINDS[kind_ix], level, pid, src, dst,
                            items, n_edges)
            self.fragments.append(frag)
            self._by_fid[fid] = frag


class FragmentStore:
    """Registry of fragments with optional disk spill of bodies.

    With ``spill_dir`` set, :meth:`spill` writes a fragment's ItemArray to
    ``<spill_dir>/frag_<fid>.npy`` — a raw ``.npy`` buffer dump, no
    per-element encoding — and drops it from memory: the paper's "persist
    the mapping to disk ... allows the sets L and I to be removed to
    conserve memory". :meth:`items_of` transparently loads spilled bodies.
    """

    def __init__(self, spill_dir: str | os.PathLike | None = None):
        self._frags: dict[int, Fragment] = {}
        self._next = 0
        self.spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
        #: Total raw edges across registered fragments (diagnostics). Note
        #: fragments nest, so this exceeds the graph's edge count; the sum
        #: over *cycle* fragments alone equals it.
        self.total_edges = 0
        # Per-level registry of fids whose bodies may still be in memory —
        # spill_level() drains from here instead of scanning every fragment
        # ever registered (which made it O(total fragments) *per level*).
        self._unspilled_by_level: dict[int, list[int]] = {}
        # The store is shared by all partition threads of a run (in a real
        # cluster each machine has its own disk; here one registry stands in
        # for all of them), so registration/spill must be thread-safe.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # A lock is not picklable; the store otherwise is (fragment bodies are
        # raw arrays). Needed so a full RunContext can travel back from a
        # scenario fan-out worker process.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._frags)

    def __contains__(self, fid: int) -> bool:
        return fid in self._frags

    def new_fragment(
        self, kind: str, level: int, pid: int, src: int, dst: int, items,
        n_edges: int,
    ) -> Fragment:
        """Register a fragment and assign it the next fid."""
        if kind not in _KINDS:
            raise ValueError(f"bad fragment kind {kind!r}")
        if kind == KIND_CYCLE and src != dst:
            raise ValueError("cycle fragments must have src == dst")
        items = as_items(items)
        with self._lock:
            frag = Fragment(self._next, kind, level, pid, src, dst, items, n_edges)
            self._frags[frag.fid] = frag
            self._next += 1
            self.total_edges += n_edges
            self._unspilled_by_level.setdefault(level, []).append(frag.fid)
        return frag

    def adopt(self, frag: Fragment) -> Fragment:
        """Register a pre-built fragment (e.g. from a :class:`FragmentBatch`).

        The fragment keeps its structured fid; ids minted by
        :func:`make_fid` cannot collide with each other, and ``_next`` is
        bumped past them so mixed sequential allocation stays safe.
        """
        with self._lock:
            if frag.fid in self._frags:
                raise ValueError(f"fragment {frag.fid} already registered")
            self._frags[frag.fid] = frag
            self._next = max(self._next, frag.fid + 1)
            self.total_edges += frag.n_edges
            if frag.items is not None:
                self._unspilled_by_level.setdefault(frag.level, []).append(frag.fid)
        return frag

    def get(self, fid: int) -> Fragment:
        """Fragment metadata by id (body may be spilled)."""
        return self._frags[fid]

    def items_of(self, fid: int) -> np.ndarray:
        """Fragment body (ItemArray), loading from the spill dir if needed."""
        frag = self._frags[fid]
        if frag.items is not None:
            return frag.items
        return np.load(self._spill_path(fid))

    def spill(self, fid: int) -> None:
        """Persist the body of ``fid`` to disk and free it from memory.

        Thread-safe: concurrent spills of the same fragment (partitions
        spill their level's fragments independently) write once.
        """
        if self.spill_dir is None:
            raise ValueError("store was created without a spill_dir")
        with self._lock:
            frag = self._frags[fid]
            items = frag.items
        if items is None:
            return
        # Write first, clear after: a concurrent spill writes identical
        # bytes (benign), and items_of never sees a cleared body without a
        # complete file behind it.
        np.save(self._spill_path(fid), items, allow_pickle=False)
        with self._lock:
            frag.items = None

    def spill_level(self, level: int) -> int:
        """Spill every in-memory body created at ``level``; returns count.

        Drains the per-level unspilled index, so repeated calls (the commit
        hook spills after every batch) cost O(new fragments at that level),
        not O(all fragments ever registered).
        """
        with self._lock:
            candidates = self._unspilled_by_level.pop(level, [])
            targets = [
                fid for fid in candidates if self._frags[fid].items is not None
            ]
        for fid in targets:
            self.spill(fid)
        return len(targets)

    def all_fragments(self) -> list[Fragment]:
        """All registered fragments (metadata records)."""
        return list(self._frags.values())

    def _spill_path(self, fid: int) -> str:
        assert self.spill_dir is not None
        return os.path.join(self.spill_dir, f"frag_{fid}.npy")


def _empty_ob_paths() -> np.ndarray:
    return np.empty((0, 3), dtype=np.int64)


def _empty_fids() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class PathMap:
    """Per-partition output of one Phase-1 run (Alg. 1's ``pathMap``).

    ``ob_paths`` are the coarse OB-pair edges handed to the next level;
    ``anchored_cycles`` are cycle fragments waiting to be spliced into the
    final circuit by Phase 3 (EB cycles, plus internal-vertex cycles that
    found no same-level pivot — the multi-component generalization noted in
    DESIGN.md).
    """

    pid: int
    level: int
    #: Path fragments as coarse edges: ``int64 (k, 3)`` rows ``(src, dst, fid)``.
    ob_paths: np.ndarray = field(default_factory=_empty_ob_paths)
    #: Raw-edge weight of each ``ob_paths`` row (``int64 (k,)``), aligned by
    #: index — together they form the next level's CoarseTable.
    ob_path_edges: np.ndarray = field(default_factory=_empty_fids)
    #: Cycle fragment ids pending Phase-3 splicing (``int64 (c,)``).
    anchored_cycles: np.ndarray = field(default_factory=_empty_fids)
    #: Count of internal-vertex cycles merged into other fragments (stats).
    n_merged_cycles: int = 0
    #: Count of trivial (zero-edge) EB tours skipped (stats).
    n_trivial: int = 0
