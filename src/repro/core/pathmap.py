"""Fragments, the pathMap, and the (spillable) fragment store.

Phase 1 (Alg. 1) replaces runs of local edges with coarse objects the paper
calls *paths* (between two odd boundary vertices — the "OB-pair" that acts as
a single coarse edge at the next level) and *cycles* (anchored at an even
boundary vertex or an internal vertex). We call both **fragments**.

A fragment's body is a sequence of *items*, each either a raw graph edge or a
reference to a lower-level fragment traversed forward or backward. This is
exactly the paper's book-keeping "persisted to disk" in Phase 1 and consumed
by Phase 3's recursive unrolling; :class:`FragmentStore` keeps it in memory
by default and can spill bodies to disk (``spill_dir``), mirroring the
paper's design that only the pathMap *metadata* stays resident.

Item encoding (plain tuples, kept deliberately simple and pickle-friendly):

``(ITEM_EDGE, eid, dst)``
    Raw undirected edge ``eid`` traversed so that it *ends* at vertex ``dst``.
``(ITEM_FRAG, fid, dst, forward)``
    Lower-level path fragment ``fid`` traversed toward ``dst``; ``forward``
    is True when traversed from its ``src`` to its ``dst``.

The implied junction sequence of a fragment is ``src`` followed by each
item's ``dst``; for cycles the last ``dst`` equals ``src``.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass, field

__all__ = [
    "ITEM_EDGE",
    "ITEM_FRAG",
    "KIND_PATH",
    "KIND_CYCLE",
    "Fragment",
    "FragmentBatch",
    "FragmentStore",
    "PathMap",
    "make_fid",
]

ITEM_EDGE = 0
ITEM_FRAG = 1

KIND_PATH = "path"
KIND_CYCLE = "cycle"

# Structured fragment-id packing: fid = ((level+1) << 52) | (pid << 32) | seq.
# A partition runs Phase 1 at most once per merge level, so (level, pid, seq)
# — with seq counting that run's fragments — is globally unique *without any
# shared counter*. Every executor backend (serial, thread, process) therefore
# mints bit-identical fids, which is what makes circuits reproducible across
# backends and lets out-of-process Phase-1 runs allocate ids independently.
_FID_LEVEL_SHIFT = 52
_FID_PID_SHIFT = 32


def make_fid(level: int, pid: int, seq: int) -> int:
    """Deterministic, coordination-free fragment id for (level, pid, seq)."""
    if not (0 <= pid < (1 << (_FID_LEVEL_SHIFT - _FID_PID_SHIFT))):
        raise ValueError(f"pid {pid} out of fid range")
    if not (0 <= seq < (1 << _FID_PID_SHIFT)):
        raise ValueError(f"fragment seq {seq} out of fid range")
    return ((level + 1) << _FID_LEVEL_SHIFT) | (pid << _FID_PID_SHIFT) | seq


@dataclass
class Fragment:
    """One local path or cycle found by Phase 1.

    Attributes
    ----------
    fid:
        Globally unique fragment id (assigned by :class:`FragmentStore`).
    kind:
        ``"path"`` (OB→OB; becomes a coarse edge) or ``"cycle"``.
    level:
        Merge-tree level at which Phase 1 created it.
    pid:
        Partition that created it.
    src, dst:
        Endpoints; equal for cycles.
    items:
        Item tuples (see module docstring). May be ``None`` when the body
        has been spilled to disk — fetch through the store, not directly.
    n_edges:
        Number of *raw* edges the fragment expands to (cached so memory
        accounting and sanity checks never force a load from disk).
    """

    fid: int
    kind: str
    level: int
    pid: int
    src: int
    dst: int
    items: list | None
    n_edges: int

    def junctions(self) -> list[int]:
        """The vertex sequence at this fragment's own level (src first)."""
        if self.items is None:
            raise ValueError(f"fragment {self.fid} body is spilled; use the store")
        out = [self.src]
        out.extend(item[2] for item in self.items)
        return out


class FragmentBatch:
    """Picklable per-(partition, level) fragment sink for one Phase-1 run.

    Duck-types the :class:`FragmentStore` surface Phase 1 touches
    (:meth:`new_fragment` and :meth:`get(...).n_edges <get>`), but assigns
    structured ids via :func:`make_fid` and buffers the fragments locally so
    the run can execute in a worker process and travel back through a pickle.
    The engine's commit hook then :meth:`adopts <FragmentStore.adopt>` the
    batch into the global store in pid order — the only store mutation point.

    ``known_edges`` maps previously-registered fragment ids (the coarse
    OB-pair edges entering this level) to their raw-edge counts, the one
    piece of store metadata Phase 1 reads for fragments it did not create.
    """

    def __init__(self, pid: int, level: int, known_edges: dict[int, int] | None = None):
        self.pid = pid
        self.level = level
        self.fragments: list[Fragment] = []
        self._known = dict(known_edges or {})
        self._by_fid: dict[int, Fragment] = {}

    def new_fragment(
        self, kind: str, level: int, pid: int, src: int, dst: int, items: list,
        n_edges: int,
    ) -> Fragment:
        """Register a fragment under a structured (level, pid, seq) fid."""
        if kind not in (KIND_PATH, KIND_CYCLE):
            raise ValueError(f"bad fragment kind {kind!r}")
        if kind == KIND_CYCLE and src != dst:
            raise ValueError("cycle fragments must have src == dst")
        fid = make_fid(level, pid, len(self.fragments))
        frag = Fragment(fid, kind, level, pid, src, dst, items, n_edges)
        self.fragments.append(frag)
        self._by_fid[fid] = frag
        return frag

    def get(self, fid: int) -> Fragment:
        """Metadata lookup: batch-local fragments, else known prior paths."""
        frag = self._by_fid.get(fid)
        if frag is not None:
            return frag
        # A stub carrying the only field Phase 1 reads for prior fragments.
        return Fragment(fid, KIND_PATH, -1, -1, -1, -1, None, self._known[fid])


class FragmentStore:
    """Registry of fragments with optional disk spill of bodies.

    With ``spill_dir`` set, :meth:`spill` pickles a fragment's item list to
    ``<spill_dir>/frag_<fid>.pkl`` and drops it from memory —the paper's
    "persist the mapping to disk ... allows the sets L and I to be removed to
    conserve memory". :meth:`items_of` transparently loads spilled bodies.
    """

    def __init__(self, spill_dir: str | os.PathLike | None = None):
        self._frags: dict[int, Fragment] = {}
        self._next = 0
        self.spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
        #: Total raw edges across registered fragments (diagnostics). Note
        #: fragments nest, so this exceeds the graph's edge count; the sum
        #: over *cycle* fragments alone equals it.
        self.total_edges = 0
        # The store is shared by all partition threads of a run (in a real
        # cluster each machine has its own disk; here one registry stands in
        # for all of them), so registration/spill must be thread-safe.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._frags)

    def __contains__(self, fid: int) -> bool:
        return fid in self._frags

    def new_fragment(
        self, kind: str, level: int, pid: int, src: int, dst: int, items: list,
        n_edges: int,
    ) -> Fragment:
        """Register a fragment and assign it the next fid."""
        if kind not in (KIND_PATH, KIND_CYCLE):
            raise ValueError(f"bad fragment kind {kind!r}")
        if kind == KIND_CYCLE and src != dst:
            raise ValueError("cycle fragments must have src == dst")
        with self._lock:
            frag = Fragment(self._next, kind, level, pid, src, dst, items, n_edges)
            self._frags[frag.fid] = frag
            self._next += 1
            self.total_edges += n_edges
        return frag

    def adopt(self, frag: Fragment) -> Fragment:
        """Register a pre-built fragment (e.g. from a :class:`FragmentBatch`).

        The fragment keeps its structured fid; ids minted by
        :func:`make_fid` cannot collide with each other, and ``_next`` is
        bumped past them so mixed sequential allocation stays safe.
        """
        with self._lock:
            if frag.fid in self._frags:
                raise ValueError(f"fragment {frag.fid} already registered")
            self._frags[frag.fid] = frag
            self._next = max(self._next, frag.fid + 1)
            self.total_edges += frag.n_edges
        return frag

    def get(self, fid: int) -> Fragment:
        """Fragment metadata by id (body may be spilled)."""
        return self._frags[fid]

    def items_of(self, fid: int) -> list:
        """Fragment body, loading from the spill directory if needed."""
        frag = self._frags[fid]
        if frag.items is not None:
            return frag.items
        path = self._spill_path(fid)
        with open(path, "rb") as f:
            return pickle.load(f)

    def spill(self, fid: int) -> None:
        """Persist the body of ``fid`` to disk and free it from memory.

        Thread-safe: concurrent spills of the same fragment (partitions
        spill their level's fragments independently) write once.
        """
        if self.spill_dir is None:
            raise ValueError("store was created without a spill_dir")
        with self._lock:
            frag = self._frags[fid]
            items = frag.items
        if items is None:
            return
        # Write first, clear after: a concurrent spill writes identical
        # bytes (benign), and items_of never sees a cleared body without a
        # complete file behind it.
        with open(self._spill_path(fid), "wb") as f:
            pickle.dump(items, f, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            frag.items = None

    def spill_level(self, level: int) -> int:
        """Spill every in-memory body created at ``level``; returns count."""
        with self._lock:
            targets = [
                f.fid
                for f in self._frags.values()
                if f.level == level and f.items is not None
            ]
        for fid in targets:
            self.spill(fid)
        return len(targets)

    def all_fragments(self) -> list[Fragment]:
        """All registered fragments (metadata records)."""
        return list(self._frags.values())

    def _spill_path(self, fid: int) -> str:
        assert self.spill_dir is not None
        return os.path.join(self.spill_dir, f"frag_{fid}.pkl")


@dataclass
class PathMap:
    """Per-partition output of one Phase-1 run (Alg. 1's ``pathMap``).

    ``ob_paths`` are the coarse OB-pair edges handed to the next level;
    ``anchored_cycles`` are cycle fragments waiting to be spliced into the
    final circuit by Phase 3 (EB cycles, plus internal-vertex cycles that
    found no same-level pivot — the multi-component generalization noted in
    DESIGN.md).
    """

    pid: int
    level: int
    #: Path fragments as coarse edges: tuples ``(src, dst, fid)``.
    ob_paths: list[tuple[int, int, int]] = field(default_factory=list)
    #: Cycle fragment ids pending Phase-3 splicing.
    anchored_cycles: list[int] = field(default_factory=list)
    #: Count of internal-vertex cycles merged into other fragments (stats).
    n_merged_cycles: int = 0
    #: Count of trivial (zero-edge) EB tours skipped (stats).
    n_trivial: int = 0
