"""Memory-state analysis: the paper's Fig. 8 "current / ideal / proposed".

The measured series come from actual runs (the driver records state Longs per
partition per level, for whichever §5 strategy was selected). This module
adds the two *synthetic* series the paper plots alongside:

* **ideal** — the weak-scaling aspiration (§4.3): a merged partition's state
  matches its children's initial state, so the *average* per-partition state
  stays constant at its level-0 value and the cumulative is that average
  times the number of live partitions at each level;
* **analytic proposed** — the paper's §5 back-of-envelope applied to a
  *measured eager trace*: remote-edge Longs halve under dedup, and under
  deferred transfer a level only holds the remote edges due to become local
  at the next merge. Comparing this against a *measured* ``proposed`` run is
  an extension beyond the paper (which only analyzes).
"""

from __future__ import annotations

from dataclasses import dataclass

from .driver import ExecutionReport
from .merging import LONGS

__all__ = ["Fig8Series", "ideal_series", "measured_series", "fig8_table"]


@dataclass(frozen=True)
class Fig8Series:
    """One line of Fig. 8: per-level cumulative and average state Longs."""

    label: str
    levels: list[int]
    cumulative: list[float]
    average: list[float]


def measured_series(report: ExecutionReport, label: str | None = None) -> Fig8Series:
    """Per-level measured state from a run (whatever its strategy was)."""
    rows = report.state_by_level()
    return Fig8Series(
        label=label or report.strategy,
        levels=[r["level"] for r in rows],
        cumulative=[float(r["cumulative_longs"]) for r in rows],
        average=[float(r["avg_longs"]) for r in rows],
    )


def ideal_series(report: ExecutionReport) -> Fig8Series:
    """The paper's "ideal" line derived from a run's level-0 state.

    Average is pinned at the level-0 average; cumulative multiplies it by
    the number of live partitions per level (halving as the tree closes).
    """
    rows = report.state_by_level()
    if not rows:
        return Fig8Series("ideal", [], [], [])
    avg0 = float(rows[0]["avg_longs"])
    levels = [r["level"] for r in rows]
    n_parts = [max(1, r["n_partitions"]) for r in rows]
    return Fig8Series(
        label="ideal",
        levels=levels,
        cumulative=[avg0 * n for n in n_parts],
        average=[avg0] * len(levels),
    )


def fig8_table(series: list[Fig8Series]) -> list[dict]:
    """Join several series into printable per-level rows."""
    levels = sorted({l for s in series for l in s.levels})
    rows = []
    for l in levels:
        row: dict = {"level": l}
        for s in series:
            if l in s.levels:
                i = s.levels.index(l)
                row[f"{s.label}_cumulative"] = s.cumulative[i]
                row[f"{s.label}_avg"] = s.average[i]
        rows.append(row)
    return rows


def remote_edge_longs(n_half_edges: int) -> int:
    """Longs charged for remote half-edges (2 per row, see LONGS)."""
    return LONGS.REMOTE * n_half_edges
