"""Phase 3: single-pass reconstruction of the full Euler circuit.

The paper describes Phase 3 (§3.2) but defers its implementation; we build
it in full. Inputs are the fragment store (the per-level book-keeping that
Phase 1 "persisted to disk") and the pathMaps, from which two things follow:

* a **base cycle** — a cycle fragment created at the root level (after the
  last merge there are no remote edges, so the root's Phase 1 yields only
  cycles; with a connected graph every other root cycle merges into the
  first via ``mergeInto``);
* a **pending index** — every *anchored* cycle fragment (EB cycles and
  unmerged internal cycles from all levels) indexed by each of its junction
  vertices. Those are the paper's *pivot vertices*: whenever the unrolling
  emits a vertex with pending cycles, it switches to unrolling the pending
  cycle (rotated to start there) and resumes afterwards — "recursively
  unrolling edges of a different path or cycle passing through this pivot
  vertex and created at a lower level".

The unroll is iterative (explicit stack of item iterators, no recursion
limits) and expands each coarse item exactly once, so the whole pass is
linear in the number of edges.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import InvariantViolation
from .circuit import EulerCircuit
from .pathmap import ITEM_EDGE, ITEM_FRAG, KIND_CYCLE, FragmentStore

__all__ = ["reconstruct_circuit", "build_pending_index"]


def build_pending_index(
    store: FragmentStore, anchored_fids
) -> dict[int, list[int]]:
    """Index all anchored cycles by every junction vertex they pass through.

    Returns ``vertex -> [fid, ...]`` in deterministic (fid) order. Indexing
    *all* junctions — not just the anchor — is what makes splicing work even
    when a cycle's anchor vertex is only reachable deep inside another
    fragment's expansion (the multi-component generalization in DESIGN.md).
    """
    index: dict[int, list[int]] = defaultdict(list)
    fids = sorted(set(anchored_fids))
    for fid in fids:
        frag = store.get(fid)
        if frag.kind != KIND_CYCLE:
            raise InvariantViolation(f"anchored fragment {fid} is not a cycle")
        items = store.items_of(fid)
        verts = {frag.src}
        verts.update(item[2] for item in items)
        for v in verts:
            index[v].append(fid)
    return dict(index)


def _reverse_items(items: list, src: int) -> list:
    """Item list for traversing a fragment backwards (dst -> src)."""
    junctions = [src]
    junctions.extend(item[2] for item in items)
    out = []
    for i in range(len(items) - 1, -1, -1):
        it = items[i]
        new_dst = junctions[i]
        if it[0] == ITEM_EDGE:
            out.append((ITEM_EDGE, it[1], new_dst))
        else:
            out.append((ITEM_FRAG, it[1], new_dst, not it[3]))
    return out


def _rotate_to(items: list, src: int, pivot: int) -> list:
    """Rotate a cycle's items so its junction walk starts/ends at ``pivot``."""
    if pivot == src:
        return items
    for i, it in enumerate(items):
        if it[2] == pivot:
            return items[i + 1 :] + items[: i + 1]
    raise InvariantViolation(f"pivot {pivot} not on cycle anchored at {src}")


def reconstruct_circuit(
    store: FragmentStore,
    anchored_fids,
    base_fid: int,
) -> EulerCircuit:
    """Unroll the fragment hierarchy into the final Euler circuit.

    Parameters
    ----------
    store:
        The fragment registry (bodies may be spilled; they are loaded on
        demand, once each).
    anchored_fids:
        Fragment ids of every anchored cycle produced across all levels
        (every ``KIND_CYCLE`` fragment; path fragments are consumed by
        reference instead). ``base_fid`` may be included; it is skipped.
    base_fid:
        The root-level cycle to start from (the driver passes the root
        partition's first anchored cycle).

    Raises
    ------
    InvariantViolation
        If any anchored cycle is never reached — with a connected Eulerian
        input this cannot happen; it indicates a bug or a disconnected graph
        that slipped past validation.
    """
    pending = build_pending_index(store, anchored_fids)
    consumed: set[int] = set()
    base = store.get(base_fid)
    consumed.add(base_fid)

    out_vertices: list[int] = [base.src]
    out_eids: list[int] = []
    stack: list = []

    def splice_at(v: int) -> None:
        fids = pending.get(v)
        if not fids:
            return
        fresh = [f for f in fids if f not in consumed]
        pending[v] = []
        for fid in reversed(fresh):
            consumed.add(fid)
            frag = store.get(fid)
            items = _rotate_to(store.items_of(fid), frag.src, v)
            stack.append(iter(items))

    stack.append(iter(store.items_of(base_fid)))
    splice_at(base.src)
    while stack:
        it = stack[-1]
        item = next(it, None)
        if item is None:
            stack.pop()
            continue
        if item[0] == ITEM_EDGE:
            out_eids.append(item[1])
            out_vertices.append(item[2])
            splice_at(item[2])
        else:
            _, fid, _dst, forward = item
            frag = store.get(fid)
            items = store.items_of(fid)
            if not forward:
                items = _reverse_items(items, frag.src)
            stack.append(iter(items))
            # The entry vertex was already emitted (it equals the current
            # walk position); the fragment's own items emit the rest.

    leftovers = sorted(
        {f for fids in pending.values() for f in fids if f not in consumed}
    )
    if leftovers:
        # Completeness fallback: a pending cycle can strand when its only
        # contact vertices with the emitted walk are *interior* to its coarse
        # items (so no junction-level splice point exists). Expand each
        # stranded cycle to raw edges and splice it at any shared vertex;
        # repeat to a fixpoint (a stranded cycle may only touch another
        # stranded cycle's region).
        out_vertices, out_eids, leftovers = _splice_stranded(
            store, out_vertices, out_eids, leftovers
        )
    if leftovers:
        raise InvariantViolation(
            f"{len(leftovers)} anchored cycles were never spliced "
            f"(e.g. fragment ids {leftovers[:8]}); the input graph is "
            "disconnected or an invariant was violated"
        )
    return EulerCircuit(
        vertices=np.array(out_vertices, dtype=np.int64),
        edge_ids=np.array(out_eids, dtype=np.int64),
    )


def _expand_plain(store: FragmentStore, fid: int) -> tuple[list[int], list[int]]:
    """Fully expand one fragment to raw vertices/edges, with no splicing."""
    frag = store.get(fid)
    verts = [frag.src]
    eids: list[int] = []
    stack = [iter(store.items_of(fid))]
    while stack:
        item = next(stack[-1], None)
        if item is None:
            stack.pop()
            continue
        if item[0] == ITEM_EDGE:
            eids.append(item[1])
            verts.append(item[2])
        else:
            _, sub_fid, _dst, forward = item
            sub = store.get(sub_fid)
            items = store.items_of(sub_fid)
            if not forward:
                items = _reverse_items(items, sub.src)
            stack.append(iter(items))
    return verts, eids


def _splice_stranded(
    store: FragmentStore,
    out_vertices: list[int],
    out_eids: list[int],
    leftovers: list[int],
) -> tuple[list[int], list[int], list[int]]:
    """Splice stranded cycles into the walk at any shared raw vertex.

    One splice per round (positions shift), repeated to a fixpoint; returns
    the possibly-shorter leftover list (non-empty only for disconnected
    inputs).
    """
    remaining = sorted(leftovers, key=lambda f: (-store.get(f).level, f))
    while remaining:
        position: dict[int, int] = {}
        for i, v in enumerate(out_vertices):
            if v not in position:
                position[v] = i
        spliced_fid = None
        for fid in remaining:
            verts, eids = _expand_plain(store, fid)
            anchor = next((i for i, v in enumerate(verts) if v in position), None)
            if anchor is None:
                continue
            v = verts[anchor]
            # Rotate the closed raw walk to start and end at v.
            rot_v = verts[anchor:-1] + verts[: anchor + 1]
            rot_e = eids[anchor:] + eids[:anchor]
            pos = position[v]
            out_vertices = out_vertices[:pos] + rot_v + out_vertices[pos + 1 :]
            out_eids = out_eids[:pos] + rot_e + out_eids[pos:]
            spliced_fid = fid
            break
        if spliced_fid is None:
            break  # fixpoint: nothing left touches the walk
        remaining = [f for f in remaining if f != spliced_fid]
    return out_vertices, out_eids, remaining

