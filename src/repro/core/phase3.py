"""Phase 3: single-pass reconstruction of the full Euler circuit.

The paper describes Phase 3 (§3.2) but defers its implementation; we build
it in full. Inputs are the fragment store (the per-level book-keeping that
Phase 1 "persisted to disk") and the pathMaps, from which two things follow:

* a **base cycle** — a cycle fragment created at the root level (after the
  last merge there are no remote edges, so the root's Phase 1 yields only
  cycles; with a connected graph every other root cycle merges into the
  first via ``mergeInto``);
* a **pending index** — every *anchored* cycle fragment (EB cycles and
  unmerged internal cycles from all levels) indexed by each of its junction
  vertices. Those are the paper's *pivot vertices*: whenever the unrolling
  emits a vertex with pending cycles, it switches to unrolling the pending
  cycle (rotated to start there) and resumes afterwards — "recursively
  unrolling edges of a different path or cycle passing through this pivot
  vertex and created at a lower level".

The unroll consumes ItemArrays (packed ``int64 (n, 4)`` bodies, see
:mod:`repro.core.pathmap`): fragment reversal and rotation are pure array
ops (:func:`_reverse_items` / :func:`_rotate_to`), and each pushed body's
columns are extracted to flat lists in one C-speed pass. The emit loop
itself stays scalar — the pending-splice check is inherently per emitted
vertex, and on real workloads pending junctions are dense (level-0 EB
cycles touch most vertices), so a bulk-slice scheme would degenerate into
single-row array appends. :func:`_expand_plain`, which faces no pending
checks, *is* segment-vectorized: contiguous raw-edge runs between fragment
references are bulk-copied as slices. Each coarse item expands exactly
once, so the pass is linear in the number of edges either way.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import InvariantViolation
from .circuit import EulerCircuit
from .pathmap import ITEM_EDGE, ITEM_FRAG, KIND_CYCLE, FragmentStore

__all__ = ["reconstruct_circuit", "build_pending_index"]


def build_pending_index(
    store: FragmentStore, anchored_fids
) -> dict[int, list[int]]:
    """Index all anchored cycles by every junction vertex they pass through.

    Returns ``vertex -> [fid, ...]`` in deterministic (fid) order. Indexing
    *all* junctions — not just the anchor — is what makes splicing work even
    when a cycle's anchor vertex is only reachable deep inside another
    fragment's expansion (the multi-component generalization in DESIGN.md).
    """
    index: dict[int, list[int]] = defaultdict(list)
    fids = sorted(set(int(f) for f in anchored_fids))
    for fid in fids:
        frag = store.get(fid)
        if frag.kind != KIND_CYCLE:
            raise InvariantViolation(f"anchored fragment {fid} is not a cycle")
        items = store.items_of(fid)
        verts = np.unique(np.append(items[:, 2], frag.src))
        for v in verts.tolist():
            index[v].append(fid)
    return dict(index)


def _reverse_items(items: np.ndarray, src: int) -> np.ndarray:
    """ItemArray for traversing a fragment backwards (dst -> src).

    Row ``i`` of the result is row ``n-1-i`` of the input with its ``dst``
    replaced by the *preceding* junction and its direction flag flipped
    (the flip only matters for ``ITEM_FRAG`` rows; edge rows keep a
    consistent traversal direction for free).
    """
    n = items.shape[0]
    out = items[::-1].copy()
    junctions = np.empty(n, dtype=np.int64)
    if n:
        junctions[0] = src
        junctions[1:] = items[:-1, 2]
    out[:, 2] = junctions[::-1]
    out[:, 3] = 1 - out[:, 3]
    return out


def _rotate_to(items: np.ndarray, src: int, pivot: int) -> np.ndarray:
    """Rotate a cycle's items so its junction walk starts/ends at ``pivot``."""
    if pivot == src:
        return items
    hits = np.flatnonzero(items[:, 2] == pivot)
    if hits.size == 0:
        raise InvariantViolation(f"pivot {pivot} not on cycle anchored at {src}")
    i = int(hits[0])
    return np.concatenate((items[i + 1:], items[:i + 1]))


def reconstruct_circuit(
    store: FragmentStore,
    anchored_fids,
    base_fid: int,
) -> EulerCircuit:
    """Unroll the fragment hierarchy into the final Euler circuit.

    Parameters
    ----------
    store:
        The fragment registry (bodies may be spilled; they are loaded on
        demand, once each).
    anchored_fids:
        Fragment ids of every anchored cycle produced across all levels
        (every ``KIND_CYCLE`` fragment; path fragments are consumed by
        reference instead). ``base_fid`` may be included; it is skipped.
    base_fid:
        The root-level cycle to start from (the driver passes the root
        partition's first anchored cycle).

    Raises
    ------
    InvariantViolation
        If any anchored cycle is never reached — with a connected Eulerian
        input this cannot happen; it indicates a bug or a disconnected graph
        that slipped past validation.
    """
    pending = build_pending_index(store, anchored_fids)
    consumed: set[int] = set()
    base = store.get(base_fid)
    consumed.add(base_fid)

    out_vertices: list[int] = [base.src]
    out_eids: list[int] = []
    stack: list = []  # frames: [tags, refs, dsts, fwds, pos]

    def push(items: np.ndarray) -> None:
        # Column lists, extracted once per body (C-speed): the unroll loop
        # itself stays scalar because the pending-splice check is inherently
        # per emitted vertex, and on real workloads the pending junctions
        # are *dense* (level-0 EB cycles touch most vertices), so a
        # bulk-run/slice scheme degenerates to singles with array overhead.
        stack.append([
            items[:, 0].tolist(),
            items[:, 1].tolist(),
            items[:, 2].tolist(),
            items[:, 3].tolist(),
            0,
        ])

    def splice_at(v: int) -> None:
        fids = pending.pop(v, None)
        if not fids:
            return
        fresh = [f for f in fids if f not in consumed]
        for fid in reversed(fresh):
            consumed.add(fid)
            frag = store.get(fid)
            push(_rotate_to(store.items_of(fid), frag.src, v))

    pending_get = pending.get
    push(store.items_of(base_fid))
    splice_at(base.src)
    while stack:
        frame = stack[-1]
        tags, refs, dsts, fwds, pos = frame
        if pos >= len(tags):
            stack.pop()
            continue
        frame[4] = pos + 1
        dst = dsts[pos]
        if tags[pos] == ITEM_EDGE:
            out_eids.append(refs[pos])
            out_vertices.append(dst)
            if pending_get(dst) is not None:
                splice_at(dst)
        else:
            ref = refs[pos]
            sub = store.items_of(ref)
            if not fwds[pos]:
                sub = _reverse_items(sub, store.get(ref).src)
            push(sub)
            # The entry vertex was already emitted (it equals the current
            # walk position); the fragment's own items emit the rest.

    out_vertices = np.array(out_vertices, dtype=np.int64)
    out_eids = np.array(out_eids, dtype=np.int64)
    leftovers = sorted(
        {f for fids in pending.values() for f in fids if f not in consumed}
    )
    if leftovers:
        # Completeness fallback: a pending cycle can strand when its only
        # contact vertices with the emitted walk are *interior* to its coarse
        # items (so no junction-level splice point exists). Expand each
        # stranded cycle to raw edges and splice it at any shared vertex;
        # repeat to a fixpoint (a stranded cycle may only touch another
        # stranded cycle's region).
        out_vertices, out_eids, leftovers = _splice_stranded(
            store, out_vertices, out_eids, leftovers
        )
    if leftovers:
        raise InvariantViolation(
            f"{len(leftovers)} anchored cycles were never spliced "
            f"(e.g. fragment ids {leftovers[:8]}); the input graph is "
            "disconnected or an invariant was violated"
        )
    return EulerCircuit(vertices=out_vertices, edge_ids=out_eids)


def _expand_plain(
    store: FragmentStore, fid: int
) -> tuple[np.ndarray, np.ndarray]:
    """Fully expand one fragment to raw vertices/edges, with no splicing."""
    frag = store.get(fid)
    v_parts: list[np.ndarray] = [np.array([frag.src], dtype=np.int64)]
    e_parts: list[np.ndarray] = []
    stack: list = []  # frames: [items, frag_rows, cursor, pos]

    def push(items: np.ndarray) -> None:
        frag_rows = np.flatnonzero(items[:, 0] == ITEM_FRAG).tolist()
        stack.append([items, frag_rows, 0, 0])

    push(store.items_of(fid))
    while stack:
        frame = stack[-1]
        items, frag_rows, fi, pos = frame
        if fi >= len(frag_rows):
            if pos < items.shape[0]:
                e_parts.append(items[pos:, 1])
                v_parts.append(items[pos:, 2])
            stack.pop()
            continue
        h = frag_rows[fi]
        frame[2] = fi + 1
        frame[3] = h + 1
        if h > pos:
            e_parts.append(items[pos:h, 1])
            v_parts.append(items[pos:h, 2])
        _, ref, _dst, forward = items[h].tolist()
        sub = store.items_of(ref)
        if not forward:
            sub = _reverse_items(sub, store.get(ref).src)
        push(sub)
    verts = np.concatenate(v_parts)
    eids = (
        np.concatenate(e_parts) if e_parts else np.empty(0, dtype=np.int64)
    )
    return verts, eids


def _splice_stranded(
    store: FragmentStore,
    out_vertices: np.ndarray,
    out_eids: np.ndarray,
    leftovers: list[int],
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Splice stranded cycles into the walk at any shared raw vertex.

    The walk is held as a *rope*: the original arrays stay untouched and
    each splice just records "insert cycle-node N at offset i of node P",
    so a splice is O(cycle) instead of O(walk) and the final walk is
    materialized once (the old list-concatenation rebuild made this
    quadratic in the walk length). Returns the possibly-shorter leftover
    list (non-empty only for disconnected inputs).
    """
    remaining = sorted(leftovers, key=lambda f: (-store.get(f).level, f))
    # Rope nodes: nid -> [verts, eids, inserts {offset -> [child nid, ...]}].
    # Node 0 is the base walk; every other node is a rotated stranded cycle
    # whose verts start and end at its splice vertex.
    nodes: dict[int, list] = {0: [out_vertices, out_eids, {}]}
    next_nid = 1
    # First occurrence of each vertex in *materialization order*:
    # vertex -> (order_key, nid, offset). The hierarchical key makes rope
    # positions comparable — a vertex inside a spliced cycle sits at its
    # insert position (plus a suffix), so it precedes anything after that
    # point in the parent, exactly like the repeated first-occurrence scan
    # this rope replaces. Children at one offset emit latest-added first,
    # hence the negated per-offset rank component.
    first: dict[int, tuple[tuple, int, int]] = {}
    for i, v in enumerate(out_vertices.tolist()):
        if v not in first:
            first[v] = ((i,), 0, i)
    expanded: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    while remaining:
        spliced_fid = None
        for fid in remaining:
            if fid not in expanded:
                expanded[fid] = _expand_plain(store, fid)
            verts, eids = expanded[fid]
            vlist = verts.tolist()
            anchor = next((i for i, v in enumerate(vlist) if v in first), None)
            if anchor is None:
                continue
            v = vlist[anchor]
            # Rotate the closed raw walk to start and end at v.
            rot_v = np.concatenate((verts[anchor:-1], verts[: anchor + 1]))
            rot_e = np.concatenate((eids[anchor:], eids[:anchor]))
            nid = next_nid
            next_nid += 1
            nodes[nid] = [rot_v, rot_e, {}]
            anchor_key, seg, off = first[v]
            siblings = nodes[seg][2].setdefault(off, [])
            siblings.append(nid)
            base_key = anchor_key + (-len(siblings),)
            for j, w in enumerate(rot_v.tolist()):
                key = base_key + (j,)
                known = first.get(w)
                if known is None or key < known[0]:
                    first[w] = (key, nid, j)
            spliced_fid = fid
            break
        if spliced_fid is None:
            break  # fixpoint: nothing left touches the walk
        remaining = [f for f in remaining if f != spliced_fid]

    out_vertices, out_eids = _materialize_rope(nodes)
    return out_vertices, out_eids, remaining


def _materialize_rope(nodes: dict[int, list]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the splice rope into contiguous vertex/edge arrays.

    An insert at offset ``i`` replaces the parent's vertex at ``i`` with the
    child's full closed walk (which starts and ends at that vertex); with
    several children at one offset, the latest-added emits first and each
    subsequent child drops its (duplicate) leading vertex — exactly the
    sequence repeated first-occurrence splicing used to build by list
    surgery.
    """
    v_parts: list[np.ndarray] = []
    e_parts: list[np.ndarray] = []

    def frame(nid: int, drop_first: bool) -> list:
        verts, eids, inserts = nodes[nid]
        # [verts, eids, inserts, sorted offsets, offset cursor, epos, vpos]
        return [verts, eids, inserts, sorted(inserts), 0, 0, 1 if drop_first else 0]

    stack = [frame(0, False)]
    while stack:
        fr = stack[-1]
        verts, eids, inserts, offs, oi, epos, vpos = fr
        if oi >= len(offs):
            e_parts.append(eids[epos:])
            v_parts.append(verts[vpos:])
            stack.pop()
            continue
        off = offs[oi]
        # Vertex index ``off`` is the replaced vertex; both cursors are
        # absolute node indices (``vpos`` may lead ``epos`` by one after a
        # dropped leading vertex or a consumed insert).
        e_parts.append(eids[epos:off])
        v_parts.append(verts[vpos:off])
        fr[4] = oi + 1
        fr[5] = off
        fr[6] = off + 1  # skip the replaced vertex
        children = inserts[off]
        # LIFO: push in add order so the latest-added child emits first and
        # keeps its leading vertex; the rest drop theirs.
        for i, child in enumerate(children):
            stack.append(frame(child, drop_first=i != len(children) - 1))
    return np.concatenate(v_parts), np.concatenate(e_parts)
