"""The paper's §5 *analytic* memory model, applied to a measured eager trace.

Section 5 of the paper estimates the impact of the two heuristics on the
memory trace of an eager run ("We analytically model the impact of these
two strategies on the memory usage of G40/8P and G50/8P ... based on the
previous experiments' traces"). This module reproduces that analysis:

* **dedup** — of each cut edge only one directed copy is held, so a
  partition's held-row count shrinks to the rows the placement plan assigns
  it;
* **deferred** — rows due at future merge levels leave the active
  partition entirely (they live on leaf machines), so active partitions
  hold *no* remote rows between levels.

Because this repo also *implements* the strategies, the model can be
validated: :func:`model_error` compares the modeled series against a
measured ``proposed`` run (an experiment the paper could not do).
"""

from __future__ import annotations

import numpy as np

from ..graph.partition import PartitionedGraph
from .driver import ExecutionReport
from .improvements import plan_remote_placement
from .memory_model import Fig8Series
from .merge_tree import MergeTree
from .merging import LONGS

__all__ = ["modeled_proposed_series", "model_error"]


def modeled_proposed_series(
    pg: PartitionedGraph,
    tree: MergeTree,
    eager_report: ExecutionReport,
    label: str = "modeled",
) -> Fig8Series:
    """Predict the dedup+deferred state series from an eager run's records.

    For every (level, partition) record of the eager run, the model keeps
    the vertex/local-edge/pathMap Longs unchanged and replaces the
    remote-edge component: at level 0 the partition holds only the rows the
    dedup placement assigns it whose merge level is 0; at higher levels it
    holds none (deferred shipping turns arrivals into local edges
    immediately).
    """
    placement = plan_remote_placement(pg, tree, dedup=True)
    level0_held = {
        pid: int(np.count_nonzero(placement.merge_level_by_eid[rows[:, 2]] == 0))
        for pid, rows in placement.rows_for.items()
    }

    levels: list[int] = []
    cumulative: list[float] = []
    average: list[float] = []
    for step in eager_report.run_stats.records:
        active = [r for r in step if r.census or r.state_longs]
        if not active:
            continue
        lvl = active[0].superstep
        modeled = []
        for rec in active:
            held_eager = rec.census.get("n_remote_half_edges", 0)
            if lvl == 0:
                held_model = level0_held.get(rec.pid, 0)
            else:
                held_model = 0
            modeled.append(
                rec.state_longs - LONGS.REMOTE * (held_eager - held_model)
            )
        levels.append(lvl)
        cumulative.append(float(sum(modeled)))
        average.append(float(np.mean(modeled)))
    return Fig8Series(label=label, levels=levels, cumulative=cumulative, average=average)


def model_error(modeled: Fig8Series, measured: Fig8Series) -> dict:
    """Relative error of the analytic model against a measured proposed run.

    Returns per-level relative errors on the cumulative series plus their
    mean absolute value. Levels present in only one series are skipped.
    """
    errs: dict[int, float] = {}
    for lvl, cum in zip(modeled.levels, modeled.cumulative):
        if lvl in measured.levels:
            ref = measured.cumulative[measured.levels.index(lvl)]
            if ref:
                errs[lvl] = (cum - ref) / ref
    mean_abs = float(np.mean([abs(e) for e in errs.values()])) if errs else 0.0
    return {"per_level": errs, "mean_abs_relative_error": mean_abs}
