"""The end-to-end driver — a thin façade over :mod:`repro.pipeline`.

:func:`find_euler_circuit` is the library's main entry point. The actual
work lives in the staged pipeline (``Setup`` → ``SuperstepProgram`` →
``Reconstruct``, see ARCHITECTURE.md); this module keeps the stable
call-signature, the :class:`EulerResult` return type, and re-exports
:class:`ExecutionReport` for existing imports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph
from ..pipeline import RunConfig, RunContext, run_pipeline
from ..pipeline.context import ExecutionReport  # noqa: F401  (re-export)
from .circuit import EulerCircuit
from .pathmap import FragmentStore

__all__ = ["ExecutionReport", "EulerResult", "find_euler_circuit"]


@dataclass
class EulerResult:
    """Return value of :func:`find_euler_circuit`."""

    circuit: EulerCircuit
    report: ExecutionReport
    partitioned: PartitionedGraph
    store: FragmentStore
    #: The full staged-pipeline artifact (every stage product; see
    #: :class:`repro.pipeline.RunContext`).
    context: RunContext | None = None


def find_euler_circuit(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    matching: str = "greedy",
    seed: int = 0,
    spill_dir=None,
    validate: bool = False,
    verify: bool = False,
    check_input: bool = True,
    engine_workers: int = 1,
    executor: str | None = None,
    transport: str | None = None,
    task_transport: str | None = None,
    hosts=None,
) -> EulerResult:
    """Find an Euler circuit with the partition-centric distributed algorithm.

    Parameters mirror the paper's pipeline: ``n_parts`` initial partitions
    ("machines", clamped to the vertex count) are partitioned with
    ``partitioner`` (``"ldg"`` | ``"bfs"`` | ``"hash"`` | ``"random"``),
    merged up a static tree built with ``matching`` (``"greedy"`` |
    ``"random"``) under the §5 remote-edge ``strategy`` (``"eager"`` |
    ``"dedup"`` | ``"deferred"`` | ``"proposed"``). ``spill_dir`` spills
    fragment bodies to disk; ``validate`` checks Lemmas 1–3 during Phase 1;
    ``verify`` checks the final circuit; ``check_input`` pre-checks the
    graph is Eulerian + connected.

    ``executor`` selects the BSP backend: ``"serial"`` (deterministic
    timings), ``"thread"``, ``"process"`` (one OS process per worker with
    real pickle round-trips — the truthful analogue of the paper's
    distributed machines), or ``"remote"`` (partitions on
    :class:`~repro.jobs.remote.WorkerHost` processes reached over sockets;
    requires ``hosts="host:port,..."``). ``engine_workers`` sets the pool
    width; the default ``executor=None`` keeps the historical behavior
    (serial when ``engine_workers == 1``, threads otherwise). Every backend
    produces an identical circuit and fragment store. ``transport`` picks
    how superstep messages cross process boundaries: ``"pickle"`` (portable
    default) or ``"shm"`` (single-copy POSIX shared-memory segments; only
    meaningful — and only accepted — where ``/dev/shm`` exists).
    ``task_transport`` independently selects the per-task wire codec
    (``"memory"`` | ``"pickle"`` | ``"shm"`` | ``"socket"``) round-tripped
    by the serial/thread backends — all codecs are bit-parity equivalent.

    Raises
    ------
    NotEulerianError / DisconnectedGraphError
        If the input has odd-degree vertices or disconnected edges.
    InvalidCircuitError
        If ``verify=True`` and the produced circuit is invalid (a bug).
    """
    config = RunConfig(
        n_parts=n_parts,
        partitioner=partitioner,
        strategy=strategy,
        matching=matching,
        seed=seed,
        executor=executor,
        transport=transport,
        task_transport=task_transport,
        hosts=hosts,
        workers=engine_workers,
        spill_dir=spill_dir,
        validate=validate,
        verify=verify,
        check_input=check_input,
    )
    ctx = run_pipeline(graph, config)
    return EulerResult(ctx.circuit, ctx.report, ctx.partitioned, ctx.store, ctx)
