"""The end-to-end driver: partition → merge-tree BSP run → circuit.

:func:`find_euler_circuit` is the library's main entry point. It reproduces
the paper's full pipeline on the BSP engine:

1. validate the input (Eulerian degrees + connected edges);
2. partition the graph (ParHIP substitute, §4.2);
3. build the static merge tree from the meta-graph (Alg. 2);
4. run one BSP superstep per merge level: Phase 1 concurrently on all live
   partitions, then child→parent state transfer (Phase 2), with the §5
   remote-edge strategy applied; every superstep records the Fig. 5–9
   quantities;
5. Phase 3: unroll the fragment hierarchy into the final circuit (the part
   the paper left to future work) and optionally verify it.

Each child partition's state is genuinely ``pickle``-serialized for the
transfer, so the copy_source/copy_sink timings and transfer byte counts are
real measurements (the single-machine analogue of Spark's shuffle).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from ..bsp.accounting import (
    CAT_COPY_SINK,
    CAT_COPY_SRC,
    CAT_CREATE,
    CAT_PHASE1,
    RunStats,
)
from ..bsp.engine import BSPEngine, ComputeResult
from ..errors import NotEulerianError
from ..graph.graph import Graph
from ..graph.metagraph import build_metagraph
from ..graph.partition import PartitionedGraph
from ..graph.properties import check_eulerian
from ..partitioning import partition as partition_graph
from .circuit import EulerCircuit, verify_circuit
from .improvements import DeferredStore, plan_remote_placement, strategy_flags
from .merge_tree import MergeTree, build_merge_tree
from .merging import (
    PartitionState,
    local_edges_level0,
    merge_states,
    phase1_state_longs,
)
from .phase1 import EDGE_RAW
from .pathmap import KIND_CYCLE, FragmentStore
from .phase1 import run_phase1
from .phase3 import reconstruct_circuit

__all__ = ["ExecutionReport", "EulerResult", "find_euler_circuit"]


@dataclass
class ExecutionReport:
    """Everything the benchmarks need about one run.

    The raw per-superstep records live in ``run_stats``; the convenience
    accessors below produce exactly the series of the paper's figures.
    """

    n_parts: int
    strategy: str
    partitioner: str
    matching: str
    run_stats: RunStats
    tree: MergeTree
    #: Seconds spent in Phase 3 (not part of the BSP run).
    phase3_seconds: float = 0.0
    #: Seconds spent partitioning + planning (outside the BSP run).
    setup_seconds: float = 0.0
    #: Longs resident on leaf machines per level (deferred strategy only).
    deferred_resident_longs: list[int] = field(default_factory=list)

    @property
    def n_supersteps(self) -> int:
        """Coordination cost; the paper reports ``ceil(log2 n) + 1``."""
        return self.run_stats.n_supersteps

    @property
    def total_seconds(self) -> float:
        """Fig. 5 "Total Time" analogue (BSP wall + setup + Phase 3)."""
        return self.run_stats.total_seconds + self.setup_seconds + self.phase3_seconds

    @property
    def compute_seconds(self) -> float:
        """Fig. 5 "Compute Time" analogue (user code inside supersteps)."""
        return self.run_stats.compute_seconds

    def time_split_rows(self) -> list[dict]:
        """Fig. 6 rows: per (level, partition), seconds per category."""
        rows = []
        for step in self.run_stats.records:
            for rec in step:
                if not rec.timings:
                    continue
                rows.append(
                    {
                        "level": rec.superstep,
                        "pid": rec.pid,
                        CAT_CREATE: rec.timings.get(CAT_CREATE, 0.0),
                        CAT_COPY_SRC: rec.timings.get(CAT_COPY_SRC, 0.0),
                        CAT_COPY_SINK: rec.timings.get(CAT_COPY_SINK, 0.0),
                        CAT_PHASE1: rec.timings.get(CAT_PHASE1, 0.0),
                    }
                )
        return rows

    def phase1_points(self) -> list[dict]:
        """Fig. 7 points: expected ``|B|+|I|+|L|`` vs observed Phase-1 secs."""
        pts = []
        for step in self.run_stats.records:
            for rec in step:
                if "phase1_cost" not in rec.census:
                    continue
                pts.append(
                    {
                        "level": rec.superstep,
                        "pid": rec.pid,
                        "expected_cost": rec.census["phase1_cost"],
                        "observed_seconds": rec.timings.get(CAT_PHASE1, 0.0),
                    }
                )
        return pts

    def state_by_level(self) -> list[dict]:
        """Fig. 8 series (cumulative / average Longs per level)."""
        return self.run_stats.state_by_level()

    def census_rows(self) -> list[dict]:
        """Fig. 9 rows (per level & partition vertex/edge census)."""
        return self.run_stats.census_table()

    def stage_dag(self) -> str:
        """Text rendering of the execution DAG (the paper's Fig. 3 analogue).

        One stage per superstep: which partitions ran Phase 1 at that level,
        and which child→parent state transfers crossed the following
        barrier, mirroring the Spark stage DAG the paper screenshots.
        """
        lines = []
        for s, step in enumerate(self.run_stats.records):
            ran = sorted(r.pid for r in step if "phase1_tour" in r.timings)
            lines.append(
                f"stage {s} (level {s}): Phase1 on partitions "
                f"{ran if ran else '[]'}"
            )
            transfers = sorted(
                (m.child, m.parent)
                for m in (self.tree.levels[s] if s < len(self.tree.levels) else [])
            )
            if transfers:
                arrows = ", ".join(f"P{c}->P{p}" for c, p in transfers)
                lines.append(f"  barrier; shuffle: {arrows}")
            else:
                lines.append("  barrier; done" if s == len(self.run_stats.records) - 1
                             else "  barrier")
        return "\n".join(lines)


@dataclass
class EulerResult:
    """Return value of :func:`find_euler_circuit`."""

    circuit: EulerCircuit
    report: ExecutionReport
    partitioned: PartitionedGraph
    store: FragmentStore


def find_euler_circuit(
    graph: Graph,
    n_parts: int = 4,
    partitioner: str = "ldg",
    strategy: str = "eager",
    matching: str = "greedy",
    seed: int = 0,
    spill_dir=None,
    validate: bool = False,
    verify: bool = False,
    check_input: bool = True,
    engine_workers: int = 1,
) -> EulerResult:
    """Find an Euler circuit with the partition-centric distributed algorithm.

    Parameters
    ----------
    graph:
        A connected Eulerian undirected (multi)graph.
    n_parts:
        Number of initial partitions ("machines"); clamped to the vertex
        count.
    partitioner:
        ``"ldg"`` | ``"bfs"`` | ``"hash"`` | ``"random"`` (see
        :mod:`repro.partitioning`).
    strategy:
        Remote-edge memory strategy: ``"eager"`` (the paper's implemented
        algorithm), ``"dedup"``, ``"deferred"`` or ``"proposed"``
        (= dedup + deferred, the §5 proposal).
    matching:
        Merge-tree matching policy: ``"greedy"`` (paper) or ``"random"``.
    seed:
        Seed for partitioning / random matching.
    spill_dir:
        Directory for spilling fragment bodies to disk (paper's design);
        ``None`` keeps them in memory.
    validate:
        Check Lemmas 1–3 during Phase 1 (slower; tests use it).
    verify:
        Verify the final circuit against the graph before returning.
    check_input:
        Check the graph is Eulerian+connected up front (disable only if the
        caller already did).
    engine_workers:
        Thread-pool width for concurrent partition execution (1 = serial
        deterministic timings).

    Raises
    ------
    NotEulerianError / DisconnectedGraphError
        If the input has odd-degree vertices or disconnected edges.
    InvalidCircuitError
        If ``verify=True`` and the produced circuit is invalid (a bug).
    """
    t_setup = time.perf_counter()
    if check_input:
        check_eulerian(graph)
    store = FragmentStore(spill_dir=spill_dir)
    if graph.n_edges == 0:
        empty = EulerCircuit(
            vertices=np.empty(0, dtype=np.int64), edge_ids=np.empty(0, dtype=np.int64)
        )
        report = ExecutionReport(
            n_parts=0,
            strategy=strategy,
            partitioner=partitioner,
            matching=matching,
            run_stats=RunStats(),
            tree=MergeTree(n_parts=0),
        )
        pg = PartitionedGraph(graph, np.zeros(graph.n_vertices, dtype=np.int64), 1)
        return EulerResult(empty, report, pg, store)

    n_parts = max(1, min(n_parts, graph.n_vertices))
    dedup, deferred = strategy_flags(strategy)

    pg = partition_graph(graph, n_parts, method=partitioner, seed=seed)
    mg = build_metagraph(pg)
    tree = build_merge_tree(mg, policy=matching, seed=seed)
    placement = plan_remote_placement(pg, tree, dedup=dedup)

    deferred_store = DeferredStore()
    held0: dict[int, np.ndarray] = {}
    for pid in range(n_parts):
        rows = placement.rows_for[pid]
        if deferred and rows.size:
            lv = np.fromiter(
                (placement.merge_level[int(e)] for e in rows[:, 2]),
                count=rows.shape[0],
                dtype=np.int64,
            )
            held0[pid] = rows[lv == 0]
            for level in np.unique(lv[lv > 0]).tolist():
                deferred_store.deposit(pid, int(level), rows[lv == level])
        else:
            held0[pid] = rows

    # child -> (parent, level at which it must ship its state)
    send_plan: dict[int, tuple[int, int]] = {}
    for level, merges in enumerate(tree.levels):
        for m in merges:
            send_plan[m.child] = (m.parent, level)
    n_levels = len(tree.levels) + 1
    edge_u, edge_v = graph.edge_u, graph.edge_v
    setup_seconds = time.perf_counter() - t_setup

    def compute(pid, state, messages, rec, superstep):
        level = superstep
        if superstep == 0:
            t0 = time.perf_counter()
            view = pg.view(pid)
            local_edges = local_edges_level0(view, edge_u, edge_v)
            remote_deg: dict[int, int] = {}
            for src in view.remote[:, 0].tolist():
                remote_deg[src] = remote_deg.get(src, 0) + 1
            state = PartitionState(
                pid=pid, level=0, held=held0[pid], remote_deg=remote_deg,
                member_leaves=(pid,),
            )
            rec.add_time(CAT_CREATE, time.perf_counter() - t0)
        elif messages:
            t0 = time.perf_counter()
            children = [pickle.loads(blob) for blob in messages]
            rec.add_time(CAT_COPY_SINK, time.perf_counter() - t0)
            t0 = time.perf_counter()
            local_edges = []
            for child in children:
                group = set(state.member_leaves) | set(child.member_leaves)
                extra = None
                if deferred:
                    extra = deferred_store.ship(sorted(group), level - 1)
                state, le, _ = merge_states(state, child, group, extra_rows=extra)
                local_edges.extend(le)
            remote_deg = state.remote_deg
            rec.add_time(CAT_CREATE, time.perf_counter() - t0)
        else:
            # Idle partition carrying state (skipped this level, or waiting
            # to ship at a later level). Record its resident state so the
            # Fig. 8 cumulative series counts it.
            rec.state_longs = state.state_longs() if state else 0
            target = send_plan.get(pid)
            if target is not None and target[1] == level:
                t0 = time.perf_counter()
                blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
                rec.add_time(CAT_COPY_SRC, time.perf_counter() - t0)
                rec.sent_longs = state.state_longs()
                return ComputeResult(state=None, outgoing={target[0]: [blob]})
            still_waiting = target is not None and target[1] > level
            return ComputeResult(state=state, halt=not still_waiting)

        pre_entries = state.n_pathmap_entries
        t0 = time.perf_counter()
        pathmap, stats = run_phase1(
            pid, level, local_edges, remote_deg, store, validate=validate
        )
        rec.add_time(CAT_PHASE1, time.perf_counter() - t0)
        state.level = level
        state.coarse = list(pathmap.ob_paths)
        state.n_pathmap_entries = pre_entries + len(pathmap.ob_paths) + len(
            pathmap.anchored_cycles
        )
        if store.spill_dir is not None:
            store.spill_level(level)

        # Fig. 8 unit: state as loaded for this Phase-1 run (vertices + local
        # edges + held remote edges + carried pathMap metadata).
        n_raw_local = sum(1 for le in local_edges if le[2] == EDGE_RAW)
        rec.state_longs = phase1_state_longs(
            stats.n_live_vertices,
            n_raw_local,
            len(local_edges) - n_raw_local,
            int(state.held.shape[0]),
            pre_entries,
        )
        rec.census = {
            "n_internal": stats.n_internal,
            "n_ob": stats.n_ob,
            "n_eb": stats.n_eb,
            "n_local_edges": stats.n_local_edges,
            "n_remote_half_edges": int(state.held.shape[0]),
            "phase1_cost": stats.phase1_cost,
            "n_paths": stats.n_paths,
            "n_anchored_cycles": len(pathmap.anchored_cycles),
        }

        target = send_plan.get(pid)
        if target is not None and target[1] == level:
            t0 = time.perf_counter()
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            rec.add_time(CAT_COPY_SRC, time.perf_counter() - t0)
            rec.sent_longs = state.state_longs()
            return ComputeResult(state=None, outgoing={target[0]: [blob]})
        still_waiting = target is not None
        return ComputeResult(state=state, halt=not still_waiting)

    engine = BSPEngine(max_workers=engine_workers)
    states = {pid: None for pid in range(n_parts)}
    final_states, run_stats = engine.run(states, compute, max_supersteps=n_levels + 2)

    report = ExecutionReport(
        n_parts=n_parts,
        strategy=strategy,
        partitioner=partitioner,
        matching=matching,
        run_stats=run_stats,
        tree=tree,
        setup_seconds=setup_seconds,
    )

    # ---- Phase 3 ----------------------------------------------------------
    t3 = time.perf_counter()
    cycles = [f for f in store.all_fragments() if f.kind == KIND_CYCLE]
    if not cycles:
        raise NotEulerianError("no cycle fragments produced (empty partition run?)")
    # Base = the highest-level cycle (the root partition's unified cycle).
    # Note the *partition id* running the final Phase 1 with real content may
    # differ from tree.root when empty partitions pad the tree, so we key on
    # level (and fid for determinism), not pid.
    top_level = max(f.level for f in cycles)
    base_fid = min(f.fid for f in cycles if f.level == top_level)
    circuit = reconstruct_circuit(store, [f.fid for f in cycles], base_fid)
    report.phase3_seconds = time.perf_counter() - t3

    if verify:
        verify_circuit(graph, circuit)
    return EulerResult(circuit, report, pg, store)
