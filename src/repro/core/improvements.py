"""Section-5 memory heuristics: remote-edge dedup and deferred transfer.

The paper identifies remote edges as the memory bottleneck (they accumulate
up the merge tree, Fig. 9) and proposes two mitigations it analyzes but does
not implement. We implement both as runtime *strategies* so the Fig. 8
benchmark can report measured (not only modeled) state:

* **avoid remote-edge duplication** (``dedup``) — of the two directed copies
  of a cut edge, only the partition whose group is *lighter* (fewer
  cumulative remote half-edges; the paper drops from the heavier one) keeps
  a copy; the pair of internal directed edges is reconstituted when the two
  groups merge. Halves the cumulative remote-edge state.
* **defer transfer of remote edges** (``deferred``) — remote edges that will
  only become local at a higher merge level stay on the *leaf machine* that
  loaded them (:class:`DeferredStore` models those machines' memory) and are
  shipped to the active ancestor just before the Phase-1 run that consumes
  them.

``STRATEGIES`` lists the valid driver settings; ``proposed`` means
``dedup + deferred``, the paper's combined proposal.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..graph.partition import PartitionedGraph
from .merge_tree import MergeTree

__all__ = [
    "STRATEGIES",
    "strategy_flags",
    "RemotePlacement",
    "DeferredStore",
    "plan_remote_placement",
]

#: Valid merge strategies for the driver.
STRATEGIES = ("eager", "dedup", "deferred", "proposed")


def strategy_flags(strategy: str) -> tuple[bool, bool]:
    """Map a strategy name to ``(dedup_enabled, deferred_enabled)``."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    return (
        strategy in ("dedup", "proposed"),
        strategy in ("deferred", "proposed"),
    )


@dataclass
class RemotePlacement:
    """Which partition holds which remote half-edges at load time.

    ``rows_for[pid]`` is an ``int64 (k, 4)`` array of half-edges
    ``(src, dst, eid, dst_pid)`` placed in partition ``pid``'s memory, and
    ``merge_level_by_eid`` maps each cut eid to the level at whose end the
    two incident groups merge (from the static merge tree), which the
    deferred strategy keys shipments on — a dense ``int64 (n_edges,)``
    column, −1 for non-cut edges, so planning code fancy-indexes held rows'
    eid column instead of looping a dict. :attr:`merge_level` derives the
    legacy dict view on demand.
    """

    rows_for: dict[int, np.ndarray]
    merge_level_by_eid: np.ndarray

    @property
    def merge_level(self) -> dict[int, int]:
        """``{cut eid: merge level}`` — derived view of the dense column."""
        cut = np.flatnonzero(self.merge_level_by_eid >= 0)
        return dict(zip(cut.tolist(), self.merge_level_by_eid[cut].tolist()))


def plan_remote_placement(
    pg: PartitionedGraph, tree: MergeTree, dedup: bool
) -> RemotePlacement:
    """Decide, at graph-loading time, where each remote half-edge lives.

    Without ``dedup`` each partition holds the half-edge whose source lies in
    it (the paper's current approach: both directions held, one per side).
    With ``dedup`` only one side holds it: the side whose partition carries
    fewer cumulative remote half-edges ("we select the partition that is
    heavier among the pair ... as the one to drop its remote edges", §5).
    """
    u = pg.graph.edge_u
    v = pg.graph.edge_v
    cut_eids = np.flatnonzero(~pg.local_mask)
    pu = pg.part_of[u[cut_eids]] if cut_eids.size else np.empty(0, np.int64)
    pv = pg.part_of[v[cut_eids]] if cut_eids.size else np.empty(0, np.int64)

    # Merge level per cut edge, computed once per *partition pair* (at most
    # n_parts^2, versus one tree walk per cut edge) and broadcast back.
    pair_keys, pair_inverse = np.unique(pu * pg.n_parts + pv, return_inverse=True)
    pair_levels = np.fromiter(
        (
            tree.merge_level_of(int(k) // pg.n_parts, int(k) % pg.n_parts)
            for k in pair_keys
        ),
        dtype=np.int64,
        count=pair_keys.size,
    )
    lv = pair_levels[pair_inverse]
    merge_level_by_eid = np.full(pg.graph.n_edges, -1, dtype=np.int64)
    if cut_eids.size:
        merge_level_by_eid[cut_eids] = lv

    cu = u[cut_eids]
    cv = v[cut_eids]
    if not dedup:
        # Both directed copies: (u,v) held by u's side, (v,u) by v's side.
        owners = np.concatenate((pu, pv))
        all_rows = np.empty((2 * cut_eids.size, 4), dtype=np.int64)
        all_rows[: cut_eids.size] = np.stack((cu, cv, cut_eids, pv), axis=1)
        all_rows[cut_eids.size:] = np.stack((cv, cu, cut_eids, pu), axis=1)
        eid_col = np.concatenate((cut_eids, cut_eids))
    else:
        # "Heavier" = more cumulative remote half-edges under eager
        # placement; the lighter side holds, ties break toward the smaller
        # pid.
        weight = np.zeros(pg.n_parts, dtype=np.int64)
        np.add.at(weight, pu, 1)
        np.add.at(weight, pv, 1)
        wa, wb = weight[pu], weight[pv]
        a_holds = (wa < wb) | ((wa == wb) & (pu <= pv))
        owners = np.where(a_holds, pu, pv)
        all_rows = np.stack(
            (
                np.where(a_holds, cu, cv),
                np.where(a_holds, cv, cu),
                cut_eids,
                np.where(a_holds, pv, pu),
            ),
            axis=1,
        )
        eid_col = cut_eids

    # Group rows by owning partition (within a partition: ascending eid).
    order = np.lexsort((eid_col, owners))
    all_rows = all_rows[order]
    owners = owners[order]
    starts = np.searchsorted(owners, np.arange(pg.n_parts + 1))
    rows_arr = {
        pid: all_rows[starts[pid]:starts[pid + 1]] for pid in range(pg.n_parts)
    }
    return RemotePlacement(
        rows_for=rows_arr,
        merge_level_by_eid=merge_level_by_eid,
    )


class DeferredStore:
    """The leaf machines' memory under the deferred-transfer strategy.

    Holds, per *original* leaf partition, the remote half-edge rows bucketed
    by the merge level at which they become local. The driver *ships* a
    bucket to the active ancestor just before the ancestor's Phase-1 run at
    ``level + 1``; shipped buckets leave the store, mirroring the freed leaf
    memory. :meth:`resident_longs` reports the Longs the leaves still hold
    (counted separately from active-partition state, as in the paper's
    Fig. 8 analysis, which plots the *active* partitions' state).
    """

    def __init__(self) -> None:
        self._buckets: dict[int, dict[int, list[np.ndarray]]] = defaultdict(dict)

    def deposit(self, leaf_pid: int, level: int, rows: np.ndarray) -> None:
        """Store rows on ``leaf_pid``'s machine for shipment after ``level``."""
        if rows.size == 0:
            return
        self._buckets[leaf_pid].setdefault(level, []).append(rows)

    def ship(self, leaf_pids, level: int) -> np.ndarray:
        """Remove and return all rows on the given leaves due at ``level``."""
        out: list[np.ndarray] = []
        for pid in leaf_pids:
            buckets = self._buckets.get(pid)
            if buckets and level in buckets:
                out.extend(buckets.pop(level))
        if not out:
            return np.empty((0, 4), dtype=np.int64)
        return np.concatenate(out, axis=0)

    def resident_longs(self, longs_per_row: int = 2) -> int:
        """Longs still parked on leaf machines (2 per half-edge by default)."""
        total = 0
        for buckets in self._buckets.values():
            for chunks in buckets.values():
                total += sum(c.shape[0] for c in chunks)
        return total * longs_per_row
