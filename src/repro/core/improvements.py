"""Section-5 memory heuristics: remote-edge dedup and deferred transfer.

The paper identifies remote edges as the memory bottleneck (they accumulate
up the merge tree, Fig. 9) and proposes two mitigations it analyzes but does
not implement. We implement both as runtime *strategies* so the Fig. 8
benchmark can report measured (not only modeled) state:

* **avoid remote-edge duplication** (``dedup``) — of the two directed copies
  of a cut edge, only the partition whose group is *lighter* (fewer
  cumulative remote half-edges; the paper drops from the heavier one) keeps
  a copy; the pair of internal directed edges is reconstituted when the two
  groups merge. Halves the cumulative remote-edge state.
* **defer transfer of remote edges** (``deferred``) — remote edges that will
  only become local at a higher merge level stay on the *leaf machine* that
  loaded them (:class:`DeferredStore` models those machines' memory) and are
  shipped to the active ancestor just before the Phase-1 run that consumes
  them.

``STRATEGIES`` lists the valid driver settings; ``proposed`` means
``dedup + deferred``, the paper's combined proposal.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..graph.partition import PartitionedGraph
from .merge_tree import MergeTree

__all__ = [
    "STRATEGIES",
    "strategy_flags",
    "RemotePlacement",
    "DeferredStore",
    "plan_remote_placement",
]

#: Valid merge strategies for the driver.
STRATEGIES = ("eager", "dedup", "deferred", "proposed")


def strategy_flags(strategy: str) -> tuple[bool, bool]:
    """Map a strategy name to ``(dedup_enabled, deferred_enabled)``."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    return (
        strategy in ("dedup", "proposed"),
        strategy in ("deferred", "proposed"),
    )


@dataclass
class RemotePlacement:
    """Which partition holds which remote half-edges at load time.

    ``rows_for[pid]`` is an ``int64 (k, 4)`` array of half-edges
    ``(src, dst, eid, dst_pid)`` placed in partition ``pid``'s memory, and
    ``merge_level`` maps each cut eid to the level at whose end the two
    incident groups merge (from the static merge tree), which the deferred
    strategy keys shipments on.
    """

    rows_for: dict[int, np.ndarray]
    merge_level: dict[int, int]


def plan_remote_placement(
    pg: PartitionedGraph, tree: MergeTree, dedup: bool
) -> RemotePlacement:
    """Decide, at graph-loading time, where each remote half-edge lives.

    Without ``dedup`` each partition holds the half-edge whose source lies in
    it (the paper's current approach: both directions held, one per side).
    With ``dedup`` only one side holds it: the side whose partition carries
    fewer cumulative remote half-edges ("we select the partition that is
    heavier among the pair ... as the one to drop its remote edges", §5).
    """
    u = pg.graph.edge_u
    v = pg.graph.edge_v
    cut_eids = np.flatnonzero(~pg.local_mask)
    pu = pg.part_of[u[cut_eids]] if cut_eids.size else np.empty(0, np.int64)
    pv = pg.part_of[v[cut_eids]] if cut_eids.size else np.empty(0, np.int64)

    merge_level = {
        int(e): tree.merge_level_of(int(a), int(b))
        for e, a, b in zip(cut_eids, pu, pv)
    }

    rows: dict[int, list[tuple[int, int, int, int]]] = defaultdict(list)
    if not dedup:
        for e, a, b in zip(cut_eids.tolist(), pu.tolist(), pv.tolist()):
            uu, vv = int(u[e]), int(v[e])
            rows[a].append((uu, vv, e, b))
            rows[b].append((vv, uu, e, a))
    else:
        # "Heavier" = more cumulative remote half-edges under eager placement.
        weight = np.zeros(pg.n_parts, dtype=np.int64)
        np.add.at(weight, pu, 1)
        np.add.at(weight, pv, 1)
        for e, a, b in zip(cut_eids.tolist(), pu.tolist(), pv.tolist()):
            uu, vv = int(u[e]), int(v[e])
            # Lighter side holds; ties break toward the smaller pid.
            if (weight[a], a) <= (weight[b], b):
                rows[a].append((uu, vv, e, b))
            else:
                rows[b].append((vv, uu, e, a))

    rows_arr = {
        pid: (
            np.array(r, dtype=np.int64).reshape(-1, 4)
            if r
            else np.empty((0, 4), dtype=np.int64)
        )
        for pid, r in rows.items()
    }
    for pid in range(pg.n_parts):
        rows_arr.setdefault(pid, np.empty((0, 4), dtype=np.int64))
    return RemotePlacement(rows_for=rows_arr, merge_level=merge_level)


class DeferredStore:
    """The leaf machines' memory under the deferred-transfer strategy.

    Holds, per *original* leaf partition, the remote half-edge rows bucketed
    by the merge level at which they become local. The driver *ships* a
    bucket to the active ancestor just before the ancestor's Phase-1 run at
    ``level + 1``; shipped buckets leave the store, mirroring the freed leaf
    memory. :meth:`resident_longs` reports the Longs the leaves still hold
    (counted separately from active-partition state, as in the paper's
    Fig. 8 analysis, which plots the *active* partitions' state).
    """

    def __init__(self) -> None:
        self._buckets: dict[int, dict[int, list[np.ndarray]]] = defaultdict(dict)

    def deposit(self, leaf_pid: int, level: int, rows: np.ndarray) -> None:
        """Store rows on ``leaf_pid``'s machine for shipment after ``level``."""
        if rows.size == 0:
            return
        self._buckets[leaf_pid].setdefault(level, []).append(rows)

    def ship(self, leaf_pids, level: int) -> np.ndarray:
        """Remove and return all rows on the given leaves due at ``level``."""
        out: list[np.ndarray] = []
        for pid in leaf_pids:
            buckets = self._buckets.get(pid)
            if buckets and level in buckets:
                out.extend(buckets.pop(level))
        if not out:
            return np.empty((0, 4), dtype=np.int64)
        return np.concatenate(out, axis=0)

    def resident_longs(self, longs_per_row: int = 2) -> int:
        """Longs still parked on leaf machines (2 per half-edge by default)."""
        total = 0
        for buckets in self._buckets.values():
            for chunks in buckets.values():
                total += sum(c.shape[0] for c in chunks)
        return total * longs_per_row
