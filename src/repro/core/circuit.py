"""Euler circuit result type and its verifier.

:func:`verify_circuit` is the ground-truth check used by the test suite and
(optionally) the driver: a valid circuit must (1) use every undirected edge
id exactly once, (2) have consecutive edges sharing the intermediate vertex,
and (3) be closed. Since the paper leaves Phase 3 unimplemented, this
verifier is what makes our end-to-end reproduction falsifiable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidCircuitError
from ..graph.graph import Graph

__all__ = ["EulerCircuit", "check_step_incidence", "verify_circuit"]


@dataclass(frozen=True)
class EulerCircuit:
    """An Euler circuit (or path) through a graph.

    Attributes
    ----------
    vertices:
        Vertex sequence ``int64[n_edges + 1]``; ``vertices[0] ==
        vertices[-1]`` for a circuit.
    edge_ids:
        Edge-id sequence ``int64[n_edges]``; ``edge_ids[i]`` joins
        ``vertices[i]`` and ``vertices[i+1]``.
    """

    vertices: np.ndarray
    edge_ids: np.ndarray

    @property
    def n_edges(self) -> int:
        """Number of edges traversed."""
        return int(self.edge_ids.shape[0])

    @property
    def is_closed(self) -> bool:
        """True when the walk returns to its start (a circuit, not a path)."""
        return self.n_edges == 0 or int(self.vertices[0]) == int(self.vertices[-1])

    @property
    def start(self) -> int:
        """First vertex of the walk."""
        return int(self.vertices[0]) if self.vertices.size else -1

    def __len__(self) -> int:
        return self.n_edges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "circuit" if self.is_closed else "path"
        return f"EulerCircuit({kind}, n_edges={self.n_edges}, start={self.start})"


def check_step_incidence(
    graph: Graph, vertices: np.ndarray, edge_ids: np.ndarray
) -> None:
    """Raise unless every walk step's vertex pair matches its edge id.

    The one incidence definition shared by every walk verifier (circuit,
    covering walk, reassembled component): step ``i`` must join
    ``vertices[i]`` and ``vertices[i+1]`` via edge ``edge_ids[i]`` in either
    orientation.
    """
    eu = graph.edge_u[edge_ids]
    ev = graph.edge_v[edge_ids]
    a, b = vertices[:-1], vertices[1:]
    ok = ((a == eu) & (b == ev)) | ((a == ev) & (b == eu))
    if not bool(ok.all()):
        bad = int(np.flatnonzero(~ok)[0])
        raise InvalidCircuitError(
            f"step {bad}: edge {int(edge_ids[bad])}="
            f"({int(eu[bad])},{int(ev[bad])}) "
            f"does not join vertices {int(a[bad])}->{int(b[bad])}"
        )


def verify_circuit(
    graph: Graph, circuit: EulerCircuit, require_closed: bool = True
) -> None:
    """Raise :class:`~repro.errors.InvalidCircuitError` unless valid.

    Checks, all vectorized: edge count equals the graph's, every edge id
    used exactly once, every step's endpoints match its edge id, consecutive
    incidence, and closure (unless ``require_closed`` is False, for Euler
    paths).
    """
    m = graph.n_edges
    eids = np.asarray(circuit.edge_ids, dtype=np.int64)
    verts = np.asarray(circuit.vertices, dtype=np.int64)
    if eids.shape[0] != m:
        raise InvalidCircuitError(
            f"circuit has {eids.shape[0]} edges, graph has {m}"
        )
    if m == 0:
        return
    if verts.shape[0] != m + 1:
        raise InvalidCircuitError(
            f"vertex sequence length {verts.shape[0]} != n_edges + 1 ({m + 1})"
        )
    counts = np.bincount(eids, minlength=m)
    if counts.max(initial=0) > 1 or int(counts.sum()) != m:
        dup = np.flatnonzero(counts > 1)[:8].tolist()
        missing = np.flatnonzero(counts == 0)[:8].tolist()
        raise InvalidCircuitError(
            f"edge multiset mismatch: duplicated {dup}, missing {missing}"
        )
    check_step_incidence(graph, verts, eids)
    if require_closed and not circuit.is_closed:
        raise InvalidCircuitError(
            f"walk is not closed: starts at {int(verts[0])}, ends at {int(verts[-1])}"
        )
