"""repro — partition-centric distributed Euler circuits.

Reproduction of Jaiswal & Simmhan, "A Partition-centric Distributed
Algorithm for Identifying Euler Circuits in Large Graphs" (IPDPS 2019
workshops, arXiv:1903.06950), as a complete Python library:

* :mod:`repro.graph` — graph/partition/meta-graph substrate;
* :mod:`repro.generate` — R-MAT, eulerizer and structured workloads (§4.2);
* :mod:`repro.partitioning` — ParHIP-substitute partitioners + metrics;
* :mod:`repro.bsp` — partition- and vertex-centric BSP engines;
* :mod:`repro.core` — Phases 1-3, merge tree, §5 improvements, driver;
* :mod:`repro.scenarios` — workloads as reduction → pipeline → postprocess
  (circuit, Euler path, per-component batch, Chinese Postman);
* :mod:`repro.extensions` — compatibility façades over the scenarios;
* :mod:`repro.baselines` — Hierholzer, Fleury, Makki;
* :mod:`repro.bench` — the experiment harness (every table & figure).

Quickstart::

    from repro.generate import eulerian_rmat
    from repro.core import find_euler_circuit

    graph, _ = eulerian_rmat(scale=14, seed=1)
    result = find_euler_circuit(graph, n_parts=4, verify=True)
    print(result.circuit, result.report.n_supersteps)
"""

from .core import EulerCircuit, EulerResult, find_euler_circuit, verify_circuit
from .errors import (
    BSPError,
    DisconnectedGraphError,
    GraphFormatError,
    InvalidCircuitError,
    InvariantViolation,
    NotEulerianError,
    PartitionError,
    ReproError,
)
from .graph import Graph, GraphBuilder, PartitionedGraph, is_eulerian

__version__ = "1.0.0"

__all__ = [
    "EulerCircuit",
    "EulerResult",
    "find_euler_circuit",
    "verify_circuit",
    "Graph",
    "GraphBuilder",
    "PartitionedGraph",
    "is_eulerian",
    "ReproError",
    "GraphFormatError",
    "NotEulerianError",
    "DisconnectedGraphError",
    "PartitionError",
    "InvariantViolation",
    "InvalidCircuitError",
    "BSPError",
    "__version__",
]
