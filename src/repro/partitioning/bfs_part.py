"""BFS region-growing partitioner.

Grows ``n_parts`` contiguous regions by breadth-first search from spread-out
seeds, capping each region at ``ceil(n / n_parts)`` vertices (plus slack for
the final region). This mimics what multilevel partitioners like ParHIP
achieve structurally — partitions that are (mostly) connected regions with
small boundaries — which matters to the paper because Phase 1 assumes
partitions contain large connected components.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph

__all__ = ["bfs_partition"]


def bfs_partition(
    graph: Graph,
    n_parts: int,
    seed: int = 0,
    slack: float = 0.0,
) -> PartitionedGraph:
    """Partition by capped BFS region growing.

    Seeds are chosen greedily far apart (first seed random, each next seed is
    an unassigned vertex left over after the previous region filled). Any
    vertices unreachable from all seeds are appended round-robin to the
    lightest regions at the end, so the output is always a total assignment.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    n = graph.n_vertices
    part = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return PartitionedGraph(graph, part, n_parts)
    offsets, targets, _ = graph.csr
    cap = int(np.ceil(n / n_parts * (1.0 + slack)))
    rng = np.random.default_rng(seed)
    scan = rng.permutation(n)
    scan_pos = 0
    load = np.zeros(n_parts, dtype=np.int64)

    for pid in range(n_parts):
        # Next unassigned vertex in the shuffled scan becomes the seed.
        while scan_pos < n and part[scan[scan_pos]] != -1:
            scan_pos += 1
        if scan_pos >= n:
            break
        seed_v = int(scan[scan_pos])
        dq = deque([seed_v])
        part[seed_v] = pid
        load[pid] += 1
        while dq and load[pid] < cap:
            x = dq.popleft()
            for t in targets[offsets[x] : offsets[x + 1]]:
                t = int(t)
                if part[t] == -1 and load[pid] < cap:
                    part[t] = pid
                    load[pid] += 1
                    dq.append(t)

    # Mop up stragglers (disconnected bits / cap overflow) onto light parts.
    rest = np.flatnonzero(part == -1)
    for v in rest:
        pid = int(np.argmin(load))
        part[v] = pid
        load[pid] += 1
    return PartitionedGraph(graph, part, n_parts)
