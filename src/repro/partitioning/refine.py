"""Greedy boundary refinement — a local-search pass over a partitioning.

Multilevel partitioners like ParHIP follow their initial assignment with
Fiduccia–Mattheyses-style local search. This module provides that final
ingredient for our substitutes: sweep the boundary vertices, moving each to
the neighbouring partition with the highest cut-gain when the move respects
the balance capacity. A few sweeps typically shave 10-30% off LDG's edge
cut on structured graphs, tightening the Table-1 gap to ParHIP.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph

__all__ = ["refine_partition"]


def refine_partition(
    pg: PartitionedGraph,
    max_sweeps: int = 4,
    slack: float = 0.05,
    seed: int = 0,
) -> PartitionedGraph:
    """Improve a partitioning by greedy gain-based boundary moves.

    Parameters
    ----------
    pg:
        The partitioning to refine (not mutated; a new one is returned).
    max_sweeps:
        Maximum full passes over the (current) boundary vertices; stops
        early when a sweep makes no move.
    slack:
        Balance capacity ``ceil(n / n_parts * (1 + slack))`` that moves must
        respect.
    seed:
        Order in which boundary vertices are visited.

    Returns
    -------
    PartitionedGraph
        Refined partitioning with an edge cut no worse than the input's.
    """
    graph: Graph = pg.graph
    n = graph.n_vertices
    n_parts = pg.n_parts
    if n == 0 or n_parts <= 1:
        return pg
    offsets, targets, _ = graph.csr
    part = pg.part_of.copy()
    load = np.bincount(part, minlength=n_parts).astype(np.int64)
    cap = int(np.ceil(n / n_parts * (1.0 + slack)))
    rng = np.random.default_rng(seed)

    for _ in range(max_sweeps):
        # Current boundary vertices: any vertex with a cross-partition edge.
        pu = part[graph.edge_u]
        pv = part[graph.edge_v]
        cut_mask = pu != pv
        if not cut_mask.any():
            break
        boundary = np.unique(
            np.concatenate(
                [graph.edge_u[cut_mask], graph.edge_v[cut_mask]]
            )
        )
        rng.shuffle(boundary)
        moved = 0
        for v in boundary.tolist():
            cur = int(part[v])
            neigh = targets[offsets[v] : offsets[v + 1]]
            if neigh.size == 0:
                continue
            counts = np.bincount(part[neigh], minlength=n_parts)
            counts_cur = int(counts[cur])
            # Best alternative partition by neighbour count.
            counts[cur] = -1
            best = int(np.argmax(counts))
            gain = int(counts[best]) - counts_cur
            if gain > 0 and load[best] < cap:
                part[v] = best
                load[cur] -= 1
                load[best] += 1
                moved += 1
        if moved == 0:
            break
    refined = PartitionedGraph(graph, part, n_parts)
    # Local search must never worsen the cut it optimizes.
    if refined.n_cut_edges > pg.n_cut_edges:
        return pg
    return refined
