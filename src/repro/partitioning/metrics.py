"""Partition-quality metrics with the paper's exact Table-1 definitions.

* **Edge-cut fraction** — ``sum_i |R_i| / |E|`` where both numerator and
  denominator use bi-directed (half-edge) counts; numerically identical to
  the undirected cut fraction.
* **Peak vertex imbalance** — ``max_i | (|V| - n*|V_i|) / |V| |``, the
  paper's asymmetric deviation-from-ideal measure (note it exceeds 1 when a
  partition holds more than twice its fair share).
"""

from __future__ import annotations

import numpy as np

from ..graph.partition import PartitionedGraph, partition_stats

__all__ = ["edge_cut_fraction", "peak_imbalance", "quality_report"]


def edge_cut_fraction(pg: PartitionedGraph) -> float:
    """Fraction of edges whose endpoints live in different partitions."""
    return pg.edge_cut_fraction()


def peak_imbalance(pg: PartitionedGraph) -> float:
    """The paper's peak vertex imbalance measure (Table 1)."""
    return pg.imbalance()


def quality_report(pg: PartitionedGraph) -> dict:
    """Table-1 style summary plus per-partition boundary/remote-edge counts.

    The per-partition arrays feed the Fig. 9 census benchmark.
    """
    stats = partition_stats(pg)
    views = pg.views()
    stats["per_part"] = [
        {
            "pid": w.pid,
            "n_vertices": w.n_vertices,
            "n_internal": int(w.internal.size),
            "n_boundary": int(w.boundary.size),
            "n_ob": int(w.ob.size),
            "n_eb": int(w.eb.size),
            "n_local_edges": w.n_local_edges,
            "n_remote_half_edges": w.n_remote_edges,
        }
        for w in views
    ]
    counts = pg.vertex_counts()
    stats["min_part_vertices"] = int(counts.min()) if counts.size else 0
    stats["max_part_vertices"] = int(counts.max()) if counts.size else 0
    return stats
