"""Hash/random vertex partitioner — the quality *baseline*.

Assigns vertices to partitions by a mixed hash of their id (or uniformly at
random with a seed). Load balance is excellent, edge cut is terrible
(≈ ``1 - 1/n`` of edges cut on a random graph) — exactly the foil the
locality-aware partitioners are measured against in the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph

__all__ = ["hash_partition", "random_partition"]


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer — a cheap, well-mixed integer hash."""
    z = x.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def hash_partition(graph: Graph, n_parts: int, salt: int = 0) -> PartitionedGraph:
    """Deterministic hash partitioning of vertices into ``n_parts``."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    ids = np.arange(graph.n_vertices, dtype=np.int64) + np.int64(salt) * 0x10001
    part = (_splitmix64(ids) % np.uint64(n_parts)).astype(np.int64)
    return PartitionedGraph(graph, part, n_parts)


def random_partition(
    graph: Graph, n_parts: int, seed: int | np.random.Generator = 0
) -> PartitionedGraph:
    """Uniformly random, seeded vertex partitioning into ``n_parts``."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    part = rng.integers(0, n_parts, size=graph.n_vertices, dtype=np.int64)
    return PartitionedGraph(graph, part, n_parts)
