"""Linear Deterministic Greedy (LDG) streaming partitioner.

Stanton & Kliot's LDG heuristic (KDD 2012): stream vertices in some order and
place each on the partition holding most of its already-placed neighbours,
damped by a load penalty ``(1 - |P_k| / C)`` with capacity
``C = n_vertices / n_parts * (1 + slack)``. One streaming pass gives edge
cuts far below hash partitioning at near-perfect balance — a reasonable
single-machine stand-in for ParHIP [34], which the paper uses offline.

A BFS vertex order (default) substantially improves locality over the natural
id order because neighbours tend to be placed while their cluster is still
"open".
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph

__all__ = ["ldg_partition", "bfs_order"]


def bfs_order(graph: Graph, seed: int = 0) -> np.ndarray:
    """A BFS visitation order over all vertices (restarting per component).

    Deterministic for a given graph and seed; the seed picks the restart
    vertex preference (vertices are tried in a seeded shuffle order).
    """
    n = graph.n_vertices
    offsets, targets, _ = graph.csr
    rng = np.random.default_rng(seed)
    starts = rng.permutation(n)
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    from collections import deque

    for s in starts:
        if seen[s]:
            continue
        seen[s] = True
        dq = deque([int(s)])
        while dq:
            x = dq.popleft()
            order[pos] = x
            pos += 1
            for t in targets[offsets[x] : offsets[x + 1]]:
                if not seen[t]:
                    seen[t] = True
                    dq.append(int(t))
    assert pos == n
    return order


def ldg_partition(
    graph: Graph,
    n_parts: int,
    slack: float = 0.05,
    order: np.ndarray | str = "bfs",
    seed: int = 0,
) -> PartitionedGraph:
    """Partition vertices with the LDG streaming heuristic.

    Parameters
    ----------
    graph:
        Input graph.
    n_parts:
        Number of partitions.
    slack:
        Capacity slack fraction; partitions hold at most
        ``ceil(n/n_parts * (1+slack))`` vertices.
    order:
        ``"bfs"`` (default), ``"natural"``, ``"random"``, or an explicit
        vertex-order array.
    seed:
        Seed for the BFS/random order.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    n = graph.n_vertices
    if isinstance(order, str):
        if order == "bfs":
            order_arr = bfs_order(graph, seed=seed)
        elif order == "natural":
            order_arr = np.arange(n, dtype=np.int64)
        elif order == "random":
            order_arr = np.random.default_rng(seed).permutation(n).astype(np.int64)
        else:
            raise ValueError(f"unknown order {order!r}")
    else:
        order_arr = np.asarray(order, dtype=np.int64)
        if sorted(order_arr.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of all vertices")

    capacity = int(np.ceil(n / n_parts * (1.0 + slack))) if n else 0
    part = np.full(n, -1, dtype=np.int64)
    load = np.zeros(n_parts, dtype=np.int64)
    offsets, targets, _ = graph.csr

    for v in order_arr:
        neigh = targets[offsets[v] : offsets[v + 1]]
        placed = part[neigh]
        scores = np.zeros(n_parts, dtype=np.float64)
        if placed.size:
            counted = placed[placed >= 0]
            if counted.size:
                scores += np.bincount(counted, minlength=n_parts)
        scores *= 1.0 - load / capacity if capacity else 0.0
        scores[load >= capacity] = -np.inf
        best = int(np.argmax(scores))
        # argmax of all -inf (shouldn't happen given slack>=0) -> least loaded
        if not np.isfinite(scores[best]):
            best = int(np.argmin(load))
        part[v] = best
        load[best] += 1
    return PartitionedGraph(graph, part, n_parts)
