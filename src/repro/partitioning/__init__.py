"""Graph partitioners (ParHIP substitute) and quality metrics.

:func:`partition` is the façade used throughout the library: it dispatches
on a method name so drivers and benchmarks can select partitioners by
string.
"""

from __future__ import annotations

from ..graph.graph import Graph
from ..graph.partition import PartitionedGraph
from .bfs_part import bfs_partition
from .hash_part import hash_partition, random_partition
from .ldg import bfs_order, ldg_partition
from .metrics import edge_cut_fraction, peak_imbalance, quality_report
from .refine import refine_partition

__all__ = [
    "partition",
    "bfs_partition",
    "hash_partition",
    "random_partition",
    "ldg_partition",
    "bfs_order",
    "edge_cut_fraction",
    "peak_imbalance",
    "quality_report",
    "refine_partition",
    "PARTITIONERS",
]

#: Registered partitioner names usable with :func:`partition`.
PARTITIONERS = ("ldg", "bfs", "hash", "random")


def partition(
    graph: Graph, n_parts: int, method: str = "ldg", seed: int = 0
) -> PartitionedGraph:
    """Partition ``graph`` into ``n_parts`` using a named method.

    Parameters
    ----------
    method:
        One of ``"ldg"`` (default; streaming Linear Deterministic Greedy),
        ``"bfs"`` (region growing), ``"hash"`` (deterministic hash) or
        ``"random"``.
    seed:
        Seed for the stochastic methods (ignored by ``hash``).
    """
    if method == "ldg":
        return ldg_partition(graph, n_parts, seed=seed)
    if method == "bfs":
        return bfs_partition(graph, n_parts, seed=seed)
    if method == "hash":
        return hash_partition(graph, n_parts, salt=seed)
    if method == "random":
        return random_partition(graph, n_parts, seed=seed)
    raise ValueError(f"unknown partitioner {method!r}; choose from {PARTITIONERS}")
