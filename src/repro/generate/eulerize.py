"""Eulerizer: make a graph Eulerian by pairing odd-degree vertices (§4.2).

The paper: *"we develop a custom tool to add additional edges between
vertices that have an odd degree, to make the graph Eulerian. The tool
ensures that the edge degree distribution of the modified graph closely
matches the original graph ... In practice, the extra edges added is ~5%."*

We reproduce that construction: every odd-degree vertex receives exactly one
extra edge to another odd-degree vertex (the Handshaking Lemma guarantees an
even count of them), which bumps each affected degree by one — the smallest
possible perturbation of the distribution. Random pairing is retried a few
times per pair to avoid self loops and duplicate edges; a duplicate
(parallel) edge is accepted as a last resort since the core algorithm
tolerates multigraphs and parity is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.graph import Graph
from ..graph.properties import connected_components, odd_vertices

__all__ = [
    "EulerizeInfo",
    "largest_component",
    "eulerize",
    "eulerian_rmat",
    "open_path_variant",
]


def open_path_variant(graph: Graph) -> Graph:
    """Drop one non-loop edge from an Eulerian graph: an Euler-*path* input.

    The removed edge's endpoints become the only two odd-degree vertices,
    and an Eulerian graph cannot be disconnected by one edge removal (every
    edge lies on a cycle) — so the result has an open Euler path. Raises
    ``ValueError`` if every edge is a self loop (nothing to open).
    """
    non_loop = np.flatnonzero(graph.edge_u != graph.edge_v)
    if non_loop.size == 0:
        raise ValueError("graph has no non-loop edge to drop")
    drop = int(non_loop[0])
    keep = np.concatenate(
        [np.arange(drop), np.arange(drop + 1, graph.n_edges)]
    )
    return graph.subgraph_edges(keep)


@dataclass(frozen=True)
class EulerizeInfo:
    """Bookkeeping from :func:`eulerize` (feeds the Fig. 4 benchmark)."""

    #: Number of odd-degree vertices that were fixed up.
    n_odd: int
    #: Number of edges added.
    n_added: int
    #: Added edges as a fraction of the original edge count (paper: ~5%).
    added_fraction: float
    #: How many added edges duplicate an existing one (kept parallel).
    n_parallel: int


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Extract the largest connected component, compactly relabelled.

    Returns the component subgraph and the array of original vertex labels
    (``labels[new_id] == original_id``). Isolated vertices outside the
    component are dropped. If the graph has no edges the graph is returned
    unchanged with identity labels.
    """
    if graph.n_edges == 0:
        return graph, np.arange(graph.n_vertices, dtype=np.int64)
    comp = connected_components(graph)
    # Largest by vertex count among edge-bearing components.
    edge_comps = comp[graph.edge_u]
    counts = np.bincount(comp)
    candidates = np.unique(edge_comps)
    best = candidates[np.argmax(counts[candidates])]
    keep = np.flatnonzero(comp == best)
    remap = np.full(graph.n_vertices, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size, dtype=np.int64)
    mask = comp[graph.edge_u] == best
    return Graph(keep.size, remap[graph.edge_u[mask]], remap[graph.edge_v[mask]]), keep


def eulerize(
    graph: Graph,
    seed: int | np.random.Generator = 0,
    max_retries: int = 16,
) -> tuple[Graph, EulerizeInfo]:
    """Return an Eulerian-degree version of ``graph`` plus bookkeeping.

    Pairs the odd-degree vertices uniformly at random and adds one edge per
    pair. Pairs that would form a self loop or duplicate an existing edge are
    re-drawn up to ``max_retries`` times (by re-shuffling the still-unmatched
    tail); any remainder accepts parallel edges.

    Note this fixes *parity* only — connectivity is the caller's concern
    (see :func:`largest_component` / :func:`eulerian_rmat`).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    odd = odd_vertices(graph)
    if odd.size == 0:
        return graph, EulerizeInfo(0, 0, 0.0, 0)
    assert odd.size % 2 == 0, "Handshaking Lemma violated (library bug)"

    existing = set()
    if graph.n_edges:
        lo = np.minimum(graph.edge_u, graph.edge_v)
        hi = np.maximum(graph.edge_u, graph.edge_v)
        existing = set(map(tuple, np.column_stack([lo, hi]).tolist()))

    pool = odd.copy()
    rng.shuffle(pool)
    accepted: list[tuple[int, int]] = []
    n_parallel = 0

    def _try_swap_repair(a: int, b: int) -> bool:
        """Fix a conflicted pair (a, b) by 2-swapping with an accepted pair:
        replace (c, d) with (a, c) and (b, d) when both are fresh."""
        probe = rng.permutation(len(accepted))[:64] if accepted else []
        for idx in probe:
            c, d = accepted[idx]
            for x, y in (((a, c), (b, d)), ((a, d), (b, c))):
                k1 = (min(x), max(x))
                k2 = (min(y), max(y))
                if (
                    x[0] != x[1]
                    and y[0] != y[1]
                    and k1 not in existing
                    and k2 not in existing
                    and k1 != k2
                ):
                    existing.discard((min(c, d), max(c, d)))
                    accepted[idx] = k1
                    accepted.append(k2)
                    existing.add(k1)
                    existing.add(k2)
                    return True
        return False

    for attempt in range(max_retries + 1):
        rejected: list[int] = []
        last_round = attempt == max_retries
        for k in range(0, pool.size - 1, 2):
            a, b = int(pool[k]), int(pool[k + 1])
            key = (a, b) if a <= b else (b, a)
            dup = key in existing
            if a != b and not dup:
                accepted.append(key)
                existing.add(key)
            elif last_round:
                if a != b and _try_swap_repair(a, b):
                    continue
                # Self-pairings cannot occur (pool entries are distinct odd
                # vertices, each exactly once), so a != b here; accept the
                # parallel edge — parity is what matters.
                accepted.append(key)
                existing.add(key)
                n_parallel += 1
            else:
                rejected.extend((a, b))
        if not rejected:
            break
        pool = np.array(rejected, dtype=np.int64)
        rng.shuffle(pool)
    extra = np.array(accepted, dtype=np.int64).reshape(-1, 2)
    out = graph.with_extra_edges(extra[:, 0], extra[:, 1])
    info = EulerizeInfo(
        n_odd=int(odd.size),
        n_added=len(accepted),
        added_fraction=len(accepted) / graph.n_edges if graph.n_edges else 0.0,
        n_parallel=n_parallel,
    )
    return out, info


def eulerian_rmat(
    scale: int,
    avg_degree: float = 5.0,
    seed: int = 0,
) -> tuple[Graph, EulerizeInfo]:
    """End-to-end §4.2 workload: R-MAT → largest component → eulerize.

    Returns a connected Eulerian graph and the eulerization bookkeeping.
    """
    from .rmat import rmat_graph  # local import avoids a cycle at package init

    g = rmat_graph(scale, avg_degree=avg_degree, seed=seed)
    g, _ = largest_component(g)
    return eulerize(g, seed=seed + 1)
