"""Vectorized R-MAT power-law graph generator (paper §4.2 workload).

The paper generates its inputs with a parallel R-MAT tool [35] at an average
undirected degree of 5 and default quadrant probabilities. R-MAT (Chakrabarti
et al., SDM 2004) places each edge by descending ``log2(n)`` levels of a
2x2 recursive partition of the adjacency matrix, picking quadrant
``(a, b, c, d)`` at every level. We draw all bits for all edges at once with
NumPy — one ``(n_edges, scale)`` uniform matrix per endpoint axis — so the
generator is fast enough for the benchmark harness without compiled code.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph

__all__ = ["rmat_graph", "RMAT_DEFAULTS"]

#: Default quadrant probabilities, the common (0.57, 0.19, 0.19, 0.05)
#: "Graph500-style" skew that yields a power-law degree distribution.
RMAT_DEFAULTS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    scale: int,
    avg_degree: float = 5.0,
    probs: tuple[float, float, float, float] = RMAT_DEFAULTS,
    seed: int | np.random.Generator = 0,
    drop_self_loops: bool = True,
    dedup: bool = True,
) -> Graph:
    """Generate an undirected R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        ``log2`` of the number of vertices.
    avg_degree:
        Target average *undirected* degree (the paper uses 5); the number of
        sampled edges is ``n * avg_degree / 2`` before dedup/self-loop drops,
        so the realized average is slightly below the target, as with the
        original tool.
    probs:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    seed:
        Integer seed or a ``numpy.random.Generator``.
    drop_self_loops:
        Remove ``u == v`` samples (default True).
    dedup:
        Remove duplicate undirected edges (default True), keeping the graph
        simple; the eulerizer may still be asked to tolerate multi-edges.

    Returns
    -------
    Graph
        The generated undirected graph (not necessarily connected or
        Eulerian; see :func:`repro.generate.eulerize.eulerize`).
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    a, b, c, d = probs
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"quadrant probabilities must sum to 1, got {total}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    n = 1 << scale
    m = int(round(n * avg_degree / 2))
    if m == 0 or scale == 0:
        return Graph(n)

    # Per level: P(row bit = 1) = c + d; given the row bit, the column bit
    # probability differs — this is the standard two-step factorization of
    # the quadrant choice.
    p_row1 = c + d
    p_col1_given_row0 = b / (a + b) if (a + b) > 0 else 0.0
    p_col1_given_row1 = d / (c + d) if (c + d) > 0 else 0.0

    row_bits = rng.random((m, scale)) < p_row1
    col_prob = np.where(row_bits, p_col1_given_row1, p_col1_given_row0)
    col_bits = rng.random((m, scale)) < col_prob

    weights = (1 << np.arange(scale - 1, -1, -1, dtype=np.int64))
    u = row_bits @ weights
    v = col_bits @ weights

    if drop_self_loops:
        keep = u != v
        u, v = u[keep], v[keep]
    if dedup and u.size:
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        code = lo * n + hi
        _, idx = np.unique(code, return_index=True)
        idx.sort()
        u, v = u[idx], v[idx]
    return Graph(n, u, v)
