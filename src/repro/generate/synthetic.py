"""Deterministic synthetic workloads beyond R-MAT.

These exercise the algorithm on structured graphs the paper's introduction
motivates (road networks for route planning, DNA assembly) plus convenient
Eulerian-by-construction random graphs for tests:

* :func:`cycle_graph`, :func:`complete_graph` — textbook fixtures.
* :func:`grid_city` — a w×h street grid (torus option makes it 4-regular and
  hence Eulerian, like an idealized city for sweeping/coverage routes).
* :func:`ring_of_cliques` — tunable community structure; Eulerian when the
  cliques have odd size (so clique-internal degree is even) and each bridge
  adds degree 2 per touched vertex via paired bridges.
* :func:`random_eulerian` — union of random closed walks: even degree by
  construction, connected by construction (each walk starts on a visited
  vertex), ideal for property-based testing.
* :func:`de_bruijn_reads` — synthetic DNA reads and their de Bruijn graph,
  substrate for the Euler-path DNA-assembly example [paper refs 6, 7].
* :func:`paper_figure1_graph` — the exact 14-vertex, 4-partition example of
  the paper's Fig. 1, used in unit tests and the quickstart.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph, GraphBuilder

__all__ = [
    "cycle_graph",
    "complete_graph",
    "disjoint_union",
    "grid_city",
    "ring_of_cliques",
    "random_eulerian",
    "de_bruijn_reads",
    "paper_figure1_graph",
]


def disjoint_union(*graphs: Graph) -> Graph:
    """Disjoint union with vertex-id offsets (a multi-component graph).

    Graph ``i``'s vertex ``v`` becomes ``v + sum(n_vertices of graphs[:i])``;
    edge ids concatenate in graph order. The standard fixture for the
    ``components`` scenario and its benchmarks.
    """
    offset = 0
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for g in graphs:
        us.append(np.asarray(g.edge_u) + offset)
        vs.append(np.asarray(g.edge_v) + offset)
        offset += g.n_vertices
    if not us:
        return Graph(0)
    return Graph(offset, np.concatenate(us), np.concatenate(vs))


def cycle_graph(n: int) -> Graph:
    """The n-cycle ``0-1-...-(n-1)-0`` (Eulerian for n >= 3; n=2 gives a
    double edge, n=1 a self loop)."""
    if n <= 0:
        return Graph(0)
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return Graph(n, u, v)


def complete_graph(n: int) -> Graph:
    """K_n (Eulerian iff n is odd)."""
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_edges(n, pairs)


def grid_city(width: int, height: int, torus: bool = True) -> Graph:
    """A street grid of ``width * height`` intersections.

    With ``torus=True`` (default) the grid wraps, making every intersection
    degree-4 and the graph Eulerian — the idealized "snow plough must cover
    every street once" workload. With ``torus=False`` the boundary vertices
    have odd/low degree and the result needs eulerization first.
    """
    if width < 2 or height < 2:
        raise ValueError("grid_city needs width, height >= 2")

    def vid(x: int, y: int) -> int:
        return y * width + x

    b = GraphBuilder(width * height)
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                b.add_edge(vid(x, y), vid(x + 1, y))
            elif torus and width > 2:
                b.add_edge(vid(x, y), vid(0, y))
            if y + 1 < height:
                b.add_edge(vid(x, y), vid(x, y + 1))
            elif torus and height > 2:
                b.add_edge(vid(x, y), vid(x, 0))
    return b.build()


def ring_of_cliques(n_cliques: int, clique_size: int) -> Graph:
    """A ring of cliques joined by two parallel bridges per adjacent pair.

    With odd ``clique_size`` every vertex keeps even degree (clique-internal
    degree ``clique_size-1`` is even; bridge endpoints gain 2), so the result
    is Eulerian and has a natural community structure that partitioners
    should recover (few cut edges).
    """
    if n_cliques < 2 or clique_size < 3:
        raise ValueError("need n_cliques >= 2 and clique_size >= 3")
    if clique_size % 2 == 0:
        raise ValueError("clique_size must be odd for an Eulerian result")
    b = GraphBuilder(n_cliques * clique_size)
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                b.add_edge(base + i, base + j)
        nxt = ((c + 1) % n_cliques) * clique_size
        # Two bridges keep parity even at all four touched vertices.
        b.add_edge(base + 0, nxt + 0)
        b.add_edge(base + 1, nxt + 1)
    return b.build()


def random_eulerian(
    n_vertices: int,
    n_walks: int = 4,
    walk_len: int = 16,
    seed: int | np.random.Generator = 0,
) -> Graph:
    """Random connected Eulerian multigraph: a union of random closed walks.

    Every closed walk touches each of its vertices an even number of times,
    so the union has all-even degrees; each walk after the first starts at an
    already-visited vertex, so the union is connected. Unvisited vertices are
    dropped by compaction (the returned graph may have fewer than
    ``n_vertices`` vertices). This is the workhorse generator for
    property-based tests: cheap, seedable and Eulerian by construction.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if n_vertices < 1 or n_walks < 1 or walk_len < 2:
        raise ValueError("need n_vertices >= 1, n_walks >= 1, walk_len >= 2")
    visited: list[int] = [int(rng.integers(n_vertices))]
    us: list[int] = []
    vs: list[int] = []
    for _ in range(n_walks):
        start = visited[int(rng.integers(len(visited)))]
        cur = start
        for _ in range(walk_len - 1):
            nxt = int(rng.integers(n_vertices))
            if nxt == cur:  # avoid self loops; step to a shifted vertex
                nxt = (nxt + 1) % n_vertices
                if nxt == cur:
                    continue
            us.append(cur)
            vs.append(nxt)
            visited.append(nxt)
            cur = nxt
        if cur != start:
            us.append(cur)
            vs.append(start)
    from ..graph.io import compact_labels

    g, _ = compact_labels(np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64))
    return g


def de_bruijn_reads(
    genome_len: int = 200,
    k: int = 5,
    seed: int | np.random.Generator = 0,
) -> tuple[str, list[str], Graph, list[str]]:
    """Synthetic DNA reads and their de Bruijn graph (DNA-assembly substrate).

    Generates a random circular genome over ``ACGT``, slides a window of
    length ``k`` to produce every k-mer read, and builds the de Bruijn graph:
    vertices are (k-1)-mers, one edge per k-mer occurrence joining its prefix
    and suffix. Because the genome is circular and every k-mer is included
    exactly once per occurrence, each vertex has even total degree in the
    *undirected* projection used here, and an Euler circuit spells a genome
    reconstruction — the classic Pevzner-style formulation the paper cites
    as a motivating use case.

    Returns ``(genome, reads, graph, vertex_labels)`` where
    ``vertex_labels[v]`` is the (k-1)-mer of vertex ``v``.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if genome_len < k or k < 2:
        raise ValueError("need genome_len >= k >= 2")
    alphabet = np.array(list("ACGT"))
    genome = "".join(alphabet[rng.integers(0, 4, size=genome_len)])
    circular = genome + genome[: k - 1]
    reads = [circular[i : i + k] for i in range(genome_len)]

    labels: dict[str, int] = {}
    us: list[int] = []
    vs: list[int] = []
    for read in reads:
        pre, suf = read[:-1], read[1:]
        for mer in (pre, suf):
            if mer not in labels:
                labels[mer] = len(labels)
        us.append(labels[pre])
        vs.append(labels[suf])
    names = [None] * len(labels)
    for mer, idx in labels.items():
        names[idx] = mer
    return genome, reads, Graph(len(labels), us, vs), names


def paper_figure1_graph() -> tuple[Graph, np.ndarray]:
    """The exact running example of the paper's Fig. 1(a).

    14 vertices (paper ids 1..14 mapped to 0..13) in 4 partitions
    P1={v1,v2}, P2={v3,v4,v5}, P3={v6..v9}, P4={v10..v14}. Returns the graph
    and the partition map (partition ids 0..3 for P1..P4).
    """
    # Edges exactly as drawn in Fig. 1a (paper vertex ids, 1-based).
    edges_1based = [
        (1, 2), (2, 3), (3, 4), (4, 5), (3, 5), (3, 13), (1, 14),
        (12, 13), (11, 12), (6, 11), (6, 7), (7, 8), (8, 9), (9, 10),
        (10, 12), (12, 14),
    ]
    edges = [(u - 1, v - 1) for u, v in edges_1based]
    part_1based = {
        1: 0, 2: 0,
        3: 1, 4: 1, 5: 1,
        6: 2, 7: 2, 8: 2, 9: 2,
        10: 3, 11: 3, 12: 3, 13: 3, 14: 3,
    }
    part = np.array([part_1based[i + 1] for i in range(14)], dtype=np.int64)
    return Graph.from_edges(14, edges), part
