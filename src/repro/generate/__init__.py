"""Workload generators: R-MAT, eulerization, structured synthetic graphs.

Reproduces the paper's §4.2 input pipeline (R-MAT → eulerize) plus the
structured workloads used by the examples and tests.
"""

from .eulerize import (
    EulerizeInfo,
    eulerian_rmat,
    eulerize,
    largest_component,
    open_path_variant,
)
from .rmat import RMAT_DEFAULTS, rmat_graph
from .synthetic import (
    complete_graph,
    cycle_graph,
    de_bruijn_reads,
    disjoint_union,
    grid_city,
    paper_figure1_graph,
    random_eulerian,
    ring_of_cliques,
)

__all__ = [
    "EulerizeInfo",
    "eulerian_rmat",
    "eulerize",
    "largest_component",
    "open_path_variant",
    "RMAT_DEFAULTS",
    "rmat_graph",
    "complete_graph",
    "cycle_graph",
    "de_bruijn_reads",
    "disjoint_union",
    "grid_city",
    "paper_figure1_graph",
    "random_eulerian",
    "ring_of_cliques",
]
