"""Experiment harness: workloads, formatting, and one function per artifact."""

from .experiments import (
    ablation_matching,
    ablation_partitioner,
    baselines_experiment,
    fig4_degree_distribution,
    fig5_weak_scaling,
    fig6_time_split,
    fig7_phase1_complexity,
    fig8_memory_state,
    fig9_vertex_census,
    run_workload,
    supersteps_experiment,
    table1,
)
from .harness import format_series, format_table, print_header
from .report_io import (
    SCHEMA_VERSION,
    context_to_dict,
    load_rows,
    report_to_dict,
    save_context,
    save_report,
    save_rows,
)
from .workloads import PAPER_WORKLOADS, WorkloadSpec, load_workload, workload_names

__all__ = [
    "SCHEMA_VERSION",
    "context_to_dict",
    "report_to_dict",
    "save_context",
    "save_report",
    "save_rows",
    "load_rows",
    "ablation_matching",
    "ablation_partitioner",
    "baselines_experiment",
    "fig4_degree_distribution",
    "fig5_weak_scaling",
    "fig6_time_split",
    "fig7_phase1_complexity",
    "fig8_memory_state",
    "fig9_vertex_census",
    "run_workload",
    "supersteps_experiment",
    "table1",
    "format_series",
    "format_table",
    "print_header",
    "PAPER_WORKLOADS",
    "WorkloadSpec",
    "load_workload",
    "workload_names",
]
