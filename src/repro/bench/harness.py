"""Plain-text table/series formatting for the experiment harness.

Every benchmark prints the rows/series its paper artifact reports, via these
helpers, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the whole
evaluation section as readable text (and EXPERIMENTS.md quotes it).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_series", "print_header"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Iterable[dict], columns: Sequence[str] | None = None, title: str = ""
) -> str:
    """Render dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    pts = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pts}"


def print_header(title: str) -> None:
    """Banner separating experiments in benchmark output."""
    bar = "=" * max(60, len(title) + 4)
    print(f"\n{bar}\n  {title}\n{bar}")
