"""One function per paper artifact (tables & figures, §4.2-§5).

Each function runs the relevant workload(s), returns structured rows/series,
and optionally prints them in the paper's layout. The ``benchmarks/``
pytest-benchmark files and the CLI both dispatch here, so the numbers in
EXPERIMENTS.md, the benchmark output and interactive runs always agree.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines import (
    cycle_hook_circuit,
    fleury_circuit,
    hierholzer_circuit,
    makki_circuit,
    makki_partition_circuit,
)
from ..core import (
    EulerResult,
    fig8_table,
    find_euler_circuit,
    ideal_series,
    measured_series,
    verify_circuit,
)
from ..generate.eulerize import eulerize, largest_component
from ..generate.rmat import rmat_graph
from ..generate.synthetic import random_eulerian
from ..graph.partition import partition_stats
from ..partitioning import PARTITIONERS, partition
from .harness import format_series, format_table, print_header
from .workloads import PAPER_WORKLOADS, load_workload, workload_names

__all__ = [
    "table1",
    "fig4_degree_distribution",
    "fig5_weak_scaling",
    "fig6_time_split",
    "fig7_phase1_complexity",
    "fig8_memory_state",
    "fig9_vertex_census",
    "supersteps_experiment",
    "baselines_experiment",
    "ablation_matching",
    "ablation_partitioner",
    "run_workload",
]

_RUN_CACHE: dict[tuple, EulerResult] = {}


def run_workload(
    name: str,
    partitioner: str = "ldg",
    strategy: str = "eager",
    matching: str = "greedy",
    seed: int = 0,
    verify: bool = True,
    cache: bool = True,
    executor: str | None = None,
    workers: int = 1,
) -> EulerResult:
    """Run the full algorithm on one Table-1 workload (memoized per-config).

    The returned :class:`EulerResult` carries the full pipeline artifact in
    ``.context`` (a :class:`~repro.pipeline.RunContext`); benchmarks read
    their figure series from it via ``.report``. ``executor``/``workers``
    select the BSP backend, so scaling experiments can compare serial,
    thread and process execution of the same workload.
    """
    key = (name, partitioner, strategy, matching, seed, executor, workers)
    if cache and key in _RUN_CACHE:
        return _RUN_CACHE[key]
    g, spec = load_workload(name)
    res = find_euler_circuit(
        g,
        n_parts=spec.n_parts,
        partitioner=partitioner,
        strategy=strategy,
        matching=matching,
        seed=seed,
        verify=verify,
        executor=executor,
        engine_workers=workers,
    )
    if cache:
        _RUN_CACHE[key] = res
    return res


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1(partitioner: str = "ldg", seed: int = 0, do_print: bool = True) -> list[dict]:
    """Table 1 — characteristics of the input Eulerian graphs."""
    rows = []
    for name in workload_names():
        g, spec = load_workload(name)
        pg = partition(g, spec.n_parts, method=partitioner, seed=seed)
        s = partition_stats(pg)
        rows.append(
            {
                "Graph": name,
                "|V|": s["n_vertices"],
                "|E| (bidir)": s["n_bidirected_edges"],
                "sum|Bi|": s["sum_boundary"],
                "Parts": s["n_parts"],
                "Cut %": 100.0 * s["cut_fraction"],
                "Imbal %": 100.0 * s["imbalance"],
                "paper": spec.paper_row,
            }
        )
    if do_print:
        print_header(f"Table 1 (partitioner={partitioner})")
        print(format_table(rows))
    return rows


# ---------------------------------------------------------------------------
# Fig. 4
# ---------------------------------------------------------------------------

def fig4_degree_distribution(
    scale: int = 14, avg_degree: float = 5.0, seed: int = 7, do_print: bool = True
) -> dict:
    """Fig. 4 — degree distribution of the R-MAT vs the eulerized graph.

    Returns log2-bucketed histograms for both, plus the summary quantities
    the paper reports in the text (extra edges ~5%, distributions overlap).
    """
    raw = rmat_graph(scale, avg_degree=avg_degree, seed=seed)
    raw_cc, _ = largest_component(raw)
    eul, info = eulerize(raw_cc, seed=seed + 1)

    def hist(g):
        deg = g.degrees()
        deg = deg[deg > 0]
        buckets = np.floor(np.log2(deg)).astype(int)
        return np.bincount(buckets)

    h_raw, h_eul = hist(raw_cc), hist(eul)
    width = max(len(h_raw), len(h_eul))
    h_raw = np.pad(h_raw, (0, width - len(h_raw)))
    h_eul = np.pad(h_eul, (0, width - len(h_eul)))
    rows = [
        {
            "degree bucket": f"[{2**i}, {2**(i+1)})",
            "RMAT vertices": int(h_raw[i]),
            "Eulerian vertices": int(h_eul[i]),
        }
        for i in range(width)
    ]
    out = {
        "rows": rows,
        "n_odd_before": int((raw_cc.degrees() % 2 == 1).sum()),
        "n_odd_after": int((eul.degrees() % 2 == 1).sum()),
        "extra_edge_fraction": info.added_fraction,
        "max_degree_before": int(raw_cc.degrees().max()),
        "max_degree_after": int(eul.degrees().max()),
    }
    if do_print:
        print_header("Fig. 4 degree distribution (RMAT vs Eulerized)")
        print(format_table(rows))
        print(
            f"odd vertices: {out['n_odd_before']} -> {out['n_odd_after']}; "
            f"extra edges: {100 * out['extra_edge_fraction']:.1f}% (paper: ~5%)"
        )
    return out


# ---------------------------------------------------------------------------
# Fig. 5
# ---------------------------------------------------------------------------

def fig5_weak_scaling(
    partitioner: str = "ldg", do_print: bool = True
) -> list[dict]:
    """Fig. 5 — total vs user-compute time across the five graphs."""
    rows = []
    for name in workload_names():
        res = run_workload(name, partitioner=partitioner)
        rep = res.report
        rows.append(
            {
                "Graph": name,
                "Total (s)": rep.total_seconds,
                "Compute (s)": rep.compute_seconds,
                "Platform overhead (s)": rep.total_seconds - rep.compute_seconds,
                "Supersteps": rep.n_supersteps,
            }
        )
    if do_print:
        print_header(f"Fig. 5 weak scaling (partitioner={partitioner})")
        print(format_table(rows))
    return rows


# ---------------------------------------------------------------------------
# Fig. 6
# ---------------------------------------------------------------------------

def fig6_time_split(name: str = "G50k/P8", do_print: bool = True) -> list[dict]:
    """Fig. 6 — per-partition, per-level split of user compute time."""
    res = run_workload(name)
    rows = res.report.time_split_rows()
    if do_print:
        print_header(f"Fig. 6 compute-time split ({name})")
        print(format_table(rows))
    return rows


# ---------------------------------------------------------------------------
# Fig. 7
# ---------------------------------------------------------------------------

def fig7_phase1_complexity(
    names: tuple[str, ...] = ("G40k/P8", "G50k/P8"), do_print: bool = True
) -> dict:
    """Fig. 7 — expected O(|B|+|I|+|L|) vs observed Phase-1 time.

    Returns the scatter points per graph plus a least-squares trendline and
    the correlation coefficient; the paper's claim is that observed times
    track the expected complexity linearly with similar slopes across graphs.
    """
    out: dict = {"graphs": {}}
    for name in names:
        res = run_workload(name)
        pts = res.report.phase1_points()
        xs = np.array([p["expected_cost"] for p in pts], dtype=float)
        ys = np.array([p["observed_seconds"] for p in pts], dtype=float)
        slope, intercept = np.polyfit(xs, ys, 1) if len(xs) >= 2 else (0.0, 0.0)
        corr = float(np.corrcoef(xs, ys)[0, 1]) if len(xs) >= 2 else 1.0
        out["graphs"][name] = {
            "points": pts,
            "slope_sec_per_unit": float(slope),
            "intercept_sec": float(intercept),
            "pearson_r": corr,
        }
        if do_print:
            print_header(f"Fig. 7 Phase-1 complexity ({name})")
            print(format_table(pts))
            print(
                f"trendline: {slope:.3e} s/unit + {intercept:.4f}s, r={corr:.4f}"
            )
    if do_print and len(names) == 2:
        a, b = (out["graphs"][n]["slope_sec_per_unit"] for n in names)
        ratio = a / b if b else float("inf")
        print(f"slope ratio {names[0]}/{names[1]} = {ratio:.2f} (paper: ~1, similar slopes)")
    return out


# ---------------------------------------------------------------------------
# Fig. 8
# ---------------------------------------------------------------------------

def fig8_memory_state(name: str = "G50k/P8", do_print: bool = True) -> dict:
    """Fig. 8 — cumulative & average state Longs per level.

    Series: *current* (measured eager run), *ideal* (synthetic), *proposed*
    (measured dedup+deferred run — the paper only modeled this).
    """
    eager = run_workload(name, strategy="eager")
    proposed = run_workload(name, strategy="proposed")
    series = [
        measured_series(eager.report, label="current"),
        ideal_series(eager.report),
        measured_series(proposed.report, label="proposed"),
    ]
    rows = fig8_table(series)
    level0_drop = 0.0
    if rows:
        cur0 = rows[0].get("current_cumulative", 0.0)
        pro0 = rows[0].get("proposed_cumulative", 0.0)
        level0_drop = (1 - pro0 / cur0) if cur0 else 0.0
    out = {"rows": rows, "level0_cumulative_drop": level0_drop}
    if do_print:
        print_header(f"Fig. 8 memory state ({name})")
        print(format_table(rows))
        print(
            f"level-0 cumulative drop from dedup+deferred: "
            f"{100 * level0_drop:.0f}% (paper's analysis: ~43%)"
        )
    return out


# ---------------------------------------------------------------------------
# Fig. 9
# ---------------------------------------------------------------------------

def fig9_vertex_census(name: str = "G50k/P8", do_print: bool = True) -> list[dict]:
    """Fig. 9 — vertex types and remote edges per partition across levels."""
    res = run_workload(name)
    rows = [
        {
            "level": r["level"],
            "pid": r["pid"],
            "odd boundary": r.get("n_ob", 0),
            "even boundary": r.get("n_eb", 0),
            "internal": r.get("n_internal", 0),
            "remote half-edges": r.get("n_remote_half_edges", 0),
        }
        for r in res.report.census_rows()
    ]
    if do_print:
        print_header(f"Fig. 9 vertex/edge census ({name})")
        print(format_table(rows))
        verts = sum(r["odd boundary"] + r["even boundary"] + r["internal"] for r in rows)
        rem = sum(r["remote half-edges"] for r in rows)
        if verts:
            print(f"remote-edge/vertex ratio across records: {rem / verts:.1f} (paper: ~7x)")
    return rows


# ---------------------------------------------------------------------------
# §4.3 supersteps & baselines & ablations
# ---------------------------------------------------------------------------

def supersteps_experiment(do_print: bool = True) -> list[dict]:
    """§4.3 — supersteps per workload vs the expected ceil(log2 n) + 1."""
    rows = []
    for name in workload_names():
        res = run_workload(name)
        n = res.report.n_parts
        expected = int(np.ceil(np.log2(n))) + 1 if n > 1 else 1
        rows.append(
            {
                "Graph": name,
                "Parts": n,
                "Supersteps": res.report.n_supersteps,
                "ceil(log2 n)+1": expected,
                "paper": {2: 2, 3: 3, 4: 3, 8: 4}.get(n, "-"),
            }
        )
    if do_print:
        print_header("Supersteps (coordination cost, §4.3)")
        print(format_table(rows))
    return rows


def baselines_experiment(
    n_vertices: int = 400, seed: int = 3, do_print: bool = True
) -> list[dict]:
    """§2.2 comparison on one small graph every algorithm can handle.

    Makki needs O(|E|) supersteps and Fleury O(|E|^2) time, so this runs on a
    few-thousand-edge graph; the point is the coordination-cost *ratio*.
    """
    g = random_eulerian(n_vertices, n_walks=10, walk_len=n_vertices // 4, seed=seed)
    rows = []

    t0 = time.perf_counter()
    c = hierholzer_circuit(g)
    verify_circuit(g, c)
    rows.append(
        {"Algorithm": "Hierholzer (seq)", "Seconds": time.perf_counter() - t0,
         "Supersteps": 1, "Mean active": g.n_vertices}
    )
    t0 = time.perf_counter()
    c = fleury_circuit(g)
    verify_circuit(g, c)
    rows.append(
        {"Algorithm": "Fleury (seq)", "Seconds": time.perf_counter() - t0,
         "Supersteps": 1, "Mean active": 1}
    )
    t0 = time.perf_counter()
    c, st = makki_circuit(g)
    verify_circuit(g, c)
    rows.append(
        {"Algorithm": "Makki (vertex-centric)", "Seconds": time.perf_counter() - t0,
         "Supersteps": st.n_supersteps, "Mean active": st.mean_active}
    )
    pg8 = partition(g, 8, method="ldg", seed=0)
    t0 = time.perf_counter()
    c, mp_stats = makki_partition_circuit(pg8)
    verify_circuit(g, c)
    rows.append(
        {"Algorithm": "Makki (partition-centric)",
         "Seconds": time.perf_counter() - t0,
         "Supersteps": mp_stats.n_supersteps,
         "Mean active": 1.0}
    )
    t0 = time.perf_counter()
    c, hook_stats = cycle_hook_circuit(g)
    verify_circuit(g, c)
    rows.append(
        {"Algorithm": "Cycle-hook (PRAM-style)",
         "Seconds": time.perf_counter() - t0,
         "Supersteps": "-",
         "Mean active": f"{hook_stats.n_initial_trails} trails"}
    )
    t0 = time.perf_counter()
    res = find_euler_circuit(g, n_parts=8, verify=True)
    rows.append(
        {"Algorithm": "Partition-centric (ours)", "Seconds": time.perf_counter() - t0,
         "Supersteps": res.report.n_supersteps, "Mean active": "-"}
    )
    if do_print:
        print_header(
            f"Baselines (|V|={g.n_vertices}, |E|={g.n_edges}): coordination cost"
        )
        print(format_table(rows))
        makki = next(r for r in rows if "Makki" in r["Algorithm"])
        ours = next(r for r in rows if "ours" in r["Algorithm"])
        print(
            f"Makki/partition-centric superstep ratio: "
            f"{makki['Supersteps'] / ours['Supersteps']:.0f}x"
        )
    return rows


def ablation_matching(name: str = "G40k/P8", do_print: bool = True) -> list[dict]:
    """Design ablation: greedy max-weight vs random merge-tree matching."""
    rows = []
    for policy in ("greedy", "random"):
        res = run_workload(name, matching=policy, cache=False)
        state = res.report.state_by_level()
        peak_avg = max(r["avg_longs"] for r in state)
        rows.append(
            {
                "Matching": policy,
                "Supersteps": res.report.n_supersteps,
                "Peak avg state (Longs)": peak_avg,
                "Final cumulative (Longs)": state[-1]["cumulative_longs"],
                "Compute (s)": res.report.compute_seconds,
            }
        )
    if do_print:
        print_header(f"Ablation: merge-tree matching policy ({name})")
        print(format_table(rows))
    return rows


def ablation_partitioner(name: str = "G40k/P8", do_print: bool = True) -> list[dict]:
    """Sensitivity of cut %, state and time to the partitioner choice."""
    rows = []
    g, spec = load_workload(name)
    for method in PARTITIONERS:
        pg = partition(g, spec.n_parts, method=method, seed=0)
        res = run_workload(name, partitioner=method, cache=False)
        state = res.report.state_by_level()
        rows.append(
            {
                "Partitioner": method,
                "Cut %": 100.0 * pg.edge_cut_fraction(),
                "Imbal %": 100.0 * pg.imbalance(),
                "Peak avg state (Longs)": max(r["avg_longs"] for r in state),
                "Compute (s)": res.report.compute_seconds,
            }
        )
    if do_print:
        print_header(f"Ablation: partitioner choice ({name})")
        print(format_table(rows))
    return rows
