"""Persist execution reports and experiment rows as JSON.

The benchmark harness prints its artifacts; downstream analysis (plotting,
regression tracking across commits) wants them on disk. This module flattens
an :class:`~repro.core.driver.ExecutionReport` into plain JSON-serializable
dicts and round-trips experiment row lists.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.driver import ExecutionReport

__all__ = ["report_to_dict", "save_report", "save_rows", "load_rows"]


def report_to_dict(report: ExecutionReport) -> dict:
    """Flatten a report into JSON-serializable primitives.

    Captures the run configuration, the Fig. 5 headline times, and the full
    per-level series (Fig. 6 splits, Fig. 7 points, Fig. 8 state, Fig. 9
    census) plus the merge tree and stage DAG.
    """
    return {
        "config": {
            "n_parts": report.n_parts,
            "strategy": report.strategy,
            "partitioner": report.partitioner,
            "matching": report.matching,
        },
        "totals": {
            "n_supersteps": report.n_supersteps,
            "total_seconds": report.total_seconds,
            "compute_seconds": report.compute_seconds,
            "setup_seconds": report.setup_seconds,
            "phase3_seconds": report.phase3_seconds,
        },
        "time_split_rows": report.time_split_rows(),
        "phase1_points": report.phase1_points(),
        "state_by_level": report.state_by_level(),
        "census_rows": report.census_rows(),
        "merge_tree": [
            [
                {"child": m.child, "parent": m.parent, "weight": m.weight}
                for m in level
            ]
            for level in report.tree.levels
        ],
        "stage_dag": report.stage_dag(),
    }


def save_report(report: ExecutionReport, path) -> Path:
    """Write the flattened report to ``path`` (creating parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report), indent=2, default=float))
    return path


def save_rows(rows: list[dict], path) -> Path:
    """Write experiment rows (e.g. a Table-1 regeneration) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows, indent=2, default=float))
    return path


def load_rows(path) -> list[dict]:
    """Read rows previously written by :func:`save_rows`."""
    return json.loads(Path(path).read_text())
