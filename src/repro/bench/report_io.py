"""Persist execution reports and experiment rows as JSON.

The benchmark harness prints its artifacts; downstream analysis (plotting,
regression tracking across commits) wants them on disk. This module flattens
an :class:`~repro.pipeline.context.ExecutionReport` — or the full
:class:`~repro.pipeline.context.RunContext` pipeline artifact — into plain
JSON-serializable dicts and round-trips experiment row lists. Every artifact
is stamped with the pipeline's ``schema_version`` so readers can detect
layout changes across commits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from ..graph.io import atomic_write
from ..pipeline.context import SCHEMA_VERSION, ExecutionReport, RunContext

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..jobs.queue import Job
    from ..scenarios.base import ScenarioResult

__all__ = [
    "SCHEMA_VERSION",
    "report_to_dict",
    "context_to_dict",
    "scenario_to_dict",
    "job_to_dict",
    "save_report",
    "save_context",
    "save_scenario",
    "save_job",
    "load_job",
    "load_job_summary",
    "save_rows",
    "load_rows",
]


def _write_json(payload, path) -> Path:
    """Serialize ``payload`` to ``path`` atomically, creating parent dirs.

    Every artifact writer routes through here so a crashed job can never
    leave a truncated report under a valid name (temp file + ``os.replace``
    in the destination directory).
    """
    path = Path(path)
    with atomic_write(path, suffix=".json") as fh:
        fh.write(json.dumps(payload, indent=2, default=float).encode())
    return path


def report_to_dict(report: ExecutionReport) -> dict:
    """Flatten a report into JSON-serializable primitives.

    Captures the run configuration, the Fig. 5 headline times, and the full
    per-level series (Fig. 6 splits, Fig. 7 points, Fig. 8 state, Fig. 9
    census) plus the merge tree and stage DAG.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "n_parts": report.n_parts,
            "strategy": report.strategy,
            "partitioner": report.partitioner,
            "matching": report.matching,
        },
        "totals": {
            "n_supersteps": report.n_supersteps,
            "total_seconds": report.total_seconds,
            "compute_seconds": report.compute_seconds,
            "setup_seconds": report.setup_seconds,
            "phase3_seconds": report.phase3_seconds,
        },
        "time_split_rows": report.time_split_rows(),
        "phase1_points": report.phase1_points(),
        "state_by_level": report.state_by_level(),
        "census_rows": report.census_rows(),
        "deferred_resident_longs": list(report.deferred_resident_longs),
        "merge_tree": [
            [
                {"child": m.child, "parent": m.parent, "weight": m.weight}
                for m in level
            ]
            for level in report.tree.levels
        ],
        "stage_dag": report.stage_dag(),
    }


def context_to_dict(ctx: RunContext) -> dict:
    """Flatten the full pipeline artifact (config + stage products).

    Supersets :func:`report_to_dict` with the resolved execution config
    (executor backend, workers, seed), the input-graph summary, and the
    fragment-store census — the audit trail of a staged run.
    """
    out = report_to_dict(ctx.report)
    out["artifact"] = "run"
    out["config"].update(
        {
            "requested_parts": ctx.config.n_parts,
            "seed": ctx.config.seed,
            "executor": ctx.config.executor_name,
            "workers": ctx.config.workers,
            "validate": ctx.config.validate,
            "verify": ctx.config.verify,
        }
    )
    out["graph"] = {"n_vertices": ctx.n_vertices, "n_edges": ctx.n_edges}
    out["circuit"] = {
        "n_edges": int(ctx.circuit.n_edges) if ctx.circuit is not None else 0,
        "verified": ctx.verified,
    }
    store = ctx.store
    if store is not None:
        frags = store.all_fragments()
        out["fragments"] = {
            "n_fragments": len(frags),
            "n_paths": sum(1 for f in frags if f.kind == "path"),
            "n_cycles": sum(1 for f in frags if f.kind == "cycle"),
            # Resident columnar footprint: packed ItemArray rows still in
            # memory (spilled bodies excluded) — the data-plane analogue of
            # the paper's "persist ... to conserve memory" bookkeeping.
            "n_item_rows": sum(
                int(f.items.shape[0]) for f in frags if f.items is not None
            ),
        }
    return out


def scenario_to_dict(result: "ScenarioResult") -> dict:
    """Flatten a scenario run (walks + metrics + one run artifact per sub-run).

    The ``sub_runs`` entries are full :func:`context_to_dict` artifacts
    wrapped with the sub-run key and budget, so a scenario artifact audits
    exactly like a batch of run artifacts.
    """
    cfg = result.config
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": "scenario",
        "scenario": result.scenario,
        "config": {
            "requested_parts": cfg.n_parts,
            "partitioner": cfg.partitioner,
            "strategy": cfg.strategy,
            "matching": cfg.matching,
            "seed": cfg.seed,
            "executor": cfg.executor_name,
            "workers": cfg.workers,
            "validate": cfg.validate,
            "verify": cfg.verify,
        },
        "metrics": {k: result.metrics[k] for k in sorted(result.metrics)},
        "n_parts_allocated": result.n_parts_allocated,
        "circuits": [
            {
                "n_edges": int(c.n_edges),
                "is_closed": bool(c.is_closed),
                "start": int(c.start),
            }
            for c in result.circuits
        ],
        "sub_runs": [
            {
                "key": sub.key,
                "n_parts": sub.n_parts,
                "run": context_to_dict(sub.context),
            }
            for sub in result.sub_runs
        ],
    }


def job_to_dict(job: "Job") -> dict:
    """Flatten one orchestrated job (metadata + timings + pass history).

    The schema-v5 ``"job"`` artifact: job identity and state, the queue/run
    timing split, the engine's pass history, and — for finished jobs — the
    nested scenario artifact, so one file audits the complete request from
    submission to walks.
    """
    out = {
        "schema_version": SCHEMA_VERSION,
        "artifact": "job",
        "job": job.summary(),
        "timings": {
            "queue_latency_seconds": job.queue_latency_seconds,
            # Alias under the /metrics family name, so artifact consumers
            # and Prometheus dashboards key on the same term.
            "queue_delay_seconds": job.queue_latency_seconds,
            "run_seconds": job.run_seconds,
        },
        "pass_history": list(job.passes),
    }
    out["scenario_result"] = (
        scenario_to_dict(job.result) if job.result is not None else None
    )
    return out


def save_report(report: ExecutionReport, path) -> Path:
    """Write the flattened report to ``path`` (atomic, creating parents)."""
    return _write_json(report_to_dict(report), path)


def save_context(ctx: RunContext, path) -> Path:
    """Write the flattened pipeline artifact to ``path`` (atomic)."""
    return _write_json(context_to_dict(ctx), path)


def save_scenario(result: "ScenarioResult", path) -> Path:
    """Write the flattened scenario artifact to ``path`` (atomic)."""
    return _write_json(scenario_to_dict(result), path)


def save_job(job: "Job", path) -> Path:
    """Write the flattened job artifact to ``path`` (atomic)."""
    return _write_json(job_to_dict(job), path)


def load_job(path) -> dict | None:
    """Read one durable ``"job"`` artifact; ``None`` if absent or unreadable.

    Tolerant by design: the registry-eviction fallback path must degrade
    to "unknown job", never crash serving, when an artifact was deleted or
    half-written by an external actor (the writers themselves are atomic).
    """
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("artifact") != "job":
        return None
    return doc


def load_job_summary(artifact_dir, job_id: str) -> dict | None:
    """The status row of a job from the durable per-job artifact index.

    This is how a bounded registry still answers ``GET /jobs/<id>`` for
    any job ever run: evicted terminal jobs resolve
    ``<artifact_dir>/<job_id>.json`` and return its ``job`` section
    (exactly the :meth:`~repro.jobs.queue.Job.summary` shape). ``None``
    when no readable artifact exists.
    """
    if artifact_dir is None:
        return None
    doc = load_job(Path(artifact_dir) / f"{job_id}.json")
    if doc is None:
        return None
    job = doc.get("job")
    return job if isinstance(job, dict) else None


def save_rows(rows: list[dict], path) -> Path:
    """Write experiment rows (e.g. a Table-1 regeneration) as JSON (atomic)."""
    return _write_json(rows, path)


def load_rows(path) -> list[dict]:
    """Read rows previously written by :func:`save_rows`."""
    return json.loads(Path(path).read_text())
