"""The five evaluation graphs (Table 1) at 1000x scale-down, with caching.

The paper's inputs are R-MAT graphs eulerized to even degree, of 20M-49M
vertices on 8 VMs. Pure-Python traversal costs ~10^3x the paper's JVM per
edge, so we scale each graph down by ~1000x while preserving what the
evaluation actually exercises:

* the same partition counts (2, 3, 4, 8) — so merge trees and superstep
  counts are identical to the paper's;
* the paper's weak-scaling design — G20k/P2, G30k/P3, G40k/P4 keep the same
  ~10k vertices per partition;
* the same graph reused for P4 and P8 (the paper's G40);
* a comparable edge/vertex ratio (paper: ~5.3 undirected edges per vertex
  after eulerization; ours: 3.9-6.4 across the five graphs).

Generation takes seconds but benchmarks re-run; graphs are cached as NPZ
under ``.workload_cache/`` next to this repo's working directory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from ..generate.eulerize import eulerian_rmat, largest_component, open_path_variant
from ..generate.rmat import rmat_graph
from ..generate.synthetic import disjoint_union
from ..graph.graph import Graph
from ..graph.io import load_npz, save_npz

__all__ = [
    "WorkloadSpec",
    "PAPER_WORKLOADS",
    "load_workload",
    "workload_names",
    "ScenarioWorkloadSpec",
    "SCENARIO_WORKLOADS",
    "load_scenario_workload",
    "scenario_workload_names",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for one Table-1 graph."""

    name: str
    scale: int
    avg_degree: float
    n_parts: int
    seed: int = 42
    #: The paper row this workload scales down.
    paper_row: str = ""


#: The five Table-1 rows. G40k/P4 and G40k/P8 share one graph, like the
#: paper's G40.
PAPER_WORKLOADS: dict[str, WorkloadSpec] = {
    "G20k/P2": WorkloadSpec("G20k/P2", 16, 2.4, 2, paper_row="G20/P2 (20M/212M)"),
    "G30k/P3": WorkloadSpec("G30k/P3", 16, 6.0, 3, paper_row="G30/P3 (30M/318M)"),
    "G40k/P4": WorkloadSpec("G40k/P4", 17, 2.6, 4, paper_row="G40/P4 (40M/423M)"),
    "G40k/P8": WorkloadSpec("G40k/P8", 17, 2.6, 8, paper_row="G40/P8 (40M/423M)"),
    "G50k/P8": WorkloadSpec("G50k/P8", 17, 4.0, 8, paper_row="G50/P8 (49M/529M)"),
}


def workload_names() -> list[str]:
    """The five workload names in the paper's Fig. 5 order."""
    return list(PAPER_WORKLOADS)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_WORKLOAD_CACHE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".workload_cache"


def load_workload(name: str, cache: bool = True) -> tuple[Graph, WorkloadSpec]:
    """Generate (or load from cache) one of the five evaluation graphs."""
    spec = PAPER_WORKLOADS.get(name)
    if spec is None:
        raise KeyError(f"unknown workload {name!r}; choose from {workload_names()}")
    key = f"rmat_s{spec.scale}_d{spec.avg_degree}_seed{spec.seed}.npz"
    path = _cache_dir() / key
    if cache and path.exists():
        g, _ = load_npz(path)
        return g, spec
    g, _info = eulerian_rmat(spec.scale, avg_degree=spec.avg_degree, seed=spec.seed)
    if cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_npz(g, path)
    return g, spec


# ---------------------------------------------------------------------------
# Scenario workloads: non-Eulerian and disconnected R-MAT variants
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioWorkloadSpec:
    """Recipe for one scenario-layer evaluation graph."""

    name: str
    #: The scenario this workload exercises (registry name).
    scenario: str
    scale: int
    avg_degree: float
    n_parts: int
    seed: int = 42
    #: What makes the graph non-circuit-shaped.
    shape: str = ""


#: R-MAT variants that exercise the non-circuit scenarios: an almost-Eulerian
#: graph with exactly two odd vertices (``path``), a raw R-MAT component with
#: many odd intersections (``postman``), and a disconnected union of
#: eulerized R-MATs (``components``).
SCENARIO_WORKLOADS: dict[str, ScenarioWorkloadSpec] = {
    "PATH/RMAT": ScenarioWorkloadSpec(
        "PATH/RMAT", "path", scale=13, avg_degree=4.0, n_parts=4, seed=11,
        shape="eulerized R-MAT minus one non-loop edge (two odd vertices)",
    ),
    "POSTMAN/RMAT": ScenarioWorkloadSpec(
        "POSTMAN/RMAT", "postman", scale=12, avg_degree=3.0, n_parts=4, seed=11,
        shape="largest component of a raw R-MAT (odd intersections)",
    ),
    "COMPONENTS/RMAT": ScenarioWorkloadSpec(
        "COMPONENTS/RMAT", "components", scale=12, avg_degree=4.0, n_parts=8,
        seed=11, shape="disjoint union of three eulerized R-MATs",
    ),
}


def scenario_workload_names() -> list[str]:
    """The scenario-workload names, sorted."""
    return sorted(SCENARIO_WORKLOADS)


def _build_scenario_graph(spec: ScenarioWorkloadSpec) -> Graph:
    if spec.scenario == "path":
        g, _ = eulerian_rmat(spec.scale, avg_degree=spec.avg_degree,
                             seed=spec.seed)
        return open_path_variant(g)
    if spec.scenario == "postman":
        g = rmat_graph(spec.scale, avg_degree=spec.avg_degree, seed=spec.seed)
        cc, _ = largest_component(g)
        return cc
    if spec.scenario == "components":
        return disjoint_union(*(
            eulerian_rmat(spec.scale - i, avg_degree=spec.avg_degree,
                          seed=spec.seed + i)[0]
            for i in range(3)
        ))
    raise ValueError(f"no generator for scenario {spec.scenario!r}")


def load_scenario_workload(
    name: str, cache: bool = True
) -> tuple[Graph, ScenarioWorkloadSpec]:
    """Generate (or load from cache) one scenario evaluation graph."""
    spec = SCENARIO_WORKLOADS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown scenario workload {name!r}; "
            f"choose from {scenario_workload_names()}"
        )
    key = (
        f"scenario_{spec.scenario}_s{spec.scale}_d{spec.avg_degree}"
        f"_seed{spec.seed}.npz"
    )
    path = _cache_dir() / key
    if cache and path.exists():
        g, _ = load_npz(path)
        return g, spec
    g = _build_scenario_graph(spec)
    if cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_npz(g, path)
    return g, spec
