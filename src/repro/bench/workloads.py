"""The five evaluation graphs (Table 1) at 1000x scale-down, with caching.

The paper's inputs are R-MAT graphs eulerized to even degree, of 20M-49M
vertices on 8 VMs. Pure-Python traversal costs ~10^3x the paper's JVM per
edge, so we scale each graph down by ~1000x while preserving what the
evaluation actually exercises:

* the same partition counts (2, 3, 4, 8) — so merge trees and superstep
  counts are identical to the paper's;
* the paper's weak-scaling design — G20k/P2, G30k/P3, G40k/P4 keep the same
  ~10k vertices per partition;
* the same graph reused for P4 and P8 (the paper's G40);
* a comparable edge/vertex ratio (paper: ~5.3 undirected edges per vertex
  after eulerization; ours: 3.9-6.4 across the five graphs).

Generation takes seconds but benchmarks re-run; graphs are cached as NPZ
under ``.workload_cache/`` next to this repo's working directory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from ..generate.eulerize import eulerian_rmat
from ..graph.graph import Graph
from ..graph.io import load_npz, save_npz

__all__ = ["WorkloadSpec", "PAPER_WORKLOADS", "load_workload", "workload_names"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for one Table-1 graph."""

    name: str
    scale: int
    avg_degree: float
    n_parts: int
    seed: int = 42
    #: The paper row this workload scales down.
    paper_row: str = ""


#: The five Table-1 rows. G40k/P4 and G40k/P8 share one graph, like the
#: paper's G40.
PAPER_WORKLOADS: dict[str, WorkloadSpec] = {
    "G20k/P2": WorkloadSpec("G20k/P2", 16, 2.4, 2, paper_row="G20/P2 (20M/212M)"),
    "G30k/P3": WorkloadSpec("G30k/P3", 16, 6.0, 3, paper_row="G30/P3 (30M/318M)"),
    "G40k/P4": WorkloadSpec("G40k/P4", 17, 2.6, 4, paper_row="G40/P4 (40M/423M)"),
    "G40k/P8": WorkloadSpec("G40k/P8", 17, 2.6, 8, paper_row="G40/P8 (40M/423M)"),
    "G50k/P8": WorkloadSpec("G50k/P8", 17, 4.0, 8, paper_row="G50/P8 (49M/529M)"),
}


def workload_names() -> list[str]:
    """The five workload names in the paper's Fig. 5 order."""
    return list(PAPER_WORKLOADS)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_WORKLOAD_CACHE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".workload_cache"


def load_workload(name: str, cache: bool = True) -> tuple[Graph, WorkloadSpec]:
    """Generate (or load from cache) one of the five evaluation graphs."""
    spec = PAPER_WORKLOADS.get(name)
    if spec is None:
        raise KeyError(f"unknown workload {name!r}; choose from {workload_names()}")
    key = f"rmat_s{spec.scale}_d{spec.avg_degree}_seed{spec.seed}.npz"
    path = _cache_dir() / key
    if cache and path.exists():
        g, _ = load_npz(path)
        return g, spec
    g, _info = eulerian_rmat(spec.scale, avg_degree=spec.avg_degree, seed=spec.seed)
    if cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_npz(g, path)
    return g, spec
