"""Unified observability layer: metrics registry, spans, Prometheus text.

See :mod:`repro.obs.metrics` for the registry/rendering/delta machinery
and :mod:`repro.obs.spans` for stage timing and trace propagation. The
rest of the stack imports from this package root.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    REQUIRED_FAMILIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ambient,
    diff_state,
    get_registry,
    parse_prometheus_text,
    set_registry,
    use_registry,
)
from .spans import (
    STAGE_HISTOGRAM,
    Span,
    SpanRecorder,
    current_trace,
    record_stage,
    use_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "REQUIRED_FAMILIES",
    "STAGE_HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "ambient",
    "current_trace",
    "diff_state",
    "get_registry",
    "parse_prometheus_text",
    "record_stage",
    "set_registry",
    "use_registry",
    "use_trace",
]
