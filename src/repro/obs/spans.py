"""Per-stage timing spans and end-to-end trace propagation.

A :class:`Span` measures one named pipeline stage (wall + process CPU)
and lands the measurement in two places at once:

* the ambient registry's ``repro_stage_seconds{stage=...}`` histogram —
  the per-stage latency distribution ``GET /metrics`` reports;
* the active :class:`SpanRecorder`, if one is installed — an ordered
  in-memory list the job engine converts into ``stage:<name>`` entries of
  the schema-v5 pass history, so every job artifact carries its own
  per-stage wall/CPU breakdown.

The split matters across process boundaries: a forked worker or a remote
:class:`~repro.jobs.remote.WorkerHost` records spans into *its own*
recorder and registry, ships the recorder entries back as pass tuples and
the registry increments as a metrics delta inside the result dict, and
the coordinator folds both into its job record and registry. Nothing new
crosses the wire — the existing result-dict channel carries it.

``trace_id`` is a :mod:`contextvars` value set by whoever owns the
request edge (HTTP submit → :meth:`JobEngine.submit` → job → dispatcher →
worker spec) so any log line or artifact written underneath can stamp the
originating request without threading an argument through nine layers.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager

from .metrics import ambient

__all__ = [
    "Span",
    "SpanRecorder",
    "current_trace",
    "record_stage",
    "use_trace",
]

#: Name of the per-stage latency histogram family.
STAGE_HISTOGRAM = "repro_stage_seconds"

_recorder: contextvars.ContextVar = contextvars.ContextVar(
    "repro_span_recorder", default=None
)
_trace: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def current_trace() -> str | None:
    """The trace id of the request being served here, if any."""
    return _trace.get()


@contextmanager
def use_trace(trace_id: str | None):
    """Install ``trace_id`` as the current trace for the ``with`` body."""
    token = _trace.set(trace_id)
    try:
        yield
    finally:
        _trace.reset(token)


class SpanRecorder:
    """Collects every span closed inside its ``with`` body, in order.

    Entries are plain dicts ``{"stage", "wall", "cpu"}`` — the engine and
    the worker-side spec runner turn them into pass-history rows.
    """

    def __init__(self):
        self.spans: list[dict] = []
        self._token = None

    def __enter__(self) -> "SpanRecorder":
        self._token = _recorder.set(self)
        return self

    def __exit__(self, *exc) -> None:
        _recorder.reset(self._token)


def record_stage(stage: str, wall: float, cpu: float | None = None,
                 registry=None, **extra) -> None:
    """Record one stage measurement (histogram + active recorder).

    The function form exists for timings measured elsewhere — the BSP
    engine already times every superstep and partition-step category, so
    the runner *derives* superstep phase splits from
    :class:`~repro.bsp.accounting.RunStats` instead of re-instrumenting
    the inner loop, and reports them through here.
    """
    reg = registry if registry is not None else ambient()
    reg.histogram(
        STAGE_HISTOGRAM, "Wall seconds per pipeline stage",
        labelnames=("stage",),
    ).labels(stage=stage).observe(wall)
    rec = _recorder.get()
    if rec is not None:
        entry = {"stage": stage, "wall": float(wall)}
        if cpu is not None:
            entry["cpu"] = float(cpu)
        if extra:
            entry.update(extra)
        rec.spans.append(entry)


class Span:
    """Context manager timing one stage (wall + CPU) into :func:`record_stage`.

    ``cpu`` is :func:`time.process_time` — whole-process CPU, so a stage
    that fans out across threads shows its real compute cost, not just
    the coordinating thread's share.
    """

    __slots__ = ("stage", "extra", "wall", "cpu", "_t0", "_c0")

    def __init__(self, stage: str, **extra):
        self.stage = stage
        self.extra = extra
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.wall = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._c0
        record_stage(self.stage, self.wall, cpu=self.cpu, **self.extra)
