"""One metrics registry for the whole stack: counters, gauges, histograms.

Every subsystem used to keep its own ad-hoc stats dict (``wire_stats()``,
three ``supervisor_stats()``, ``queue.counts()``, catalog counters, ...).
This module is the single pane of glass those surfaces now feed:

* :class:`MetricsRegistry` — a named collection of typed metrics.
  Registration is idempotent (``registry.counter(name, ...)`` returns the
  existing family), children are cached per label set, and the hot path
  (``child.inc()`` / ``child.observe()``) is one small lock hold — cheap
  enough for per-frame wire accounting, which already paid exactly that
  under the old ``WireStats``.
* **Prometheus text rendering** (:meth:`MetricsRegistry.render`) in the
  0.0.4 exposition format, served by ``GET /metrics`` on both front ends,
  plus :func:`parse_prometheus_text` so tests and the CI scrape gate can
  validate what they scraped without a client library.
* **Cross-process aggregation**: :meth:`MetricsRegistry.state` /
  :func:`diff_state` / :meth:`MetricsRegistry.merge_state` turn a worker's
  counter+histogram increments into a picklable delta that rides home in
  the job result dict (through the fork pipe or the remote ``REF1``
  frame) and folds into the coordinator's registry — worker-side walk
  cache hits and stage timings show up on the coordinator's ``/metrics``.

Scoping: :func:`get_registry` returns the process-global registry (the
default sink — one process, one exporter). Code that must not share
counters (a test, a second in-process engine) builds its own
:class:`MetricsRegistry` and threads it through, or installs it as the
*ambient* registry with :func:`use_registry` so deep call sites
(phase-1 walk cache, shm attach) pick it up via :func:`ambient` without
parameter plumbing. ``REPRO_METRICS=0`` swaps the global registry for
:data:`NULL_REGISTRY`, whose instruments are no-ops.

Naming convention (see ARCHITECTURE.md "Observability"): every family is
``repro_<subsystem>_<what>[_<unit>][_total]`` — ``_total`` for counters,
base SI units (seconds, bytes) for measurements, label keys for the
dimension that would otherwise fork the name (``scope`` for wire
counters, ``stage`` for latency histograms, ``state`` for job counts).
"""

from __future__ import annotations

import contextvars
import math
import os
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "REQUIRED_FAMILIES",
    "ambient",
    "diff_state",
    "get_registry",
    "parse_prometheus_text",
    "set_registry",
    "use_registry",
]

#: Default latency buckets (seconds): sub-millisecond superstep phases up
#: to minute-scale soak jobs, roughly 2.5x apart.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Families ``GET /metrics`` must always expose (the CI scrape gate and
#: the front-end parity test both pin this set). The engine pre-creates
#: each so a fresh server renders the full schema at zero.
REQUIRED_FAMILIES = (
    "repro_queue_depth",
    "repro_queue_jobs",
    "repro_queue_delay_seconds",
    "repro_jobs_total",
    "repro_http_responses_total",
    "repro_stage_seconds",
    "repro_catalog_events_total",
    "repro_shm_segments",
    "repro_shm_bytes",
    "repro_wire_messages_total",
    "repro_wire_bytes_total",
    "repro_walk_cache_events_total",
    "repro_dispatcher_respawns_total",
    "repro_breaker_open",
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames: tuple, key: tuple, extra: str = "") -> str:
    pairs = [f'{n}="{_escape(v)}"' for n, v in zip(labelnames, key)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Child:
    """One labeled series of a metric family (shared lock with siblings)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0


class _CounterChild(_Child):
    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def set_total(self, value: float) -> None:
        """Forward-only set — for bridging an external monotonic source."""
        with self._lock:
            if value > self.value:
                self.value = value


class _GaugeChild(_Child):
    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n


class _HistChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: tuple):
        self._lock = lock
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class _Metric:
    """A metric family: name, help, label schema, children per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The child series for this exact label set (created on demand)."""
        try:
            key = tuple(str(labels[n]) for n in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                f"{self.name} needs labels {self.labelnames}, got "
                f"{sorted(labels)}"
            ) from exc
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name} needs labels {self.labelnames}, got "
                f"{sorted(labels)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default(self):
        """The label-less child (only valid with an empty label schema)."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled {self.labelnames}")
        return self.labels()

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._children.items())
        return {key: child.value for key, child in items}

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help or self.name}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            lines.append(
                f"{self.name}{_label_str(self.labelnames, key)} "
                f"{_fmt(child.value)}"
            )
        return lines


class Counter(_Metric):
    """Monotonic event count. ``inc`` on the family needs no labels."""

    kind = "counter"

    def _make_child(self):
        return _CounterChild(self._lock)

    def inc(self, n: float = 1.0) -> None:
        self._default().inc(n)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(_Metric):
    """A value that can go anywhere (depth, bytes resident, breaker state)."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, n: float = 1.0) -> None:
        self._default().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._default().dec(n)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(_Metric):
    """Cumulative-bucket distribution (the Prometheus histogram contract)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: tuple,
                 buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))

    def _make_child(self):
        return _HistChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._children.items())
        return {
            key: {"count": c.count, "sum": c.sum, "counts": tuple(c.counts)}
            for key, c in items
        }

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help or self.name}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            acc = 0
            for bound, n in zip(self.buckets, child.counts):
                acc += n
                le = 'le="' + _fmt(bound) + '"'
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_str(self.labelnames, key, le)} {acc}"
                )
            acc += child.counts[-1]
            inf_le = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket"
                f"{_label_str(self.labelnames, key, inf_le)} {acc}"
            )
            label_part = _label_str(self.labelnames, key)
            lines.append(f"{self.name}_sum{label_part} {_fmt(child.sum)}")
            lines.append(f"{self.name}_count{label_part} {child.count}")
        return lines


class MetricsRegistry:
    """A process- or component-scoped collection of metric families."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kw):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, tuple(labelnames), **kw)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"{name} already registered as {metric.kind}, not {cls.kind}"
            )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"{name} already registered with labels {metric.labelnames}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: tuple = (),
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def families(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def snapshot(self) -> dict:
        """``{family: {label_values_tuple: value-or-hist-dict}}`` (JSON-unsafe
        keys; for in-process inspection — the wire format is :meth:`state`)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.name: m.snapshot() for m in metrics}

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    # -- cross-process deltas ------------------------------------------------

    def state(self) -> dict:
        """Picklable raw values of every counter and histogram.

        Gauges are deliberately excluded: a worker's instantaneous gauge
        has no meaningful sum with the coordinator's. Feed two states to
        :func:`diff_state` and the result to :meth:`merge_state`.
        """
        counters: dict = {}
        hists: dict = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if isinstance(m, Counter):
                counters[m.name] = {
                    "labelnames": m.labelnames, "children": m.snapshot(),
                }
            elif isinstance(m, Histogram):
                hists[m.name] = {
                    "labelnames": m.labelnames, "buckets": m.buckets,
                    "children": m.snapshot(),
                }
        return {"counters": counters, "histograms": hists}

    def merge_state(self, delta: dict) -> None:
        """Fold a :func:`diff_state` delta into this registry (additively)."""
        if not delta:
            return
        for name, entry in delta.get("counters", {}).items():
            family = self.counter(name, labelnames=entry["labelnames"])
            for key, value in entry["children"].items():
                if value:
                    family.labels(**dict(zip(family.labelnames, key))).inc(value)
        for name, entry in delta.get("histograms", {}).items():
            family = self.histogram(name, labelnames=entry["labelnames"],
                                    buckets=entry["buckets"])
            for key, h in entry["children"].items():
                if not h["count"] and not h["sum"]:
                    continue
                child = family.labels(**dict(zip(family.labelnames, key)))
                counts = h["counts"]
                with child._lock:
                    if len(counts) == len(child.counts):
                        for i, n in enumerate(counts):
                            child.counts[i] += n
                    else:  # bucket layout drifted across versions: keep totals
                        child.counts[-1] += h["count"]
                    child.sum += h["sum"]
                    child.count += h["count"]


def diff_state(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.state` snapshots."""
    out: dict = {"counters": {}, "histograms": {}}
    for name, entry in after.get("counters", {}).items():
        prev = before.get("counters", {}).get(name, {}).get("children", {})
        children = {
            key: value - prev.get(key, 0.0)
            for key, value in entry["children"].items()
            if value - prev.get(key, 0.0)
        }
        if children:
            out["counters"][name] = {
                "labelnames": entry["labelnames"], "children": children,
            }
    for name, entry in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name, {}).get("children", {})
        children = {}
        for key, h in entry["children"].items():
            p = prev.get(key)
            if p is None:
                if h["count"] or h["sum"]:
                    children[key] = dict(h)
                continue
            d_count = h["count"] - p["count"]
            d_sum = h["sum"] - p["sum"]
            if d_count or d_sum:
                children[key] = {
                    "count": d_count, "sum": d_sum,
                    "counts": tuple(a - b for a, b in
                                    zip(h["counts"], p["counts"])),
                }
        if children:
            out["histograms"][name] = {
                "labelnames": entry["labelnames"],
                "buckets": entry["buckets"], "children": children,
            }
    if not out["counters"] and not out["histograms"]:
        return {}
    return out


# ---------------------------------------------------------------------------
# Null registry (REPRO_METRICS=0 and the overhead-guard baseline)
# ---------------------------------------------------------------------------


class _NullChild:
    def inc(self, n: float = 1.0) -> None: pass
    def dec(self, n: float = 1.0) -> None: pass
    def set(self, value: float) -> None: pass
    def set_total(self, value: float) -> None: pass
    def observe(self, value: float) -> None: pass
    value = 0.0


_NULL_CHILD = _NullChild()


class _NullMetric:
    labelnames: tuple = ()

    def labels(self, **labels): return _NULL_CHILD
    def inc(self, n: float = 1.0) -> None: pass
    def dec(self, n: float = 1.0) -> None: pass
    def set(self, value: float) -> None: pass
    def observe(self, value: float) -> None: pass
    def snapshot(self) -> dict: return {}
    value = 0.0


_NULL_METRIC = _NullMetric()


class _NullRegistry(MetricsRegistry):
    """All instruments are shared no-ops; rendering is empty."""

    def __init__(self):
        super().__init__()

    def counter(self, name, help="", labelnames=()): return _NULL_METRIC
    def gauge(self, name, help="", labelnames=()): return _NULL_METRIC
    def histogram(self, name, help="", labelnames=(),
                  buckets=DEFAULT_BUCKETS): return _NULL_METRIC
    def families(self): return []
    def snapshot(self): return {}
    def render(self): return "\n"
    def state(self): return {}
    def merge_state(self, delta): pass


#: The shared no-op registry (``REPRO_METRICS=0``, overhead baselines).
NULL_REGISTRY = _NullRegistry()


_global_lock = threading.Lock()
_global_registry: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry:
    """The process-global registry (:data:`NULL_REGISTRY` when disabled)."""
    global _global_registry
    if _global_registry is None:
        with _global_lock:
            if _global_registry is None:
                if os.environ.get("REPRO_METRICS", "1") == "0":
                    _global_registry = NULL_REGISTRY
                else:
                    _global_registry = MetricsRegistry()
    return _global_registry


def set_registry(registry: MetricsRegistry | None) -> None:
    """Replace the process-global registry (tests; ``None`` resets lazily)."""
    global _global_registry
    with _global_lock:
        _global_registry = registry


_ambient: contextvars.ContextVar = contextvars.ContextVar(
    "repro_metrics_ambient", default=None
)


def ambient() -> MetricsRegistry:
    """The ambient registry: the innermost :func:`use_registry`, else global.

    Deep call sites with no natural registry parameter (phase-1 walk
    cache, shm attach) record here, so an engine that installs its own
    registry around a job run captures them without plumbing.
    """
    reg = _ambient.get()
    return reg if reg is not None else get_registry()


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Install ``registry`` as the ambient sink for the ``with`` body."""
    token = _ambient.set(registry)
    try:
        yield registry
    finally:
        _ambient.reset(token)


# ---------------------------------------------------------------------------
# Exposition-format validation (tests + the CI scrape gate)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"        # metric name
    r"(\{[^{}]*\})?"                       # optional label block
    r"\s+(\S+)"                            # value
    r"(\s+-?\d+)?$"                        # optional timestamp
)
_LABELS_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)'
)


def parse_prometheus_text(text: str) -> dict:
    """Validate exposition text; ``{family: {"type", "samples"}}``.

    Raises :class:`ValueError` on any malformed line — an unparseable
    ``/metrics`` page must fail the CI gate loudly, not scrape as empty.
    """
    families: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            fam = families.setdefault(parts[2],
                                      {"type": "untyped", "samples": 0})
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                fam["type"] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, label_block, value = m.group(1), m.group(2), m.group(3)
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value {value!r}"
                ) from None
        if label_block:
            inner = label_block[1:-1]
            if inner and sum(
                len(m0.group(0)) for m0 in _LABELS_RE.finditer(inner)
            ) != len(inner):
                raise ValueError(
                    f"line {lineno}: malformed labels {label_block!r}"
                )
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and families.get(stripped, {}).get("type") == "histogram":
                base = stripped
                break
        fam = families.setdefault(base, {"type": "untyped", "samples": 0})
        fam["samples"] += 1
    return families
